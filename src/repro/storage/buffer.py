"""Fixed-capacity atom buffer cache.

The paper's evaluation manages a 2 GB atom cache *externally* to SQL
Server (§VI-B); :class:`BufferCache` is that cache.  It owns residency
and statistics, delegates victim selection to a pluggable
:class:`~repro.cache.base.CachePolicy`, measures the policy's real
bookkeeping cost (Table I's overhead column) with a wall-clock timer,
and notifies listeners on insert/evict so the scheduler's workload
queues can keep their ``phi`` (cached?) flags current without set
lookups on the hot path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.cache.base import CachePolicy

__all__ = ["CacheStats", "BufferCache"]


@dataclass
class CacheStats:
    """Counters accumulated by a :class:`BufferCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    overhead_ns: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses served from the cache (0 when idle)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_ratio": self.hit_ratio,
            "overhead_ns": self.overhead_ns,
        }


class BufferCache:
    """LRU-style container with pluggable replacement policy.

    Parameters
    ----------
    capacity:
        Maximum resident atoms (paper: 2 GB / 8 MB = 256).
    policy:
        Victim-selection policy.
    """

    def __init__(self, capacity: int, policy: CachePolicy) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.policy = policy
        self._resident: set[int] = set()
        self.stats = CacheStats()
        self._on_insert: list[Callable[[int], None]] = []
        self._on_evict: list[Callable[[int], None]] = []

    # -- listeners --------------------------------------------------------
    def add_listener(
        self,
        on_insert: Callable[[int], None] | None = None,
        on_evict: Callable[[int], None] | None = None,
    ) -> None:
        """Register residency-change callbacks (scheduler phi flags)."""
        if on_insert is not None:
            self._on_insert.append(on_insert)
        if on_evict is not None:
            self._on_evict.append(on_evict)

    # -- queries ----------------------------------------------------------
    def __contains__(self, atom_id: int) -> bool:
        return atom_id in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def resident_atoms(self) -> frozenset[int]:
        """Immutable snapshot of resident atom ids."""
        return frozenset(self._resident)

    # -- the single hot-path operation -------------------------------------
    def access(self, atom_id: int, now: float) -> bool:
        """Reference an atom; returns ``True`` on hit.

        On a miss the atom is fetched into the cache (the caller charges
        the disk cost), evicting the policy's victim if full.
        """
        t0 = time.perf_counter_ns()  # jawslint: disable=D001
        if atom_id in self._resident:
            self.policy.on_access(atom_id, now)
            self.stats.overhead_ns += time.perf_counter_ns() - t0  # jawslint: disable=D001
            self.stats.hits += 1
            return True

        if len(self._resident) >= self.capacity:
            victim = self.policy.choose_victim()
            if victim not in self._resident:
                raise RuntimeError(
                    f"policy chose non-resident victim {victim}"
                )
            self._resident.remove(victim)
            self.policy.on_evict(victim)
            self.stats.evictions += 1
            self.stats.overhead_ns += time.perf_counter_ns() - t0  # jawslint: disable=D001
            for cb in self._on_evict:
                cb(victim)
            t0 = time.perf_counter_ns()  # jawslint: disable=D001

        self._resident.add(atom_id)
        self.policy.on_insert(atom_id, now)
        self.policy.on_access(atom_id, now)
        self.stats.overhead_ns += time.perf_counter_ns() - t0  # jawslint: disable=D001
        self.stats.misses += 1
        for cb in self._on_insert:
            cb(atom_id)
        return False

    # -- control ------------------------------------------------------------
    def run_boundary(self) -> None:
        """Propagate a workload run boundary to the policy (SLRU)."""
        t0 = time.perf_counter_ns()  # jawslint: disable=D001
        self.policy.on_run_boundary()
        self.stats.overhead_ns += time.perf_counter_ns() - t0  # jawslint: disable=D001

    def drop(self, atom_ids: Iterable[int]) -> None:
        """Explicitly evict atoms (used by tests and cluster rebalance)."""
        for atom_id in list(atom_ids):
            if atom_id in self._resident:
                self._resident.remove(atom_id)
                self.policy.on_evict(atom_id)
                self.stats.evictions += 1
                for cb in self._on_evict:
                    cb(atom_id)
