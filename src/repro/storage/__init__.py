"""Simulated storage substrate.

Stands in for the paper's SQL Server 2005 + RAID-5 deployment: a
clustered B+-tree access path keyed on ``(timestep, morton)``, a disk
cost model charging :math:`T_b` per atom read (with optional sequential
discount), and a fixed-capacity atom buffer cache with pluggable
replacement policies managed externally to the database, exactly as the
paper's evaluation does (§VI-B).
"""

from repro.storage.btree import BPlusTree
from repro.storage.buffer import BufferCache
from repro.storage.disk import DiskModel, DiskStats

__all__ = ["BPlusTree", "BufferCache", "DiskModel", "DiskStats"]
