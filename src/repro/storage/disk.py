"""Disk cost model.

Charges the Eq. 1 constant :math:`T_b` per atom read.  The paper
assumes uniform I/O cost for atoms (they are equal-sized 8 MB blocks);
``CostModel.seq_discount < 1`` optionally models the seek savings of
Morton-sequential reads, used by the disk-model ablation bench.

Fault support: a read attempt that fails (transient error, lost atom)
still consumes a rotation's worth of time — :meth:`DiskModel.failed_read`
charges it and breaks the sequential-read streak — and a disk whose
circuit breaker tripped runs in degraded (RAID-rebuild) mode, scaling
every subsequent read by a constant factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CostModel
from repro.storage.btree import BPlusTree

__all__ = ["DiskStats", "DiskModel"]


@dataclass
class DiskStats:
    """Mutable counters accumulated by a :class:`DiskModel`."""

    reads: int = 0
    sequential_reads: int = 0
    failed_reads: int = 0
    seconds: float = 0.0

    def snapshot(self) -> dict:
        return {
            "reads": self.reads,
            "sequential_reads": self.sequential_reads,
            "failed_reads": self.failed_reads,
            "seconds": self.seconds,
        }


class DiskModel:
    """Simulated disk serving atom reads through the B+-tree access path.

    Parameters
    ----------
    cost:
        Cost constants (``t_b``, ``seq_discount``).
    n_atoms:
        Total atoms on this disk; the clustered tree is bulk-built over
        ``0..n_atoms-1``.
    tree_order:
        B+-tree fan-out.
    """

    def __init__(self, cost: CostModel, n_atoms: int, tree_order: int = 64) -> None:
        self._cost = cost
        self._tree = BPlusTree.build_clustered(n_atoms, order=tree_order)
        self._last_block: int | None = None
        self._degrade_factor = 1.0
        self.stats = DiskStats()

    @property
    def tree(self) -> BPlusTree:
        """The clustered access path (exposed for tests/diagnostics)."""
        return self._tree

    @property
    def degraded(self) -> bool:
        """True once :meth:`degrade` marked the disk (breaker tripped)."""
        return self._degrade_factor > 1.0

    def degrade(self, factor: float) -> None:
        """Enter degraded mode: every read now costs ``factor`` times
        more (sticky; repeated calls keep the worst factor)."""
        if factor < 1.0:
            raise ValueError("degrade factor must be >= 1")
        self._degrade_factor = max(self._degrade_factor, factor)

    def reset_locality(self) -> None:
        """Forget the last-read block.

        Called whenever a read sequence is interrupted — a failed
        attempt, a node crash/recovery, an aborted batch — so that a
        retried or re-routed read is never miscounted as sequential.
        """
        self._last_block = None

    def read_atom(self, atom_id: int, cost_factor: float = 1.0) -> float:
        """Read one atom; returns the simulated seconds consumed.

        A read is *sequential* when its physical block immediately
        follows the previously read block — which happens exactly when
        the scheduler visits Morton-adjacent atoms of one time step in
        order, because the index is clustered.  ``cost_factor`` scales
        this read only (slow-disk fault injection); degraded mode
        scales every read.
        """
        block = self._tree.get(atom_id)
        if block is None:
            raise KeyError(f"atom {atom_id} not on this disk")
        sequential = self._last_block is not None and block == self._last_block + 1
        self._last_block = block
        seconds = (
            self._cost.t_b
            * (self._cost.seq_discount if sequential else 1.0)
            * cost_factor
            * self._degrade_factor
        )
        self.stats.reads += 1
        if sequential:
            self.stats.sequential_reads += 1
        self.stats.seconds += seconds
        return seconds

    def failed_read(self, atom_id: int) -> float:
        """Charge one failed read attempt of ``atom_id``.

        The time was spent discovering the error, so a full (possibly
        degraded) :math:`T_b` is consumed, and the sequential streak is
        broken — the retry must seek back.
        """
        if self._tree.get(atom_id) is None:
            raise KeyError(f"atom {atom_id} not on this disk")
        seconds = self._cost.t_b * self._degrade_factor
        self.stats.failed_reads += 1
        self.stats.seconds += seconds
        self.reset_locality()
        return seconds
