"""Clustered B+-tree access path.

The Turbulence database retrieves atoms through "a clustered B+ tree
access path, which is keyed on a combination of the Morton index and
the time step" (paper §III-A).  Because the tree is clustered, keys
that are adjacent in ``(timestep, morton)`` order are physically
adjacent on disk, which is what makes Morton-ordered batch execution
sequential.

This is a real, self-contained B+-tree (insert, point lookup, ordered
range scan) rather than a dict — the disk model uses the *leaf
position* of a key as its physical address to decide whether a read is
sequential.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Optional

__all__ = ["BPlusTree"]


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: list[int] = []
        self.children: list[_Node] = []  # internal nodes only
        self.values: list[int] = []  # leaves only
        self.next_leaf: Optional[_Node] = None  # leaf chain for range scans


class BPlusTree:
    """B+-tree mapping integer keys to integer values.

    Keys are packed ``(timestep, morton)`` atom ids; values are the
    atom's physical block address.  ``order`` is the maximum number of
    keys per node.
    """

    def __init__(self, order: int = 64) -> None:
        if order < 4:
            raise ValueError("order must be >= 4")
        self._order = order
        self._root = _Node(is_leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, key: int, value: int) -> None:
        """Insert ``key -> value``; replaces the value on duplicate key."""
        split = self._insert(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root

    def _insert(self, node: _Node, key: int, value: int) -> Optional[tuple[int, _Node]]:
        if node.is_leaf:
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i] = value
                return None
            node.keys.insert(i, key)
            node.values.insert(i, value)
            self._size += 1
            if len(node.keys) > self._order:
                return self._split_leaf(node)
            return None
        i = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[i], key, value)
        if split is not None:
            sep, right = split
            node.keys.insert(i, sep)
            node.children.insert(i + 1, right)
            if len(node.keys) > self._order:
                return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node) -> tuple[int, _Node]:
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> tuple[int, _Node]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _find_leaf(self, key: int) -> _Node:
        node = self._root
        while not node.is_leaf:
            i = bisect.bisect_right(node.keys, key)
            node = node.children[i]
        return node

    def get(self, key: int) -> Optional[int]:
        """Point lookup; returns ``None`` when the key is absent."""
        leaf = self._find_leaf(key)
        i = bisect.bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            return leaf.values[i]
        return None

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def range(self, lo: int, hi: int) -> Iterator[tuple[int, int]]:
        """Yield ``(key, value)`` pairs with ``lo <= key < hi`` in key order.

        Walks the leaf chain, so a Morton-contiguous atom range scans
        sequentially — the property batch execution relies on.
        """
        if lo >= hi:
            return
        leaf: Optional[_Node] = self._find_leaf(lo)
        i = bisect.bisect_left(leaf.keys, lo)
        while leaf is not None:
            while i < len(leaf.keys):
                if leaf.keys[i] >= hi:
                    return
                yield leaf.keys[i], leaf.values[i]
                i += 1
            leaf = leaf.next_leaf
            i = 0

    def keys(self) -> Iterator[int]:
        """All keys in ascending order."""
        for k, _ in self.range(-(1 << 62), 1 << 62):
            yield k

    def depth(self) -> int:
        """Tree height (1 for a lone leaf)."""
        d, node = 1, self._root
        while not node.is_leaf:
            d += 1
            node = node.children[0]
        return d

    # ------------------------------------------------------------------
    # Pickling (checkpoint snapshots)
    # ------------------------------------------------------------------
    # Default pickling would recurse once per node through the child
    # pointers AND once per leaf through the ``next_leaf`` chain —
    # thousands of frames at realistic atom counts, i.e. a guaranteed
    # RecursionError.  Flatten to an index-linked node table instead.
    # The exact node layout must survive (not rebuilt by reinsertion):
    # a key's leaf position is its physical disk address, which the
    # disk model's sequential-read detection depends on.
    def __getstate__(self) -> dict[str, Any]:
        nodes: list[_Node] = []
        index: dict[int, int] = {}
        stack = [self._root]
        while stack:
            node = stack.pop()
            if id(node) in index:
                continue
            index[id(node)] = len(nodes)
            nodes.append(node)
            stack.extend(node.children)
        packed = [
            (
                node.is_leaf,
                node.keys,
                [index[id(child)] for child in node.children],
                node.values,
                -1 if node.next_leaf is None else index[id(node.next_leaf)],
            )
            for node in nodes
        ]
        return {
            "order": self._order,
            "size": self._size,
            "root": index[id(self._root)],
            "nodes": packed,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._order = state["order"]
        self._size = state["size"]
        packed = state["nodes"]
        nodes = [_Node(is_leaf=entry[0]) for entry in packed]
        for node, (_, keys, children, values, next_leaf) in zip(nodes, packed):
            node.keys = keys
            node.children = [nodes[i] for i in children]
            node.values = values
            node.next_leaf = None if next_leaf < 0 else nodes[next_leaf]
        self._root = nodes[state["root"]]

    @staticmethod
    def build_clustered(n_keys: int, order: int = 64) -> "BPlusTree":
        """Bulk-build a tree over keys ``0..n_keys-1`` with the identity
        physical layout (key i stored at block address i), matching a
        clustered index freshly loaded in key order."""
        tree = BPlusTree(order=order)
        for k in range(n_keys):
            tree.insert(k, k)
        return tree
