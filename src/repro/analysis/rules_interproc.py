"""Interprocedural determinism rules (the D100/D200/D300 families).

Three whole-program passes over a :class:`~repro.analysis.project.
ProjectModel` + :class:`~repro.analysis.callgraph.CallGraph`, each
closing a gap that per-file lint (D001–D007) structurally cannot see:

========  ==========================================================
rule      what it flags
========  ==========================================================
D100      *RNG stream provenance* — a draw (``.random()``,
          ``.integers()`` …) on a seeded ``Random``/``Generator``
          stream from a subsystem other than the one that
          constructed it.  Streams are tracked from their
          construction site through ``self.attr`` storage and
          function parameters (argument flow over the call graph);
          cross-subsystem draws interleave two subsystems' draw
          sequences on one stream — a determinism race under
          refactoring.
D101      a seeded RNG stream handed across the engine/fault/fuzz
          *scope-family* boundary as a call argument.  Each family
          owns its streams end to end (DESIGN.md §7); sharing one
          stream across families couples their replay.
D200      *checkpoint state-capture completeness* — an attribute of a
          snapshot-participating class assigned a statically
          unpicklable value (lambda, generator expression, open
          file, lock, frame).  Participation is the closure of the
          snapshot roots (``Simulator``) over inferred attribute
          types, plus every class opting into pickling via
          ``__getstate__``/``__setstate__``.
D201      a class with an explicit (non-``__dict__``-copy)
          ``__getstate__``/``__setstate__`` pair whose
          ``__setstate__`` does not restore every attribute the
          class assigns elsewhere — the static analogue of the PR 3
          BPlusTree bug ("new engine attribute silently dropped by
          resume").
D300      *transitive parallel-worker purity* — D006 extended from
          file scope to the call-graph closure of the
          ``repro.parallel`` worker entry points: any reachable
          wall-clock read, process-identity read, or module-level
          (unseeded) RNG draw, with one example call chain in the
          message.
========  ==========================================================

All passes are syntactic and conservative; intentional exceptions are
suppressed inline (``# jawslint: disable=D300 - why``) or recorded in
the baseline ledger (:mod:`repro.analysis.baseline`) with a rationale.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.lint import (
    _NP_RANDOM_ALLOWED,
    _PROCESS_IDENTITY_FNS,
    _RANDOM_ALLOWED,
    _WALL_CLOCK_DATETIME_FNS,
    _WALL_CLOCK_TIME_FNS,
    LintViolation,
    RULES,
)
from repro.analysis.project import (
    AttrAssign,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    dotted_name,
    scope_family,
    subsystem_of,
)

__all__ = ["InterprocConfig", "run_interproc"]


@dataclass(frozen=True)
class InterprocConfig:
    """Tunables for the whole-program passes (tests override these to
    point the analyzer at fixture trees)."""

    #: Classes whose instances are captured wholesale into checkpoint
    #: snapshots (``CheckpointManager._capture_state`` pickles
    #: ``vars(sim)``); the D200 participant set is their closure.
    snapshot_roots: Tuple[str, ...] = ("repro.engine.simulator.Simulator",)

    #: (class qualname, attribute) pairs excluded from snapshot capture.
    #: Must mirror the exclusions in
    #: :func:`repro.recovery.checkpoint._capture_state` — the manager
    #: holds open file handles and is rebuilt on restore.
    snapshot_excluded_attrs: FrozenSet[Tuple[str, str]] = frozenset(
        {("repro.engine.simulator.Simulator", "_checkpointer")}
    )

    #: Subsystems whose functions are parallel-worker entry points
    #: (D300 closes over everything they can reach).
    worker_subsystems: Tuple[str, ...] = ("parallel",)


# --------------------------------------------------------------------------
# Shared helpers
# --------------------------------------------------------------------------

#: Fully-resolved constructors that create an RNG stream object.
_RNG_CTORS = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "numpy.random.default_rng",
        "np.random.default_rng",
        "numpy.random.RandomState",
        "np.random.RandomState",
        "numpy.random.Generator",
        "np.random.Generator",
    }
)

#: Methods that consume entropy from a stream (stdlib + numpy).
_DRAW_METHODS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "triangular",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "vonmisesvariate",
        "gammavariate",
        "betavariate",
        "paretovariate",
        "weibullvariate",
        "getrandbits",
        "integers",
        "standard_normal",
        "normal",
        "poisson",
        "exponential",
        "permutation",
        "permuted",
        "rand",
        "randn",
    }
)

_LOCK_CTORS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Barrier",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
        "multiprocessing.Condition",
        "multiprocessing.Event",
        "multiprocessing.Semaphore",
        "multiprocessing.Queue",
    }
)

_FRAME_FNS = frozenset({"sys._getframe", "inspect.currentframe"})


def _resolved_call_name(mod: Optional[ModuleInfo], call: ast.Call) -> Optional[str]:
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    return mod.imports.resolve(dotted) if mod is not None else dotted


def _is_rng_ctor(mod: Optional[ModuleInfo], expr: ast.expr) -> bool:
    if isinstance(expr, ast.IfExp):
        return _is_rng_ctor(mod, expr.body) or _is_rng_ctor(mod, expr.orelse)
    if not isinstance(expr, ast.Call):
        return False
    resolved = _resolved_call_name(mod, expr)
    return resolved in _RNG_CTORS


def _is_wall_clock(resolved: str) -> bool:
    head, _, member = resolved.rpartition(".")
    if head == "time" and member in _WALL_CLOCK_TIME_FNS:
        return True
    return member in _WALL_CLOCK_DATETIME_FNS and head in (
        "datetime",
        "datetime.datetime",
        "datetime.date",
    )


def _is_unseeded_random(resolved: str) -> bool:
    head, _, member = resolved.rpartition(".")
    if head == "random" and member not in _RANDOM_ALLOWED:
        return True
    return head in ("numpy.random", "np.random") and member not in _NP_RANDOM_ALLOWED


def _symbol_of(fn: FunctionInfo) -> str:
    prefix = fn.module + "."
    if fn.qualname.startswith(prefix):
        return fn.qualname[len(prefix):]
    return fn.qualname


def _flag(
    out: List[LintViolation],
    mod: ModuleInfo,
    node: ast.AST,
    rule: str,
    detail: str,
    symbol: str,
) -> None:
    out.append(
        LintViolation(
            path=mod.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=f"{RULES[rule]}: {detail}",
            symbol=symbol,
        )
    )


# --------------------------------------------------------------------------
# D100 / D101 — RNG stream provenance
# --------------------------------------------------------------------------


@dataclass
class _RngRegistry:
    """Where every tracked RNG stream lives and which module owns it."""

    #: (class qualname, attribute name) -> owning module
    attrs: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: attribute name -> set of owning modules (for untyped receivers)
    attr_owners: Dict[str, Set[str]] = field(default_factory=dict)
    #: (module, global name) -> owning module
    globals: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: (function qualname, parameter name) -> owning module, bound from
    #: call-site argument flow
    params: Dict[Tuple[str, str], str] = field(default_factory=dict)


def _collect_rng_registry(model: ProjectModel) -> _RngRegistry:
    reg = _RngRegistry()
    for mod in model.modules.values():
        # Module-level streams.
        for node in mod.tree.body:
            if isinstance(node, ast.Assign) and _is_rng_ctor(mod, node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        reg.globals[(mod.name, target.id)] = mod.name
        # self.<attr> = <rng ctor> anywhere in any method.
        for cls in mod.classes.values():
            for assign in cls.attr_assigns:
                if assign.value is not None and _is_rng_ctor(mod, assign.value):
                    reg.attrs[(cls.qualname, assign.name)] = mod.name
                    reg.attr_owners.setdefault(assign.name, set()).add(mod.name)
    return reg


def _local_rng_vars(mod: ModuleInfo, fn: FunctionInfo) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and _is_rng_ctor(mod, node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
    return out


def _param_names(fn: FunctionInfo) -> List[str]:
    args = fn.node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    names += [a.arg for a in args.kwonlyargs]
    return names


def _rng_ref_owner(
    reg: _RngRegistry,
    mod: ModuleInfo,
    fn: FunctionInfo,
    local_rngs: Set[str],
    expr: ast.expr,
) -> Optional[str]:
    """Owning module of the stream ``expr`` refers to, or ``None``."""
    name = dotted_name(expr)
    if name is None:
        return None
    if "." not in name:
        if name in local_rngs:
            return mod.name
        if (mod.name, name) in reg.globals:
            return mod.name
        if (fn.qualname, name) in reg.params:
            return reg.params[(fn.qualname, name)]
        return None
    parts = name.split(".")
    if parts[0] == "self" and len(parts) == 2 and fn.class_name is not None:
        key = (f"{mod.name}.{fn.class_name}", parts[1])
        if key in reg.attrs:
            return reg.attrs[key]
    # Fall back to the terminal attribute name when it identifies a
    # unique owning module across the whole project.
    owners = reg.attr_owners.get(parts[-1], set())
    if len(owners) == 1:
        return next(iter(owners))
    return None


def _precise_callee(
    model: ProjectModel, fn: FunctionInfo, call: ast.Call
) -> Optional[FunctionInfo]:
    """Resolve a call site to exactly one project function (no dynamic
    dispatch) — required before binding arguments to parameters."""
    mod = model.modules.get(fn.module)
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    if dotted.startswith("self.") and dotted.count(".") == 1:
        if fn.class_name is not None:
            cls = model.resolve_class(fn.module, fn.class_name)
            if cls is not None and dotted[5:] in cls.methods:
                return cls.methods[dotted[5:]]
        return None
    if mod is not None and dotted in mod.functions:
        return mod.functions[dotted]
    resolved = mod.imports.resolve(dotted) if mod is not None else dotted
    if resolved in model.functions:
        return model.functions[resolved]
    cls = model.resolve_class(fn.module, dotted)
    if cls is not None and "__init__" in cls.methods:
        return cls.methods["__init__"]
    if "." in resolved:
        head, _, tail = resolved.rpartition(".")
        target_mod = model.modules.get(head)
        if target_mod is not None and tail in target_mod.functions:
            return target_mod.functions[tail]
    return None


def _bind_param_provenance(
    model: ProjectModel, reg: _RngRegistry, violations: List[LintViolation]
) -> None:
    """Flow RNG references through call arguments: fills ``reg.params``
    and raises D101 when a stream crosses a scope-family boundary.

    One fixed-point-free pass is enough for the codebase's one-hop
    hand-off patterns (constructor → attribute → helper); deeper chains
    would need iteration, which conservatively we skip."""
    for fn in sorted(model.iter_functions(), key=lambda f: f.qualname):
        mod = model.modules.get(fn.module)
        if mod is None:
            continue
        local_rngs = _local_rng_vars(mod, fn)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee = _precise_callee(model, fn, node)
            if callee is None:
                continue
            params = _param_names(callee)
            if params and params[0] == "self" and callee.class_name is not None:
                params = params[1:]
            bindings: List[Tuple[str, ast.expr]] = []
            for index, arg in enumerate(node.args):
                if index < len(params):
                    bindings.append((params[index], arg))
            for keyword in node.keywords:
                if keyword.arg is not None:
                    bindings.append((keyword.arg, keyword.value))
            for param, arg in bindings:
                owner = _rng_ref_owner(reg, mod, fn, local_rngs, arg)
                if owner is None:
                    continue
                reg.params[(callee.qualname, param)] = owner
                owner_scope = scope_family(owner)
                callee_scope = scope_family(callee.module)
                if owner_scope != callee_scope:
                    _flag(
                        violations,
                        mod,
                        node,
                        "D101",
                        f"stream constructed in {owner} ({owner_scope} scope) "
                        f"passed to {callee.qualname}() ({callee_scope} scope)",
                        _symbol_of(fn),
                    )


def _check_rng_draws(
    model: ProjectModel, reg: _RngRegistry, violations: List[LintViolation]
) -> None:
    for fn in sorted(model.iter_functions(), key=lambda f: f.qualname):
        mod = model.modules.get(fn.module)
        if mod is None:
            continue
        local_rngs = _local_rng_vars(mod, fn)
        here = subsystem_of(mod.name)
        for node in ast.walk(fn.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _DRAW_METHODS
            ):
                continue
            owner = _rng_ref_owner(reg, mod, fn, local_rngs, node.func.value)
            if owner is None or subsystem_of(owner) == here:
                continue
            _flag(
                violations,
                mod,
                node,
                "D100",
                f".{node.func.attr}() on a stream owned by {owner} "
                f"(subsystem '{subsystem_of(owner)}') from subsystem "
                f"'{here}' — draws interleave across subsystems",
                _symbol_of(fn),
            )


# --------------------------------------------------------------------------
# D200 / D201 — checkpoint state-capture completeness
# --------------------------------------------------------------------------


def _annotation_class(
    model: ProjectModel, mod: ModuleInfo, annotation: Optional[ast.expr]
) -> Optional[ClassInfo]:
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return model.resolve_class(mod.name, annotation.value.strip("'\""))
    name = dotted_name(annotation)
    if name is None:
        return None
    return model.resolve_class(mod.name, name)


def _attr_type_edges(
    model: ProjectModel, cls: ClassInfo
) -> List[Tuple[str, ClassInfo]]:
    """(attribute, target class) edges inferred from constructor calls
    in assignment RHSs and from stored constructor parameters with
    resolvable annotations."""
    mod = model.modules.get(cls.module)
    if mod is None:
        return []
    edges: List[Tuple[str, ClassInfo]] = []
    init = cls.methods.get("__init__")
    param_types: Dict[str, ClassInfo] = {}
    if init is not None:
        args = init.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            target = _annotation_class(model, mod, arg.annotation)
            if target is not None:
                param_types[arg.arg] = target
    for assign in cls.attr_assigns:
        if assign.value is None:
            continue
        if isinstance(assign.value, ast.Name) and assign.value.id in param_types:
            edges.append((assign.name, param_types[assign.value.id]))
            continue
        for sub in ast.walk(assign.value):
            if not isinstance(sub, ast.Call):
                continue
            name = dotted_name(sub.func)
            if name is None or name.startswith("self."):
                continue
            target = model.resolve_class(cls.module, name)
            if target is not None:
                edges.append((assign.name, target))
    return edges


def _snapshot_participants(
    model: ProjectModel, config: InterprocConfig
) -> Dict[str, ClassInfo]:
    """Closure of the snapshot roots over attribute-type edges, plus
    every class opting into pickling, plus subclasses of participants
    (a subclass instance can sit wherever its base does)."""
    participants: Dict[str, ClassInfo] = {}
    queue: List[ClassInfo] = []
    for root in config.snapshot_roots:
        cls = model.classes.get(root)
        if cls is not None:
            queue.append(cls)
    for cls in model.classes.values():
        if cls.has_getstate or cls.has_setstate:
            queue.append(cls)
    while queue:
        cls = queue.pop()
        if cls.qualname in participants:
            continue
        participants[cls.qualname] = cls
        for attr, target in _attr_type_edges(model, cls):
            if (cls.qualname, attr) in config.snapshot_excluded_attrs:
                continue
            queue.append(target)
        queue.extend(model.subclasses_of(cls))
    return participants


def _unpicklable_kind(mod: ModuleInfo, expr: ast.expr) -> Optional[str]:
    """A human-readable label when ``expr`` is statically unpicklable."""
    if isinstance(expr, ast.Lambda):
        return "a lambda"
    if isinstance(expr, ast.GeneratorExp):
        return "a generator expression"
    if isinstance(expr, ast.IfExp):
        return _unpicklable_kind(mod, expr.body) or _unpicklable_kind(mod, expr.orelse)
    if isinstance(expr, ast.BoolOp):
        for value in expr.values:
            kind = _unpicklable_kind(mod, value)
            if kind is not None:
                return kind
        return None
    if isinstance(expr, ast.Call):
        if isinstance(expr.func, ast.Attribute) and expr.func.attr == "open":
            return "an open file handle"
        resolved = _resolved_call_name(mod, expr)
        if resolved is None:
            return None
        if resolved in ("open", "io.open"):
            return "an open file handle"
        if resolved in _LOCK_CTORS:
            return f"a {resolved} synchronization primitive"
        if resolved == "socket.socket":
            return "a socket"
        if resolved in _FRAME_FNS:
            return "a bound frame"
    return None


def _check_snapshot_classes(
    model: ProjectModel, config: InterprocConfig, violations: List[LintViolation]
) -> None:
    participants = _snapshot_participants(model, config)
    for qualname in sorted(participants):
        cls = participants[qualname]
        mod = model.modules.get(cls.module)
        if mod is None:
            continue
        curated = cls.has_getstate
        if not curated:
            # D200: every assigned value must be statically picklable.
            for assign in cls.attr_assigns:
                if assign.value is None:
                    continue
                if (cls.qualname, assign.name) in config.snapshot_excluded_attrs:
                    continue
                kind = _unpicklable_kind(mod, assign.value)
                if kind is not None:
                    _flag(
                        violations,
                        mod,
                        assign.value,
                        "D200",
                        f"attribute '{assign.name}' of snapshot-participating "
                        f"class {cls.name} holds {kind} — checkpoint capture "
                        "will fail (or silently drop state) at the next "
                        "snapshot",
                        f"{cls.name}.{assign.method}",
                    )
        elif cls.has_setstate and not cls.getstate_is_dict_copy():
            # D201: explicit state codec must restore every attribute.
            restored = set(cls.attrs_assigned_in("__setstate__"))
            inventory = cls.attrs_assigned_outside("__setstate__", "__getstate__")
            for attr in sorted(set(inventory) - restored):
                assign = inventory[attr]
                if (cls.qualname, attr) in config.snapshot_excluded_attrs:
                    continue
                _flag(
                    violations,
                    mod,
                    assign.value if assign.value is not None else cls.node,
                    "D201",
                    f"attribute '{attr}' of {cls.name} (assigned in "
                    f"{assign.method}) is never restored by __setstate__ — "
                    "crash/resume silently drops it",
                    f"{cls.name}.{assign.method}",
                )


# --------------------------------------------------------------------------
# D300 — transitive parallel-worker purity
# --------------------------------------------------------------------------


def _render_chain(entries: List[str], graph: CallGraph, target: str) -> str:
    path = graph.shortest_path(entries, target)
    if not path:
        return target
    shown = [p.rsplit(".", 2)[-1] if p.count(".") > 2 else p for p in path]
    if len(shown) > 6:
        shown = shown[:3] + ["…"] + shown[-2:]
    return " -> ".join(shown)


def _check_worker_purity(
    model: ProjectModel,
    graph: CallGraph,
    config: InterprocConfig,
    violations: List[LintViolation],
) -> None:
    entries = sorted(
        fn.qualname
        for fn in model.iter_functions()
        if subsystem_of(fn.module) in config.worker_subsystems
    )
    if not entries:
        return
    closure = graph.reachable_from(entries)
    for qualname in sorted(closure):
        fn = model.functions.get(qualname)
        if fn is None:
            continue
        mod = model.modules.get(fn.module)
        if mod is None:
            continue
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            resolved = mod.imports.resolve(dotted)
            impurity: Optional[str] = None
            if _is_wall_clock(resolved):
                impurity = f"wall-clock read {resolved}()"
            elif resolved in _PROCESS_IDENTITY_FNS:
                impurity = f"process-identity read {resolved}()"
            elif _is_unseeded_random(resolved):
                impurity = f"module-level RNG draw {resolved}()"
            if impurity is None:
                continue
            _flag(
                violations,
                mod,
                node,
                "D300",
                f"{impurity} is reachable from a parallel worker entry "
                f"point via {_render_chain(entries, graph, qualname)}",
                _symbol_of(fn),
            )


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------


def run_interproc(
    model: ProjectModel, config: Optional[InterprocConfig] = None
) -> List[LintViolation]:
    """Run every whole-program pass over ``model``; returns raw
    violations (inline suppressions and the baseline ledger are applied
    by the caller, :func:`repro.analysis.lint.run_analysis`)."""
    cfg = config or InterprocConfig()
    violations: List[LintViolation] = []

    registry = _collect_rng_registry(model)
    _bind_param_provenance(model, registry, violations)
    _check_rng_draws(model, registry, violations)

    _check_snapshot_classes(model, cfg, violations)

    graph = build_call_graph(model)
    _check_worker_purity(model, graph, cfg, violations)

    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations
