"""Suppression baseline ledger for ``jawslint``.

Inline ``# jawslint: disable=…`` comments suit single-line exceptions;
the interprocedural rules (D100–D300) flag *properties of symbols* —
a method whose overhead profiling legitimately reads the wall clock, a
curated snapshot exclusion — where scattering per-line pragmas across
many lines of one method obscures the (single) decision.  The baseline
ledger records those decisions in one reviewable, checked-in file:

.. code-block:: json

    {
      "version": 1,
      "entries": [
        {
          "rule": "D300",
          "path": "src/repro/core/jaws.py",
          "symbol": "JAWS2Scheduler.next_batch",
          "rationale": "Table I gating-overhead profiling; counters are
                        excluded from bit-identity comparisons."
        }
      ]
    }

Matching is by ``(rule, path suffix, symbol)`` — deliberately *not* by
line number, so unrelated edits never invalidate the ledger.  Every
entry **must** carry a non-empty ``rationale``; loading a ledger with a
silent entry is a hard error (exit 2), which is what makes the ledger
an audit trail rather than a mute button.  Entries that no longer match
any finding are reported as *unused* so stale suppressions get cleaned
up instead of hiding future regressions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path, PurePath
from typing import Iterable, List, Tuple

from repro.analysis.lint import NON_BASELINABLE_RULES, LintViolation

__all__ = ["Baseline", "BaselineEntry", "BaselineError"]


class BaselineError(ValueError):
    """The ledger file is malformed or an entry lacks its rationale."""


@dataclass(frozen=True)
class BaselineEntry:
    """One recorded, rationalized finding."""

    rule: str
    path: str  # posix-style path suffix, e.g. src/repro/core/jaws.py
    symbol: str  # enclosing dotted symbol, e.g. JAWS2Scheduler.next_batch
    rationale: str

    def matches(self, violation: LintViolation) -> bool:
        if violation.rule != self.rule or violation.symbol != self.symbol:
            return False
        vpath = PurePath(violation.path).as_posix()
        return vpath == self.path or vpath.endswith("/" + self.path)


@dataclass
class Baseline:
    """A loaded ledger plus bookkeeping for unused-entry reporting."""

    path: str
    entries: List[BaselineEntry]

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(raw, dict) or not isinstance(raw.get("entries"), list):
            raise BaselineError(
                f"baseline {path}: expected an object with an 'entries' list"
            )
        entries: List[BaselineEntry] = []
        for index, item in enumerate(raw["entries"]):
            if not isinstance(item, dict):
                raise BaselineError(f"baseline {path}: entry {index} is not an object")
            missing = [k for k in ("rule", "path", "symbol", "rationale") if k not in item]
            if missing:
                raise BaselineError(
                    f"baseline {path}: entry {index} lacks {', '.join(missing)}"
                )
            if str(item["rule"]) in NON_BASELINABLE_RULES:
                raise BaselineError(
                    f"baseline {path}: entry {index} "
                    f"({item['rule']} {item['path']} {item['symbol']}) — "
                    f"{item['rule']} findings cannot be baselined; fix the "
                    "per-element loop, or carry an inline "
                    "'# jawslint: disable' pragma with a written reason for "
                    "a genuinely cold path"
                )
            rationale = str(item["rationale"]).strip()
            if not rationale:
                raise BaselineError(
                    f"baseline {path}: entry {index} "
                    f"({item['rule']} {item['path']} {item['symbol']}) has an "
                    "empty rationale — every baselined finding must say why "
                    "it is intentional"
                )
            entries.append(
                BaselineEntry(
                    rule=str(item["rule"]),
                    path=PurePath(str(item["path"])).as_posix(),
                    symbol=str(item["symbol"]),
                    rationale=rationale,
                )
            )
        return cls(path=str(path), entries=entries)

    def apply(
        self, violations: Iterable[LintViolation]
    ) -> Tuple[List[LintViolation], int, List[BaselineEntry]]:
        """Split ``violations`` into (surviving, suppressed_count,
        unused_entries)."""
        surviving: List[LintViolation] = []
        used: set[BaselineEntry] = set()
        suppressed = 0
        for violation in violations:
            entry = next((e for e in self.entries if e.matches(violation)), None)
            if entry is None:
                surviving.append(violation)
            else:
                used.add(entry)
                suppressed += 1
        unused = [e for e in self.entries if e not in used]
        return surviving, suppressed, unused
