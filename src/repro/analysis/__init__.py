"""Correctness tooling for the JAWS reproduction.

Two independent prongs guard the simulator's determinism contract
(DESIGN.md §7, §12):

* ``jawslint`` — static analysis, now in two layers sharing one driver
  (:func:`repro.analysis.lint.run_analysis`):

  - :mod:`repro.analysis.lint` — per-file determinism rules
    (D001–D007) plus the report/baseline/CLI plumbing;
  - :mod:`repro.analysis.project`, :mod:`repro.analysis.callgraph`,
    :mod:`repro.analysis.rules_interproc` — the whole-program passes
    (D100 RNG stream provenance, D200 checkpoint state-capture
    completeness, D300 transitive parallel-worker purity) over a
    project model and conservative call graph;
  - :mod:`repro.analysis.baseline` — the checked-in suppression
    ledger (every entry carries a written rationale);

* :mod:`repro.analysis.sanitizer` — a runtime invariant checker wired
  into the discrete-event engine via ``EngineConfig(sanitize=True)``,
  raising :class:`~repro.errors.InvariantViolation` with a full state
  snapshot the moment an engine invariant breaks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "AnalysisReport",
    "LintViolation",
    "lint_paths",
    "lint_source",
    "run_analysis",
    "SimulationSanitizer",
]

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.lint import (
        AnalysisReport,
        LintViolation,
        lint_paths,
        lint_source,
        run_analysis,
    )
    from repro.analysis.sanitizer import SimulationSanitizer


def __getattr__(name: str) -> object:
    # Lazy re-exports: keeps ``python -m repro.analysis.lint`` from
    # importing the submodule twice (runpy RuntimeWarning) and spares
    # the engine from loading the linter machinery it never uses.
    if name in {"AnalysisReport", "LintViolation", "lint_paths", "lint_source", "run_analysis"}:
        from repro.analysis import lint

        return getattr(lint, name)
    if name == "SimulationSanitizer":
        from repro.analysis.sanitizer import SimulationSanitizer

        return SimulationSanitizer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
