"""Correctness tooling for the JAWS reproduction.

Two independent prongs guard the simulator's determinism contract
(DESIGN.md §7):

* :mod:`repro.analysis.lint` — ``jawslint``, a stdlib-``ast`` static
  analysis pass with project-specific determinism rules (D001–D006),
  runnable as ``repro lint`` or ``python -m repro.analysis.lint``;
* :mod:`repro.analysis.sanitizer` — a runtime invariant checker wired
  into the discrete-event engine via ``EngineConfig(sanitize=True)``,
  raising :class:`~repro.errors.InvariantViolation` with a full state
  snapshot the moment an engine invariant breaks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "LintViolation",
    "lint_paths",
    "lint_source",
    "SimulationSanitizer",
]

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.lint import LintViolation, lint_paths, lint_source
    from repro.analysis.sanitizer import SimulationSanitizer


def __getattr__(name: str) -> object:
    # Lazy re-exports: keeps ``python -m repro.analysis.lint`` from
    # importing the submodule twice (runpy RuntimeWarning) and spares
    # the engine from loading the linter machinery it never uses.
    if name in {"LintViolation", "lint_paths", "lint_source"}:
        from repro.analysis import lint

        return getattr(lint, name)
    if name == "SimulationSanitizer":
        from repro.analysis.sanitizer import SimulationSanitizer

        return SimulationSanitizer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
