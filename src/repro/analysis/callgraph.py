"""Conservative call graph over a :class:`~repro.analysis.project.ProjectModel`.

The graph drives reachability questions the interprocedural rules ask —
most importantly D300: *which functions can a parallel worker entry
point reach?*  For a purity analysis the graph must **over**-approximate:
a missed edge silently exempts impure code, while a spurious edge at
worst flags a line that then needs an (auditable) suppression.  Edges:

* direct calls to module-level functions, resolved through each
  module's import aliases (``run_trace(...)``, ``runner.run_trace(...)``,
  ``from … import run_trace``);
* ``self.method(...)`` → the method on the enclosing class or any of
  its project base classes;
* ``ClassName(...)`` → ``ClassName.__init__`` (instantiation runs it);
* **dynamic dispatch by method name**: ``obj.method(...)`` on a
  receiver of unknown static type adds edges to *every* project class
  method of that name.  This is the deliberate over-approximation that
  lets the closure follow ``node.scheduler.next_batch()`` into every
  scheduler implementation without type inference.

Builtin/stdlib attribute calls (``list.append``, ``dict.get`` …) only
produce edges when a project class happens to define a method of the
same name — harmless for purity, since the rule only fires on functions
that actually contain an impure read.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, List, Optional, Set

from repro.analysis.project import FunctionInfo, ProjectModel, dotted_name

__all__ = ["CallGraph", "build_call_graph"]


class CallGraph:
    """Qualname → callee-qualname adjacency with reachability helpers."""

    def __init__(self) -> None:
        self.edges: Dict[str, Set[str]] = {}

    def add_edge(self, caller: str, callee: str) -> None:
        self.edges.setdefault(caller, set()).add(callee)

    def callees(self, qualname: str) -> Set[str]:
        return self.edges.get(qualname, set())

    def reachable_from(self, entries: List[str]) -> Set[str]:
        """Every qualname reachable from ``entries`` (inclusive), via a
        deterministic breadth-first sweep."""
        seen: Set[str] = set()
        queue = deque(sorted(entries))
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(sorted(self.callees(current) - seen))
        return seen

    def shortest_path(self, entries: List[str], target: str) -> List[str]:
        """One shortest entry→target call chain (for diagnostics);
        empty when unreachable.  Deterministic: neighbors expand in
        sorted order."""
        parents: Dict[str, Optional[str]] = {e: None for e in sorted(entries)}
        queue = deque(sorted(entries))
        while queue:
            current = queue.popleft()
            if current == target:
                path: List[str] = []
                walk: Optional[str] = current
                while walk is not None:
                    path.append(walk)
                    walk = parents[walk]
                return list(reversed(path))
            for callee in sorted(self.callees(current)):
                if callee not in parents:
                    parents[callee] = current
                    queue.append(callee)
        return []


def _method_on_class_or_bases(
    model: ProjectModel, class_name: Optional[str], module: str, method: str
) -> Optional[FunctionInfo]:
    """Look up ``self.<method>`` on the enclosing class, walking project
    base classes (single pass, no MRO subtleties needed for analysis)."""
    if class_name is None:
        return None
    cls = model.resolve_class(module, class_name)
    seen: Set[str] = set()
    while cls is not None and cls.qualname not in seen:
        seen.add(cls.qualname)
        if method in cls.methods:
            return cls.methods[method]
        next_cls = None
        for base in cls.bases:
            resolved = model.resolve_class(cls.module, base)
            if resolved is not None:
                next_cls = resolved
                break
        cls = next_cls
    return None


def _edges_for_call(
    model: ProjectModel, fn: FunctionInfo, call: ast.Call
) -> List[str]:
    """Resolve one call site to zero or more callee qualnames."""
    out: List[str] = []
    mod = model.modules.get(fn.module)
    func = call.func
    dotted = dotted_name(func)

    if dotted is not None and dotted.startswith("self."):
        rest = dotted.split(".")
        if len(rest) == 2:  # self.method(...)
            target = _method_on_class_or_bases(model, fn.class_name, fn.module, rest[1])
            if target is not None:
                return [target.qualname]
        # self.attr.method(...) falls through to dynamic dispatch below.
    elif dotted is not None:
        resolved = mod.imports.resolve(dotted) if mod is not None else dotted
        # Module-level function in the same module.
        if mod is not None and dotted in mod.functions:
            return [mod.functions[dotted].qualname]
        # Class instantiation (local, imported, or unique-by-name).
        cls = model.resolve_class(fn.module, dotted)
        if cls is not None:
            if "__init__" in cls.methods:
                return [cls.methods["__init__"].qualname]
            return [cls.qualname]  # attribute-less ctor still marks the class
        # Fully-resolved project function (import-from or dotted access).
        if resolved in model.functions:
            return [model.functions[resolved].qualname]
        tail = resolved.rsplit(".", 1)[-1]
        if "." in resolved:
            # `pkg.mod.func` where only `mod` is in the model.
            head = resolved.rsplit(".", 1)[0]
            target_mod = model.modules.get(head)
            if target_mod is not None and tail in target_mod.functions:
                return [target_mod.functions[tail].qualname]

    # Dynamic dispatch: attribute call on an unknown receiver.
    if isinstance(func, ast.Attribute):
        method = func.attr
        for candidate in model.methods_named(method):
            out.append(candidate.qualname)
    return out


def build_call_graph(model: ProjectModel) -> CallGraph:
    """Build the conservative call graph for every function in the model."""
    graph = CallGraph()
    for fn in model.iter_functions():
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            for callee in _edges_for_call(model, fn, node):
                if callee != fn.qualname:
                    graph.add_edge(fn.qualname, callee)
    return graph
