"""``jawslint`` — whole-program determinism analysis for the codebase.

The reproduction's claims (workload-throughput ordering, gating-edge
deadlock freedom, two-level batching) are only checkable because the
discrete-event simulator is bit-for-bit deterministic under a seed.
This module statically enforces the coding rules that contract rests
on, using nothing but the stdlib :mod:`ast`.

Two layers share one driver (:func:`run_analysis`):

* **per-file rules** D001–D007 — single-pass AST checks, below;
* **whole-program rules** D100/D101 (RNG stream provenance), D200/D201
  (checkpoint state-capture completeness) and D300 (transitive
  parallel-worker purity), which run over a project model + call graph
  built from every ``repro.*`` module found under the linted paths —
  see :mod:`repro.analysis.project`, :mod:`repro.analysis.callgraph`
  and :mod:`repro.analysis.rules_interproc`.

Per-file rule table:

========  ==========================================================
rule      what it flags
========  ==========================================================
D001      wall-clock reads (``time.time``, ``time.perf_counter``,
          ``datetime.now`` …) — real time must never leak into
          simulation state; only the virtual clock may advance it.
D002      unseeded randomness (module-level ``random.*`` or
          ``numpy.random.*`` draws).  All randomness must flow
          through an explicitly seeded ``random.Random`` /
          ``numpy.random.default_rng`` instance.
D003      iteration order hazards: ``for … in`` over a ``set``
          literal/comprehension, ``set(…)``/``frozenset(…)`` call or
          ``.keys()`` view, and ``max(…items(), key=…)`` /
          ``min(…)`` whose key lambda lacks a total-order (tuple)
          tiebreak — both can silently reorder scheduling decisions.
D004      mutable default arguments (shared state across calls).
D005      float equality against the virtual clock (``clock ==``,
          ``now !=`` …) — exact float comparison of accumulated
          virtual times is never meaningful.
D006      *parallel-worker purity* (scoped to files under a
          ``parallel`` package): wall-clock reads (flagged on top of
          D001) and process-identity reads (``os.getpid``,
          ``threading.get_ident``, ``multiprocessing.
          current_process`` …).  Worker results must be pure
          functions of the pickled spec; anything derived from real
          time or worker identity could leak into ``RunResult``
          payloads and break parallel-vs-serial bit-identity.
D007      *fuzz seeding* (scoped to files under a ``fuzz`` package):
          a seedable RNG constructor called with no seed argument
          (``random.Random()``, ``np.random.default_rng()``), or any
          ``random.SystemRandom`` use.  D002 allows seedable
          constructors without inspecting their arguments; in
          scenario-builder code an accidentally unseeded instance
          silently breaks campaign reproducibility and shrinker
          replay, so the gap is closed here.
D400      *columnar discipline* (scoped to files under a
          ``fastengine`` package): a ``for`` loop or comprehension
          iterating a columnar array element-by-element — a name
          ending in ``_col`` (the struct-of-arrays convention),
          a ``.flat`` view, or ``np.nditer(...)`` — including
          through ``enumerate``/``zip``/``reversed``/``iter``.
          Per-element Python loops are exactly the cost the fast
          engine exists to remove; hot-path work over columns must
          use vectorized reductions and boolean masks.  D400 findings
          are **not baselinable**: the ledger rejects them (fix the
          loop, or carry an inline pragma with a written reason for
          genuinely cold paths).
========  ==========================================================

Suppression: append ``# jawslint: disable=D003`` (comma-separate for
several rules, omit ``=…`` to disable all) to the flagged line, with a
comment saying *why* the construct is safe.  A file-wide escape hatch
``# jawslint: disable-file=D001`` exists for generated code.  Findings
that are properties of a whole symbol rather than a line (typical for
D100–D300) go in the checked-in baseline ledger instead
(:mod:`repro.analysis.baseline`; ``jawslint-baseline.json``), where
every entry must carry a written rationale.

Run as ``repro lint [paths…]`` or ``python -m repro.analysis.lint
src tests``; exits non-zero when violations remain.  ``--format
json|sarif`` emits a machine-readable report (including the analyzer's
own ``timing_s``, so CI can watch for runtime regressions); ``--out``
writes it to a file while keeping human-readable text on stdout.  The
rule corpus is exercised by ``tests/test_jawslint.py`` and
``tests/test_jawslint_interproc.py`` against good/bad fixture snippets,
and ``test_source_tree_is_clean`` keeps ``src/repro`` clean at HEAD.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "DEFAULT_BASELINE",
    "INTERPROC_RULES",
    "NON_BASELINABLE_RULES",
    "RULES",
    "AnalysisReport",
    "LintViolation",
    "lint_source",
    "lint_file",
    "lint_paths",
    "run_analysis",
    "main",
]

#: Rule id -> one-line description (the lint table in DESIGN.md §7).
RULES: Dict[str, str] = {
    "D001": "wall-clock read in simulation code (use the virtual clock)",
    "D002": "unseeded randomness (route through a seeded Random/Generator)",
    "D003": "unordered set/dict iteration feeding an ordering decision",
    "D004": "mutable default argument",
    "D005": "float equality comparison against the virtual clock",
    "D006": "wall-clock or process-identity read in parallel-worker code",
    "D007": "unseeded RNG construction in fuzz scenario code (pass an explicit seed)",
    "D400": "per-element Python loop over a columnar array in fast-engine code",
    "D100": "RNG draw on a stream owned by another subsystem",
    "D101": "seeded RNG stream handed across an engine/fault/fuzz scope boundary",
    "D200": "snapshot-participating attribute holds a statically-unpicklable value",
    "D201": "__setstate__ does not restore every attribute the class assigns",
    "D300": "impure call reachable from a parallel worker entry point",
}

#: Rules that need the whole-program project model (run by
#: :func:`run_analysis`, not by the per-file visitors).
INTERPROC_RULES = ("D100", "D101", "D200", "D201", "D300")

#: Rules the baseline ledger refuses to suppress.  A D400 loop in the
#: fast engine is a performance bug by definition — baselining it would
#: quietly license the exact per-element cost the engine exists to
#: remove.  Cold-path exceptions use an inline pragma with a reason.
NON_BASELINABLE_RULES = frozenset({"D400"})

_WALL_CLOCK_TIME_FNS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)
_WALL_CLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

#: numpy.random members that construct *seedable* generators — allowed.
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "MT19937",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
    }
)
#: stdlib random members that construct seedable instances — allowed.
_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})

#: Fully-resolved call targets that read process/thread/host identity —
#: forbidden inside parallel-worker code (D006): any state derived from
#: them differs between the inline path and a pool worker.
_PROCESS_IDENTITY_FNS = frozenset(
    {
        "os.getpid",
        "os.getppid",
        "os.uname",
        "threading.get_ident",
        "threading.get_native_id",
        "threading.current_thread",
        "multiprocessing.current_process",
        "multiprocessing.parent_process",
        "socket.gethostname",
        "platform.node",
    }
)

_SUPPRESS_RE = re.compile(
    r"#\s*jawslint:\s*(disable-file|disable)(?:=([A-Za-z0-9,\s]+))?"
)

_CLOCK_NAMES = frozenset({"clock", "now", "sim_time", "virtual_time"})


@dataclass(frozen=True)
class LintViolation:
    """One lint finding.

    ``symbol`` is the enclosing dotted definition (``Class.method`` or
    ``function``; empty at module level) — the stable coordinate the
    baseline ledger matches on, so line-number churn never invalidates
    a recorded suppression.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    symbol: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "path": str(Path(self.path).as_posix()),
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "symbol": self.symbol,
            "message": self.message,
        }


def _parse_suppressions(source: str) -> Tuple[Dict[int, Optional[Set[str]]], Optional[Set[str]]]:
    """Extract per-line and file-wide rule suppressions.

    Returns ``(line -> rules-or-None, file_rules-or-None)`` where
    ``None`` as a rule set means "all rules".
    """
    per_line: Dict[int, Optional[Set[str]]] = {}
    file_wide: Optional[Set[str]] = None
    file_wide_all = False
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if m is None:
            continue
        kind, raw = m.group(1), m.group(2)
        rules: Optional[Set[str]] = None
        if raw is not None:
            rules = {r.strip().upper() for r in raw.split(",") if r.strip()}
        if kind == "disable":
            if rules is None or lineno not in per_line:
                per_line[lineno] = rules
            elif per_line[lineno] is not None:
                existing = per_line[lineno]
                assert existing is not None
                existing.update(rules)
        else:  # disable-file
            if rules is None:
                file_wide_all = True
            elif file_wide is None:
                file_wide = set(rules)
            else:
                file_wide.update(rules)
    if file_wide_all:
        file_wide = set(RULES)
    return per_line, file_wide


class _ImportTracker:
    """Resolve local names back to the dotted module path they alias."""

    def __init__(self) -> None:
        self._alias: Dict[str, str] = {}

    def visit_import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._alias[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def visit_import_from(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports never alias stdlib time/random
        for alias in node.names:
            self._alias[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def resolve(self, dotted: str) -> str:
        """Rewrite the first segment of ``dotted`` through the alias map."""
        head, _, rest = dotted.partition(".")
        origin = self._alias.get(head, head)
        return f"{origin}.{rest}" if rest else origin


def _is_parallel_scope(path: str) -> bool:
    """True when ``path`` lives inside a ``parallel`` package directory
    (the scope of rule D006)."""
    return "parallel" in Path(path).parts


def _is_fuzz_scope(path: str) -> bool:
    """True when ``path`` lives inside a ``fuzz`` package directory
    (the scope of rule D007)."""
    return "fuzz" in Path(path).parts


def _is_fastengine_scope(path: str) -> bool:
    """True when ``path`` lives inside a ``fastengine`` package
    directory (the scope of rule D400)."""
    return "fastengine" in Path(path).parts


def _dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class _Linter(ast.NodeVisitor):
    """Single-pass rule evaluation over one module's AST."""

    def __init__(self, path: str, imports: _ImportTracker) -> None:
        self.path = path
        self.imports = imports
        self.parallel_scope = _is_parallel_scope(path)
        self.fuzz_scope = _is_fuzz_scope(path)
        self.fastengine_scope = _is_fastengine_scope(path)
        self.violations: List[LintViolation] = []
        self._scope: List[str] = []

    # -- plumbing -----------------------------------------------------------
    def _flag(self, node: ast.AST, rule: str, detail: str) -> None:
        self.violations.append(
            LintViolation(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=f"{RULES[rule]}: {detail}",
                symbol=".".join(self._scope),
            )
        )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    # -- imports ------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        self.imports.visit_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.visit_import_from(node)
        self.generic_visit(node)

    # -- D001 / D002 / D003(b): call-shaped rules ---------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            resolved = self.imports.resolve(dotted)
            self._check_wall_clock(node, resolved)
            self._check_randomness(node, resolved)
            self._check_minmax_items(node, resolved)
            self._check_parallel_purity(node, resolved)
            self._check_fuzz_seeding(node, resolved)
        self.generic_visit(node)

    @staticmethod
    def _is_wall_clock(resolved: str) -> bool:
        head, _, member = resolved.rpartition(".")
        if head == "time" and member in _WALL_CLOCK_TIME_FNS:
            return True
        return member in _WALL_CLOCK_DATETIME_FNS and head in (
            "datetime",
            "datetime.datetime",
            "datetime.date",
        )

    def _check_wall_clock(self, node: ast.Call, resolved: str) -> None:
        if self._is_wall_clock(resolved):
            self._flag(node, "D001", f"call to {resolved}()")

    def _check_randomness(self, node: ast.Call, resolved: str) -> None:
        head, _, member = resolved.rpartition(".")
        if head == "random" and member not in _RANDOM_ALLOWED:
            self._flag(node, "D002", f"module-level random.{member}()")
        elif head in ("numpy.random", "np.random") and member not in _NP_RANDOM_ALLOWED:
            self._flag(node, "D002", f"module-level numpy.random.{member}()")

    def _check_minmax_items(self, node: ast.Call, resolved: str) -> None:
        if resolved not in ("max", "min", "sorted"):
            return
        feeds_items = any(
            self._is_items_or_values_call(arg) for arg in node.args
        )
        if not feeds_items:
            return
        key = next((kw.value for kw in node.keywords if kw.arg == "key"), None)
        if key is None:
            # Bare (key, value) tuple comparison: keys are unique, so
            # the ordering is already total.
            return
        if isinstance(key, ast.Lambda) and not isinstance(key.body, ast.Tuple):
            self._flag(
                node,
                "D003",
                f"{resolved}() over .items()/.values() with a scalar key "
                "lambda — add a total-order tiebreak (return a tuple)",
            )

    # -- D006: parallel-worker purity ----------------------------------------
    def _check_parallel_purity(self, node: ast.Call, resolved: str) -> None:
        if not self.parallel_scope:
            return
        if self._is_wall_clock(resolved):
            # Flagged alongside D001: in worker code a wall-clock read
            # is not just nondeterministic, it can differ per worker and
            # leak into RunResult payloads.
            self._flag(
                node,
                "D006",
                f"call to {resolved}() — worker results must not depend on "
                "real time",
            )
        elif resolved in _PROCESS_IDENTITY_FNS:
            self._flag(
                node,
                "D006",
                f"call to {resolved}() — worker results must not depend on "
                "process/thread identity",
            )

    # -- D007: fuzz scenario-builder seeding ----------------------------------
    def _check_fuzz_seeding(self, node: ast.Call, resolved: str) -> None:
        if not self.fuzz_scope:
            return
        if resolved == "random.SystemRandom":
            # OS entropy can never be seeded: in scenario code it is
            # unreproducible by construction, arguments or not.
            self._flag(
                node,
                "D007",
                "random.SystemRandom draws OS entropy — scenarios built from "
                "it cannot be replayed",
            )
            return
        seedable = resolved == "random.Random" or resolved in (
            "numpy.random.default_rng",
            "np.random.default_rng",
            "numpy.random.RandomState",
            "np.random.RandomState",
        )
        if seedable and not node.args and not node.keywords:
            self._flag(
                node,
                "D007",
                f"{resolved}() constructed without a seed — derive one from "
                "the scenario spec",
            )

    @staticmethod
    def _is_items_or_values_call(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("items", "values")
        )

    # -- D003(a): iteration over unordered collections ----------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_unordered_iter(node.iter)
        self._check_columnar_loop(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_unordered_iter(node.iter)
        self._check_columnar_loop(node.iter)
        self.generic_visit(node)

    # -- D400: columnar discipline in fast-engine code -----------------------
    def _check_columnar_loop(self, iter_node: ast.expr) -> None:
        if not self.fastengine_scope:
            return
        operands: List[ast.expr] = [iter_node]
        if isinstance(iter_node, ast.Call):
            dotted = _dotted_name(iter_node.func)
            resolved = self.imports.resolve(dotted) if dotted is not None else None
            if resolved in ("numpy.nditer", "np.nditer"):
                self._flag(
                    iter_node,
                    "D400",
                    "np.nditer() walks the array element-by-element — use "
                    "vectorized reductions/masks instead",
                )
                return
            if resolved in ("enumerate", "zip", "reversed", "iter"):
                # The wrapper doesn't change what is being iterated.
                operands = list(iter_node.args)
        for operand in operands:
            name = self._columnar_operand(operand)
            if name is not None:
                self._flag(
                    iter_node,
                    "D400",
                    f"iterating {name!r} element-by-element — hot-path work "
                    "over columns must use vectorized numpy reductions and "
                    "boolean masks",
                )
                return

    @staticmethod
    def _columnar_operand(node: ast.expr) -> Optional[str]:
        """The columnar array a loop iterates, or ``None``.

        Recognizes the struct-of-arrays naming convention (``*_col``),
        possibly sliced (``ut_col[:n]``), and ``.flat`` views.
        """
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute) and node.attr == "flat":
            base = _dotted_name(node)
            return base if base is not None else "<array>.flat"
        terminal = None
        if isinstance(node, ast.Attribute):
            terminal = node.attr
        elif isinstance(node, ast.Name):
            terminal = node.id
        if terminal is not None and terminal.endswith("_col"):
            return _dotted_name(node) or terminal
        return None

    def _check_unordered_iter(self, iter_node: ast.expr) -> None:
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            self._flag(iter_node, "D003", "iterating a set literal/comprehension")
            return
        if isinstance(iter_node, ast.Call):
            dotted = _dotted_name(iter_node.func)
            if dotted is not None and self.imports.resolve(dotted) in ("set", "frozenset"):
                self._flag(
                    iter_node,
                    "D003",
                    f"iterating {dotted}(...) — wrap in sorted(...)",
                )
            elif (
                isinstance(iter_node.func, ast.Attribute)
                and iter_node.func.attr == "keys"
            ):
                self._flag(
                    iter_node,
                    "D003",
                    "iterating .keys() — iterate the dict directly (insertion "
                    "order) or wrap in sorted(...)",
                )

    # -- D004: mutable defaults ---------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults: List[ast.expr] = [*node.args.defaults]
        defaults.extend(d for d in node.args.kw_defaults if d is not None)
        for default in defaults:
            if isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
            ):
                self._flag(default, "D004", f"in def {node.name}(...)")
            elif isinstance(default, ast.Call):
                dotted = _dotted_name(default.func)
                if dotted in ("list", "dict", "set", "bytearray", "collections.deque", "deque"):
                    self._flag(default, "D004", f"in def {node.name}(...)")

    # -- D005: float == against the virtual clock ---------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            operands = [node.left, *node.comparators]
            for operand in operands:
                name = self._terminal_name(operand)
                if name is not None and (
                    name in _CLOCK_NAMES or name.endswith("_clock")
                ):
                    self._flag(
                        node,
                        "D005",
                        f"comparing {name!r} with ==/!= — use an ordering or "
                        "tolerance test",
                    )
                    break
        self.generic_visit(node)

    @staticmethod
    def _terminal_name(node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None


def _filter_suppressed(
    violations: Iterable[LintViolation],
    per_line: Dict[int, Optional[Set[str]]],
    file_wide: Optional[Set[str]],
) -> List[LintViolation]:
    out: List[LintViolation] = []
    for violation in violations:
        if file_wide is not None and violation.rule in file_wide:
            continue
        if violation.line in per_line:
            rules = per_line[violation.line]
            if rules is None or violation.rule in rules:
                continue
        out.append(violation)
    return out


def lint_source(source: str, path: str = "<string>") -> List[LintViolation]:
    """Lint one module's source text; returns surviving violations."""
    tree = ast.parse(source, filename=path)
    linter = _Linter(path, _ImportTracker())
    linter.visit(tree)
    per_line, file_wide = _parse_suppressions(source)
    return _filter_suppressed(linter.violations, per_line, file_wide)


def lint_file(path: Path) -> List[LintViolation]:
    """Lint one file on disk."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            LintViolation(
                path=str(path), line=1, col=0, rule="E000", message=f"unreadable: {exc}"
            )
        ]
    try:
        return lint_source(source, str(path))
    except SyntaxError as exc:
        return [
            LintViolation(
                path=str(path),
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule="E000",
                message=f"syntax error: {exc.msg}",
            )
        ]


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts)
            )
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Sequence[str | Path]) -> List[LintViolation]:
    """Lint files and directory trees; returns all surviving violations
    in (path, line) order."""
    violations: List[LintViolation] = []
    for file_path in _iter_python_files(Path(p) for p in paths):
        violations.extend(lint_file(file_path))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


# ---------------------------------------------------------------------------
# Whole-program analysis driver
# ---------------------------------------------------------------------------

#: Default ledger file, auto-loaded from the working directory when
#: present (see :mod:`repro.analysis.baseline`).
DEFAULT_BASELINE = "jawslint-baseline.json"


@dataclass
class AnalysisReport:
    """Everything one analyzer run produced, renderable as text, JSON
    or SARIF.  ``timing_s`` is part of the machine-readable output so
    CI trends catch analyzer-runtime regressions (the whole-tree run
    must stay under its 10 s budget)."""

    paths: List[str]
    violations: List[LintViolation]
    files: int
    timing_s: float
    interproc: bool
    baseline_path: Optional[str] = None
    baseline_suppressed: int = 0
    baseline_unused: List[Dict[str, str]] = field(default_factory=list)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "tool": "jawslint",
            "format_version": 1,
            "paths": self.paths,
            "interproc": self.interproc,
            "rules": dict(sorted(RULES.items())),
            "files": self.files,
            "timing_s": round(self.timing_s, 4),
            "violations": [v.to_json() for v in self.violations],
            "baseline": (
                None
                if self.baseline_path is None
                else {
                    "path": self.baseline_path,
                    "suppressed": self.baseline_suppressed,
                    "unused": self.baseline_unused,
                }
            ),
        }

    def to_sarif_dict(self) -> Dict[str, object]:
        """Minimal SARIF 2.1.0 document (one run, one result per
        violation) for code-scanning UIs."""
        rules = [
            {"id": rule, "shortDescription": {"text": description}}
            for rule, description in sorted(RULES.items())
        ]
        results = [
            {
                "ruleId": v.rule,
                "level": "error",
                "message": {"text": v.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": str(Path(v.path).as_posix())
                            },
                            "region": {
                                "startLine": v.line,
                                "startColumn": max(v.col, 0) + 1,
                            },
                        },
                        "logicalLocations": (
                            [{"fullyQualifiedName": v.symbol}] if v.symbol else []
                        ),
                    }
                ],
            }
            for v in self.violations
        ]
        return {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "jawslint",
                            "informationUri": "https://example.invalid/jawslint",
                            "rules": rules,
                        }
                    },
                    "results": results,
                    "properties": {
                        "timing_s": round(self.timing_s, 4),
                        "files": self.files,
                    },
                }
            ],
        }


def _suppress_interproc(violations: List[LintViolation]) -> List[LintViolation]:
    """Apply each file's inline ``# jawslint: disable`` pragmas to
    whole-program findings (the interprocedural passes see ASTs, not
    comments)."""
    by_path: Dict[str, List[LintViolation]] = {}
    for violation in violations:
        by_path.setdefault(violation.path, []).append(violation)
    out: List[LintViolation] = []
    for path, group in by_path.items():
        try:
            source = Path(path).read_text(encoding="utf-8")
        except OSError:
            out.extend(group)
            continue
        per_line, file_wide = _parse_suppressions(source)
        out.extend(_filter_suppressed(group, per_line, file_wide))
    return out


def run_analysis(
    paths: Sequence[str | Path],
    *,
    interproc: bool = True,
    baseline: Optional["object"] = None,
    interproc_config: Optional["object"] = None,
) -> AnalysisReport:
    """Run the per-file rules and (optionally) the whole-program passes
    over ``paths``, apply inline suppressions and the baseline ledger,
    and return the full report.

    ``baseline`` is a :class:`repro.analysis.baseline.Baseline`;
    ``interproc_config`` a :class:`repro.analysis.rules_interproc.
    InterprocConfig` (both typed loosely here to keep this module
    import-light for the common per-file path).
    """
    import time as _time  # local so per-file users never pay the import

    t0 = _time.perf_counter()  # jawslint: disable=D001 - analyzer self-timing, never enters simulation state
    path_objs = [Path(p) for p in paths]
    files = sum(1 for _ in _iter_python_files(path_objs))
    violations = lint_paths(paths)
    if interproc:
        from repro.analysis.project import ProjectModel
        from repro.analysis.rules_interproc import InterprocConfig, run_interproc

        model = ProjectModel.from_paths(path_objs)
        config = interproc_config if interproc_config is not None else InterprocConfig()
        raw = run_interproc(model, config)  # type: ignore[arg-type]
        violations.extend(_suppress_interproc(raw))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    report = AnalysisReport(
        paths=[str(p) for p in paths],
        violations=violations,
        files=files,
        timing_s=0.0,
        interproc=interproc,
    )
    if baseline is not None:
        surviving, suppressed, unused = baseline.apply(violations)  # type: ignore[attr-defined]
        report.violations = surviving
        report.baseline_path = baseline.path  # type: ignore[attr-defined]
        report.baseline_suppressed = suppressed
        report.baseline_unused = [
            {"rule": e.rule, "path": e.path, "symbol": e.symbol} for e in unused
        ]
    report.timing_s = _time.perf_counter() - t0  # jawslint: disable=D001 - analyzer self-timing, never enters simulation state
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.analysis.lint [paths…]``."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="jawslint",
        description="whole-program determinism analysis for the JAWS codebase",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="fmt",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the --format report to PATH (stdout keeps the text render)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"suppression baseline ledger (default: ./{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline ledger, report every finding",
    )
    parser.add_argument(
        "--no-interproc",
        action="store_true",
        help="per-file rules only (skip the D100/D200/D300 whole-program passes)",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule, description in sorted(RULES.items()):
            print(f"{rule}  {description}")
        return 0
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"jawslint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    baseline = None
    if not args.no_baseline:
        baseline_path: Optional[Path] = None
        if args.baseline is not None:
            baseline_path = Path(args.baseline)
        elif Path(DEFAULT_BASELINE).is_file():
            baseline_path = Path(DEFAULT_BASELINE)
        if baseline_path is not None:
            from repro.analysis.baseline import Baseline, BaselineError

            try:
                baseline = Baseline.load(baseline_path)
            except BaselineError as exc:
                print(f"jawslint: {exc}", file=sys.stderr)
                return 2

    report = run_analysis(
        args.paths, interproc=not args.no_interproc, baseline=baseline
    )

    if args.fmt == "json":
        rendered = json.dumps(report.to_json_dict(), indent=2, sort_keys=True)
    elif args.fmt == "sarif":
        rendered = json.dumps(report.to_sarif_dict(), indent=2, sort_keys=True)
    else:
        rendered = None
    if args.out is not None:
        if rendered is None:
            rendered = "\n".join(v.render() for v in report.violations)
        Path(args.out).write_text(rendered + "\n" if rendered else "")
        for violation in report.violations:
            print(violation.render())
    elif rendered is not None:
        print(rendered)
    else:
        for violation in report.violations:
            print(violation.render())

    for entry in report.baseline_unused:
        print(
            "jawslint: unused baseline entry: "
            f"{entry['rule']} {entry['path']} {entry['symbol']}",
            file=sys.stderr,
        )
    if report.violations:
        print(f"jawslint: {len(report.violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
