"""Runtime simulation sanitizer: engine invariants checked per event.

Static lint (:mod:`repro.analysis.lint`) catches nondeterminism at the
source level; this module catches *state corruption* at run time.  When
``EngineConfig(sanitize=True)`` is set, the discrete-event engine
creates one :class:`SimulationSanitizer` and calls back into it

* from :meth:`Simulator._push` — no event may be scheduled into the
  past;
* after every dispatched event — the full invariant sweep below;
* from :meth:`BatchExecutor.execute` — batch outcomes must be sane.

Checked invariants (DESIGN.md §7 lists them with their rationale):

``clock_monotonicity``
    The virtual clock is finite, non-negative and never decreases.
``subquery_conservation``
    For every arrived, incomplete query, the engine's outstanding
    counter equals the number of its sub-queries physically present in
    the system (workload queues + gating holds + in-flight batches +
    parked REROUTE events): arrived = pending + in-flight + completed
    + cancelled, per query.
``shed_conservation``
    Every admitted query lands in exactly one bucket at all times:
    ``admitted = completed + cancelled + shed + pending``.  Checked on
    every run (shed is zero without overload protection), so overload
    shedding cannot silently lose or double-count a query.
``queue_coherence``
    Every node's :class:`~repro.core.queues.WorkloadQueues` slot map is
    internally consistent (slot bijection, position counts, cached
    flags, total-position accounting).
``gating_acyclicity`` / ``gating_consistency``
    Every node's precedence graph partitions queries into cliques with
    at most one query per job, its contracted group graph is acyclic
    (the paper's deadlock-freedom condition), and its gating numbers
    are a stable fixed point.
``batch_sanity``
    A batch's duration is finite and non-negative and its failed
    sub-queries are a subset of the batch's own sub-queries.

Any breach raises :class:`~repro.errors.InvariantViolation` with the
invariant name, evidence, and the engine's diagnostics snapshot.  The
sanitizer only *reads* engine state, so a sanitized run produces a
bit-identical :class:`~repro.engine.results.RunResult` to an
unsanitized one (asserted by ``tests/test_sanitizer.py``).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import TYPE_CHECKING, Dict, Mapping, Optional

from repro.engine.events import EventKind
from repro.errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.core.base import Batch
    from repro.engine.executor import BatchOutcome
    from repro.engine.simulator import Simulator

__all__ = ["SimulationSanitizer"]


class SimulationSanitizer:
    """Per-event invariant checker attached to one simulator.

    The sanitizer is strictly observational: it never mutates engine
    state, so enabling it cannot change simulation results — only turn
    silent corruption into an immediate, diagnosable failure.

    Attributes
    ----------
    checks:
        Number of full invariant sweeps executed (diagnostics).
    """

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._last_clock = 0.0
        self.checks = 0

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle without the simulator back-reference.

        The sanitizer is part of checkpoint snapshot state (its
        ``_last_clock`` / ``checks`` progress must survive a crash), but
        serializing ``_sim`` would recursively duplicate the entire
        engine.  ``Simulator.restore`` calls :meth:`attach` to rewire
        the back-reference on the rebuilt object.
        """
        state = dict(self.__dict__)
        state["_sim"] = None
        return state

    def attach(self, sim: "Simulator") -> None:
        """Re-point a restored sanitizer at its rebuilt simulator."""
        self._sim = sim

    # ------------------------------------------------------------------
    def _raise(
        self, invariant: str, message: str, details: Optional[Mapping[str, object]] = None
    ) -> None:
        sim = self._sim
        raise InvariantViolation(
            invariant,
            message,
            details=details,
            clock=sim.clock,
            event_index=sim.event_index,
            rng_digest=sim.injector.rng_digest() if sim.injector is not None else None,
            pending_queries=sorted(sim._remaining),
            queue_depths=[n.scheduler.queue_depth() for n in sim.nodes],
            busy_flags=[n.busy for n in sim.nodes],
        )

    # ------------------------------------------------------------------
    # Hook: event scheduling (Simulator._push)
    # ------------------------------------------------------------------
    def on_schedule(self, time_: float, kind: EventKind) -> None:
        """An event is being pushed onto the heap at virtual ``time_``."""
        if not math.isfinite(time_):
            self._raise(
                "clock_monotonicity",
                f"non-finite event time scheduled for {kind.name}",
                {"event_time": time_, "event_kind": kind.name},
            )
        if time_ < self._sim.clock:
            self._raise(
                "clock_monotonicity",
                f"{kind.name} scheduled into the past",
                {"event_time": time_, "clock": self._sim.clock, "event_kind": kind.name},
            )

    # ------------------------------------------------------------------
    # Hook: batch execution (BatchExecutor.execute)
    # ------------------------------------------------------------------
    def check_batch(self, batch: "Batch", outcome: "BatchOutcome") -> None:
        """Validate one executed batch's outcome."""
        if not math.isfinite(outcome.duration) or outcome.duration < 0:
            self._raise(
                "batch_sanity",
                "batch duration must be finite and non-negative",
                {"duration": outcome.duration, "atoms": batch.atom_ids()},
            )
        batch_sqs = {id(sq) for _, subs in batch.atoms for sq in subs}
        stray = [sq for sq in outcome.failed if id(sq) not in batch_sqs]
        if stray:
            self._raise(
                "batch_sanity",
                "failed sub-queries are not a subset of the batch",
                {"stray_query_ids": sorted({sq.query.query_id for sq in stray})},
            )

    # ------------------------------------------------------------------
    # Hook: after every dispatched event
    # ------------------------------------------------------------------
    def after_event(self) -> None:
        """Run the full invariant sweep against current engine state."""
        self.checks += 1
        self._check_clock()
        self._check_conservation()
        self._check_shed_conservation()
        self._check_queues()
        self._check_gating()

    # -- clock --------------------------------------------------------------
    def _check_clock(self) -> None:
        clock = self._sim.clock
        if not math.isfinite(clock) or clock < 0:
            self._raise(
                "clock_monotonicity",
                "virtual clock must be finite and non-negative",
                {"clock": clock},
            )
        if clock < self._last_clock:
            self._raise(
                "clock_monotonicity",
                "virtual clock moved backwards",
                {"clock": clock, "previous": self._last_clock},
            )
        self._last_clock = clock

    # -- sub-query conservation ---------------------------------------------
    def _located_subqueries(self) -> tuple[Counter, Counter]:
        """Count, per query id, every sub-query physically present in
        the system, split into two counters: *queued* (node workload
        queues and gating holds — pruned by ``cancel_query``) and
        *zombie-capable* (in-flight batches and parked REROUTE events —
        work a cancellation cannot reach; the engine discards it when
        the batch completes or the REROUTE fires)."""
        queued: Counter = Counter()
        zombie: Counter = Counter()
        sim = self._sim
        for node in sim.nodes:
            for sq in node.scheduler.iter_pending():
                queued[sq.query.query_id] += 1
            if node.inflight is not None:
                for _, subs in node.inflight.atoms:
                    for sq in subs:
                        zombie[sq.query.query_id] += 1
        for event in sim._heap:
            if event.kind is EventKind.REROUTE:
                sq, _arrival = event.payload
                zombie[sq.query.query_id] += 1
        return queued, zombie

    def _check_conservation(self) -> None:
        sim = self._sim
        queued, zombie = self._located_subqueries()
        mismatches: Dict[int, Dict[str, int]] = {}
        for query_id, outstanding in sim._remaining.items():
            present = queued.get(query_id, 0) + zombie.get(query_id, 0)
            if present != outstanding:
                mismatches[query_id] = {"outstanding": outstanding, "present": present}
        # Only *queued* sub-queries of a finished query are orphans:
        # cancellation prunes every workload queue, so presence there is
        # a real leak.  In-flight batch entries and parked REROUTEs of a
        # cancelled query are by-design zombies — a running disk batch
        # cannot be preempted and a parked REROUTE is dropped when it
        # fires — so they are exempt.
        orphans = sorted(qid for qid in queued if qid not in sim._remaining)
        if mismatches:
            self._raise(
                "subquery_conservation",
                "outstanding counters disagree with located sub-queries "
                "(arrived != pending + in-flight + completed + cancelled)",
                {"mismatches": mismatches},
            )
        if orphans:
            self._raise(
                "subquery_conservation",
                "sub-queries of completed/cancelled queries are still queued",
                {"orphan_query_ids": orphans},
            )

    # -- shed conservation ----------------------------------------------------
    def _check_shed_conservation(self) -> None:
        """Every admitted query is in exactly one terminal or live
        bucket: ``admitted == completed + cancelled + shed + pending``.
        Holds with or without overload protection (shed is zero in
        unprotected runs), so a lost or double-counted query is caught
        at the very event that corrupts the books."""
        sim = self._sim
        accounted = sim._completed + sim._cancelled + sim._shed + len(sim._remaining)
        if sim._admitted != accounted:
            self._raise(
                "shed_conservation",
                "admitted != completed + cancelled + shed + pending",
                {
                    "admitted": sim._admitted,
                    "completed": sim._completed,
                    "cancelled": sim._cancelled,
                    "shed": sim._shed,
                    "pending": len(sim._remaining),
                },
            )

    # -- workload-queue coherence -------------------------------------------
    def _check_queues(self) -> None:
        for idx, node in enumerate(self._sim.nodes):
            queues = getattr(node.scheduler, "queues", None)
            if queues is None:
                continue
            problems = queues.check_consistency()
            if problems:
                self._raise(
                    "queue_coherence",
                    f"workload queues on node {idx} are incoherent",
                    {"node": idx, "problems": problems},
                )

    # -- gating-graph validity ----------------------------------------------
    def _check_gating(self) -> None:
        for idx, node in enumerate(self._sim.nodes):
            gating = getattr(node.scheduler, "_gating", None)
            if gating is None:
                continue
            graph = gating.graph
            problems = graph.validate()
            if problems:
                self._raise(
                    "gating_consistency",
                    f"precedence graph on node {idx} is inconsistent",
                    {"node": idx, "problems": problems},
                )
            if not graph.is_acyclic():
                self._raise(
                    "gating_acyclicity",
                    f"contracted gating-group graph on node {idx} has a cycle "
                    "(gated schedule can deadlock)",
                    {"node": idx, "groups": graph.n_gating_edges()},
                )
