"""Whole-program project model for the determinism analyzer.

``jawslint``'s original rules (D001–D007) are per file, per AST node.
The interprocedural rule families (D100 RNG provenance, D200 checkpoint
state-capture completeness, D300 transitive worker purity — see
:mod:`repro.analysis.rules_interproc`) need a *project* view instead:

* a **module table** — every ``repro.*`` module with its import-alias
  map, top-level functions, and classes;
* a **class attribute inventory** — every ``self.x = …`` assignment
  across all methods of a class, with the assigning method and the RHS
  expression kept for later classification (RNG constructor?
  statically-unpicklable value? instance of a project class?);
* a **function index** — every function and method under a stable
  dotted qualname, so the call graph (:mod:`repro.analysis.callgraph`)
  can name nodes.

The model is *syntactic and conservative*: it never imports or executes
the analyzed code, only parses it, so it is safe to run over arbitrary
trees (fixtures, CI checkouts) and fast enough to gate every push.

Module naming: files under a directory literally named ``repro`` get
the dotted name of their path below that directory (``src/repro/engine/
faults.py`` → ``repro.engine.faults``).  Files outside any ``repro``
package (scripts, examples) are not part of the whole-program domain —
the per-file rules still cover them, the interprocedural passes do not.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "AttrAssign",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectModel",
    "module_name_for_path",
    "scope_family",
    "subsystem_of",
]


def module_name_for_path(path: Path) -> Optional[str]:
    """Dotted module name for ``path`` if it lives under a ``repro``
    package directory, else ``None`` (outside the whole-program domain).
    """
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    anchor = len(parts) - 1 - parts[::-1].index("repro")  # last 'repro' dir
    dotted = parts[anchor:]
    if dotted[-1].endswith(".py"):
        dotted[-1] = dotted[-1][: -len(".py")]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def subsystem_of(module: str) -> str:
    """Owning subsystem of a module: the package level below ``repro``
    (``repro.engine.faults`` → ``engine``), or the top package for
    flat modules (``repro.cli`` → ``repro``)."""
    parts = module.split(".")
    if parts[0] == "repro" and len(parts) > 2:
        return parts[1]
    if parts[0] == "repro" and len(parts) == 2:
        return parts[1]
    return parts[0]


def scope_family(module: str) -> str:
    """Determinism scope family of a module: ``fuzz`` for the scenario
    fuzzer, ``fault`` for fault-injection modules, ``engine`` for
    everything else.  A seeded RNG stream must never be shared across
    families (rule D101) — cross-stream draws are a determinism race.
    """
    if subsystem_of(module) == "fuzz":
        return "fuzz"
    tail = module.rsplit(".", 1)[-1]
    if "fault" in tail:
        return "fault"
    return "engine"


class ImportMap:
    """Resolve local names back to the dotted path they alias.

    Mirrors the per-file linter's import tracking but is reusable by
    the project passes; ``resolve`` rewrites the first segment of a
    dotted name through the alias map.
    """

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}

    def visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    self.aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    self.aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                return  # relative imports stay unresolved (conservative)
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def resolve(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        origin = self.aliases.get(head, head)
        return f"{origin}.{rest}" if rest else origin


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass
class AttrAssign:
    """One ``self.<name> = <value>`` assignment inside a method."""

    name: str
    method: str
    lineno: int
    col: int
    value: Optional[ast.expr]  # None for bare annotations / aug-assigns


@dataclass
class FunctionInfo:
    """One function or method, addressable by dotted qualname."""

    module: str
    qualname: str  # repro.engine.runner.run_trace / ….Simulator.run
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: Optional[str] = None  # short name of the owning class

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class: methods, bases, and the full self-attribute inventory."""

    module: str
    qualname: str
    name: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)  # import-resolved dotted
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    attr_assigns: List[AttrAssign] = field(default_factory=list)

    @property
    def has_getstate(self) -> bool:
        return "__getstate__" in self.methods

    @property
    def has_setstate(self) -> bool:
        return "__setstate__" in self.methods

    def getstate_is_dict_copy(self) -> bool:
        """True when ``__getstate__`` starts from ``self.__dict__`` /
        ``vars(self)`` — such a snapshot is complete by construction,
        so the D201 completeness cross-check does not apply."""
        fn = self.methods.get("__getstate__")
        if fn is None:
            return False
        for sub in ast.walk(fn.node):
            if isinstance(sub, ast.Attribute) and sub.attr == "__dict__":
                return True
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "vars"
            ):
                return True
        return False

    def attrs_assigned_outside(self, *methods: str) -> Dict[str, AttrAssign]:
        """First assignment site per attribute, skipping ``methods``."""
        out: Dict[str, AttrAssign] = {}
        skip = set(methods)
        for assign in self.attr_assigns:
            if assign.method in skip:
                continue
            out.setdefault(assign.name, assign)
        return out

    def attrs_assigned_in(self, method: str) -> List[str]:
        return [a.name for a in self.attr_assigns if a.method == method]


@dataclass
class ModuleInfo:
    """One parsed module of the project."""

    name: str
    path: str
    tree: ast.Module
    imports: ImportMap
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)

    @property
    def subsystem(self) -> str:
        return subsystem_of(self.name)

    @property
    def scope(self) -> str:
        return scope_family(self.name)


def _collect_attr_assigns(cls: ClassInfo) -> None:
    """Fill ``cls.attr_assigns`` from every ``self.x = …`` /
    ``self.x: T = …`` / ``self.x += …`` in every method body."""
    for method_name, fn in cls.methods.items():
        for sub in ast.walk(fn.node):
            targets: List[Tuple[ast.expr, Optional[ast.expr]]] = []
            if isinstance(sub, ast.Assign):
                targets = [(t, sub.value) for t in sub.targets]
            elif isinstance(sub, ast.AnnAssign):
                targets = [(sub.target, sub.value)]
            elif isinstance(sub, ast.AugAssign):
                targets = [(sub.target, None)]
            for target, value in targets:
                if isinstance(target, ast.Tuple):
                    for element in target.elts:
                        targets.append((element, None))
                    continue
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    cls.attr_assigns.append(
                        AttrAssign(
                            name=target.attr,
                            method=method_name,
                            lineno=target.lineno,
                            col=target.col_offset,
                            value=value,
                        )
                    )


def _build_module(name: str, source: str, path: str) -> ModuleInfo:
    tree = ast.parse(source, filename=path)
    imports = ImportMap()
    for node in ast.walk(tree):
        imports.visit(node)
    mod = ModuleInfo(name=name, path=path, tree=tree, imports=imports)
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{name}.{node.name}"
            mod.functions[node.name] = FunctionInfo(
                module=name, qualname=qualname, name=node.name, node=node
            )
        elif isinstance(node, ast.ClassDef):
            cls = ClassInfo(
                module=name,
                qualname=f"{name}.{node.name}",
                name=node.name,
                node=node,
                bases=[
                    imports.resolve(base_name)
                    for base in node.bases
                    if (base_name := dotted_name(base)) is not None
                ],
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[item.name] = FunctionInfo(
                        module=name,
                        qualname=f"{cls.qualname}.{item.name}",
                        name=item.name,
                        node=item,
                        class_name=cls.name,
                    )
            _collect_attr_assigns(cls)
            mod.classes[node.name] = cls
    return mod


class ProjectModel:
    """The whole-program view the interprocedural passes run over."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}  # by qualname
        self._classes_by_short: Dict[str, List[ClassInfo]] = {}
        self._methods_by_name: Dict[str, List[FunctionInfo]] = {}

    # -- construction -------------------------------------------------------
    def add_module(self, name: str, source: str, path: str) -> None:
        """Parse and index one module (syntax errors are reported by the
        per-file pass; here they simply drop the module from the model)."""
        try:
            mod = _build_module(name, source, path)
        except SyntaxError:
            return
        self.modules[name] = mod
        for fn in mod.functions.values():
            self.functions[fn.qualname] = fn
        for cls in mod.classes.values():
            self.classes[cls.qualname] = cls
            self._classes_by_short.setdefault(cls.name, []).append(cls)
            for method in cls.methods.values():
                self.functions[method.qualname] = method
                self._methods_by_name.setdefault(method.name, []).append(method)

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "ProjectModel":
        """Build a model from ``{dotted module name: source}`` (tests)."""
        model = cls()
        for name in sorted(sources):
            pseudo_path = name.replace(".", "/") + ".py"
            model.add_module(name, sources[name], pseudo_path)
        return model

    @classmethod
    def from_paths(cls, paths: Iterable[Path]) -> "ProjectModel":
        """Build a model from every ``repro``-package file under
        ``paths`` (files outside a ``repro`` directory are skipped)."""
        model = cls()
        seen: set[str] = set()
        files: List[Path] = []
        for path in paths:
            if path.is_dir():
                files.extend(
                    p
                    for p in sorted(path.rglob("*.py"))
                    if "__pycache__" not in p.parts
                )
            elif path.suffix == ".py":
                files.append(path)
        for file_path in files:
            name = module_name_for_path(file_path)
            if name is None or name in seen:
                continue
            try:
                source = file_path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                continue
            seen.add(name)
            model.add_module(name, source, str(file_path))
        return model

    # -- lookups ------------------------------------------------------------
    def classes_named(self, short_name: str) -> List[ClassInfo]:
        return self._classes_by_short.get(short_name, [])

    def methods_named(self, method_name: str) -> List[FunctionInfo]:
        return self._methods_by_name.get(method_name, [])

    def resolve_class(self, module: str, name: str) -> Optional[ClassInfo]:
        """Resolve ``name`` as used inside ``module`` to a project class:
        local class, import-resolved dotted path, or unique short name."""
        mod = self.modules.get(module)
        if mod is not None:
            if name in mod.classes:
                return mod.classes[name]
            resolved = mod.imports.resolve(name)
            if resolved in self.classes:
                return self.classes[resolved]
            # `from repro.x import Cls` resolves to repro.x.Cls directly;
            # `import repro.x` + repro.x.Cls arrives here already dotted.
            if resolved != name and resolved in self.classes:
                return self.classes[resolved]
        if name in self.classes:
            return self.classes[name]
        short = name.rsplit(".", 1)[-1]
        candidates = self.classes_named(short)
        if len(candidates) == 1:
            return candidates[0]
        return None

    def subclasses_of(self, cls: ClassInfo) -> List[ClassInfo]:
        """Direct project subclasses of ``cls`` (bases resolved through
        each defining module's imports)."""
        out: List[ClassInfo] = []
        for candidate in self.classes.values():
            for base in candidate.bases:
                resolved = self.resolve_class(candidate.module, base)
                if resolved is cls:
                    out.append(candidate)
                    break
        return out

    def iter_functions(self) -> Iterable[FunctionInfo]:
        return self.functions.values()
