"""Command-line interface.

Installed as ``repro`` (console script) or run via ``python -m
repro.cli``::

    repro trace generate --out trace.npz --jobs 120 --speedup 8
    repro trace info trace.npz
    repro run --trace trace.npz --scheduler jaws2 --cache urc
    repro run --trace trace.npz --nodes 4 --disk-fault-rate 0.05 \
        --replication 2 --crash 1:100:600
    repro run --trace trace.npz --checkpoint-dir ckpt --crash-at-event 500
    repro run --trace trace.npz --overload --max-queue-depth 200 --client-rate 2
    repro resume --dir ckpt
    repro compare --trace trace.npz --jobs 4
    repro overload --trace trace.npz --flash-crowd 10
    repro experiment fig10 --scale small --jobs 4
    repro bench --quick --out BENCH.json
    repro lint src tests
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Optional, Sequence

from repro.cluster.cluster import run_cluster
from repro.config import (
    SHED_POLICIES,
    CheckpointConfig,
    EngineConfig,
    FaultConfig,
    OverloadConfig,
    ShardConfig,
)
from repro.engine.results import RunResult
from repro.engine.runner import ENGINE_KINDS, SCHEDULER_NAMES, run_trace
from repro.errors import (
    ConfigurationError,
    CoordinatorCrash,
    JournalError,
    RecoveryError,
)
from repro.experiments import (
    ablations,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    jobid,
    shardscale,
    table1,
)
from repro.experiments.common import (
    ExperimentScale,
    standard_engine,
    standard_params,
    standard_spec,
)
from repro.experiments.report import render_table
from repro.parallel import RunSpec, SupervisorConfig, run_many, run_many_outcomes
from repro.workload.generator import generate_trace
from repro.workload.stats import workload_summary
from repro.workload.trace import Trace

EXPERIMENTS = {
    "fig08": (fig08.run, fig08.render),
    "fig09": (fig09.run, fig09.render),
    "fig10": (fig10.run, fig10.render),
    "fig11": (fig11.run, fig11.render),
    "fig12": (fig12.run, fig12.render),
    "table1": (table1.run, table1.render),
    "jobid": (jobid.run, jobid.render),
    "urc-ablation": (ablations.urc_vs_saturation, ablations.render_urc),
    "shardscale": (shardscale.run, shardscale.render),
}


def _add_engine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", choices=list(ENGINE_KINDS), default="exact",
        help="execution engine: 'exact' is the event-faithful oracle, "
        "'fast' the vectorized columnar engine (bit-identical results; "
        "unsupported combinations fail with a configuration error)",
    )


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    grp = parser.add_argument_group("fault injection (degraded-mode runs)")
    grp.add_argument(
        "--disk-fault-rate", type=float, default=0.0,
        help="probability a disk read fails transiently (retried with backoff)",
    )
    grp.add_argument(
        "--loss-rate", type=float, default=0.0,
        help="probability an atom copy is permanently lost on first access",
    )
    grp.add_argument(
        "--deadline", type=float, default=None,
        help="per-query deadline in engine seconds (overdue queries cancel)",
    )
    grp.add_argument("--fault-seed", type=int, default=0, help="fault injector RNG seed")
    grp.add_argument(
        "--replication", type=int, default=1,
        help="owners per atom (failover targets beyond the primary)",
    )
    grp.add_argument(
        "--crash", action="append", default=[], metavar="NODE:DOWN:UP",
        help="crash node NODE at time DOWN, recover at UP (repeatable)",
    )
    grp.add_argument(
        "--crash-at-event", type=int, default=None, metavar="N",
        help="kill the coordinator before dispatching event N "
        "(recover with 'repro resume' when checkpointing is on)",
    )


def _add_overload_args(parser: argparse.ArgumentParser) -> None:
    grp = parser.add_argument_group("overload protection")
    grp.add_argument(
        "--max-queue-depth", type=int, default=400, metavar="N",
        help="bounded per-node queue: max pending sub-query slots per node",
    )
    grp.add_argument(
        "--client-rate", type=float, default=4.0, metavar="R",
        help="per-client token-bucket refill, job admissions per engine second",
    )
    grp.add_argument(
        "--client-burst", type=float, default=8.0, metavar="B",
        help="per-client token-bucket burst capacity",
    )
    grp.add_argument(
        "--shed-policy", choices=list(SHED_POLICIES), default="deadline",
        help="victim selection when pending work must be dropped",
    )


def _overload_config(args: argparse.Namespace) -> OverloadConfig:
    try:
        return OverloadConfig(
            enabled=True,
            max_queue_depth=args.max_queue_depth,
            client_rate=args.client_rate,
            client_burst=args.client_burst,
            shed_policy=args.shed_policy,
        )
    except ValueError as exc:
        raise SystemExit(f"invalid overload configuration: {exc}") from None


def _fault_config(args: argparse.Namespace) -> Optional[FaultConfig]:
    crashes = []
    for spec in args.crash:
        parts = spec.split(":")
        try:
            if len(parts) != 3:
                raise ValueError
            crashes.append((int(parts[0]), float(parts[1]), float(parts[2])))
        except ValueError:
            raise SystemExit(f"--crash expects NODE:DOWN:UP, got {spec!r}") from None
    try:
        faults = FaultConfig(
            seed=args.fault_seed,
            transient_fault_rate=args.disk_fault_rate,
            permanent_loss_rate=args.loss_rate,
            query_deadline=args.deadline,
            replication=args.replication,
            node_crashes=tuple(crashes),
            coordinator_crash_at=args.crash_at_event,
        )
    except ValueError as exc:
        raise SystemExit(f"invalid fault configuration: {exc}") from None
    if args.replication > max(args.nodes, 1):
        raise SystemExit(
            f"--replication {args.replication} needs at least that many nodes "
            f"(got --nodes {args.nodes})"
        )
    return faults if faults.enabled or args.replication > 1 else None


def _shard_config(args: argparse.Namespace) -> Optional[ShardConfig]:
    """Build the sharded-execution plan from ``--shards`` and friends;
    ``None`` when the run is a plain single-coordinator one."""
    n_shards = getattr(args, "shards", 1)
    crash_specs = getattr(args, "shard_crash_at", None) or []
    halt = getattr(args, "halt_after_barrier", None)
    if n_shards <= 1 and not crash_specs and halt is None:
        return None
    crashes = []
    for spec in crash_specs:
        head, sep, tail = spec.partition(":")
        try:
            if not sep:
                raise ValueError
            crashes.append((int(head), float(tail)))
        except ValueError:
            raise SystemExit(
                f"--shard-crash-at expects SHARD:TIME, got {spec!r}"
            ) from None
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    barrier_every = None
    if checkpoint_dir is not None:
        barrier_every = getattr(args, "checkpoint_every_events", None) or 500
    try:
        return ShardConfig(
            n_shards=n_shards,
            crashes=tuple(crashes),
            checkpoint_dir=checkpoint_dir,
            barrier_every_events=barrier_every,
            halt_after_barrier=halt,
        )
    except ValueError as exc:
        raise SystemExit(f"invalid shard configuration: {exc}") from None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="JAWS (SC 2010) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace_p = sub.add_parser("trace", help="generate or inspect workload traces")
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)

    gen = trace_sub.add_parser("generate", help="generate a synthetic trace")
    gen.add_argument("--out", required=True, help="output .npz path")
    gen.add_argument("--jobs", type=int, default=None, help="override job count")
    gen.add_argument("--span", type=float, default=None, help="override submit span (s)")
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--speedup", type=float, default=1.0, help="saturation rescale")
    gen.add_argument(
        "--scale", choices=["small", "full"], default="small", help="base parameter set"
    )

    info = trace_sub.add_parser("info", help="summarize a trace file")
    info.add_argument("path")

    run_p = sub.add_parser("run", help="replay a trace under one scheduler")
    run_p.add_argument("--trace", required=True)
    run_p.add_argument(
        "--scheduler", action="append", choices=SCHEDULER_NAMES, default=None,
        help="scheduler to run (repeatable; multiple fan out across --jobs workers)",
    )
    run_p.add_argument("--cache", choices=["lru", "lruk", "slru", "urc"], default=None)
    run_p.add_argument("--speedup", type=float, default=1.0)
    run_p.add_argument("--nodes", type=int, default=1, help="cluster size")
    run_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for parallel evaluation (bit-identical to serial)",
    )
    run_p.add_argument(
        "--salvage", action="store_true",
        help="keep going past failing schedulers; report typed failure "
        "records instead of aborting the whole fan-out",
    )
    run_p.add_argument(
        "--task-timeout", type=float, default=None, metavar="T",
        help="watchdog deadline per run, real seconds: hung workers are "
        "killed and the run retried (default: no deadline)",
    )
    run_p.add_argument(
        "--overload", action="store_true",
        help="enable overload protection (admission control, shedding, brownout)",
    )
    _add_engine_arg(run_p)
    _add_overload_args(run_p)
    _add_fault_args(run_p)
    ckpt = run_p.add_argument_group("crash-consistent checkpointing")
    ckpt.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist snapshots + write-ahead log under DIR (enables recovery)",
    )
    ckpt.add_argument(
        "--checkpoint-every-events", type=int, default=None, metavar="N",
        help="snapshot every N dispatched events (default 500 if only a dir is given)",
    )
    ckpt.add_argument(
        "--checkpoint-every-seconds", type=float, default=None, metavar="T",
        help="snapshot every T virtual seconds",
    )
    shard = run_p.add_argument_group("sharded multi-coordinator execution")
    shard.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="split the coordinator into N shards with lease-based "
        "ownership (requires --nodes >= N; 1 = single coordinator)",
    )
    shard.add_argument(
        "--shard-crash-at", action="append", default=None, metavar="SHARD:TIME",
        help="crash shard SHARD at virtual time TIME; surviving shards "
        "adopt its ranges after the failover delay (repeatable, at "
        "most one crash per shard, at least one survivor)",
    )
    shard.add_argument(
        "--halt-after-barrier", type=int, default=None, metavar="K",
        help="stop the sharded run right after its K-th cluster "
        "checkpoint barrier (with --checkpoint-dir); resume with "
        "`repro resume --dir DIR`",
    )

    res_p = sub.add_parser("resume", help="resume a crashed run from its checkpoints")
    res_p.add_argument(
        "--dir", required=True, metavar="DIR",
        help="checkpoint directory of the crashed run (--checkpoint-dir)",
    )

    cmp_p = sub.add_parser("compare", help="replay a trace under several schedulers")
    cmp_p.add_argument("--trace", required=True)
    cmp_p.add_argument(
        "--schedulers", nargs="+", choices=SCHEDULER_NAMES, default=list(SCHEDULER_NAMES)
    )
    cmp_p.add_argument("--speedup", type=float, default=1.0)
    cmp_p.add_argument("--nodes", type=int, default=1, help="cluster size")
    cmp_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for parallel evaluation (single-node, fault-free runs)",
    )
    cmp_p.add_argument(
        "--salvage", action="store_true",
        help="keep going past failing schedulers; failed rows are reported "
        "as typed failure records instead of aborting the comparison",
    )
    cmp_p.add_argument(
        "--task-timeout", type=float, default=None, metavar="T",
        help="watchdog deadline per run, real seconds (default: no deadline)",
    )
    _add_engine_arg(cmp_p)
    _add_fault_args(cmp_p)

    ov_p = sub.add_parser(
        "overload",
        help="flash-crowd demonstration: baseline vs unprotected vs protected",
    )
    ov_p.add_argument("--trace", required=True)
    ov_p.add_argument("--scheduler", choices=SCHEDULER_NAMES, default="jaws2")
    ov_p.add_argument("--speedup", type=float, default=1.0)
    ov_p.add_argument(
        "--flash-crowd", type=float, default=10.0, metavar="F",
        help="burst load as a multiple of the base arrival rate (default 10x)",
    )
    ov_p.add_argument(
        "--burst-start", type=float, default=None, metavar="T",
        help="burst window start, engine seconds (default: 25%% into the trace)",
    )
    ov_p.add_argument(
        "--burst-duration", type=float, default=None, metavar="D",
        help="burst window length, engine seconds (default: 10%% of the trace span)",
    )
    ov_p.add_argument("--burst-seed", type=int, default=7, help="burst RNG seed")
    _add_overload_args(ov_p)

    exp_p = sub.add_parser("experiment", help="regenerate a paper figure/table")
    exp_p.add_argument("name", choices=sorted(EXPERIMENTS))
    exp_p.add_argument("--scale", choices=["small", "full"], default="small")
    exp_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for parallel evaluation (bit-identical to serial)",
    )
    exp_p.add_argument(
        "--csv", default=None, help="also export the series to a CSV file (fig10/fig11/fig12/table1)"
    )
    _add_engine_arg(exp_p)

    bench_p = sub.add_parser(
        "bench", help="time the standard runs per scheduler (wall-clock, events/s, RSS)"
    )
    bench_p.add_argument(
        "--quick", action="store_true",
        help="reduced workload for CI smoke runs (seconds, not minutes)",
    )
    bench_p.add_argument(
        "--out", default=None, metavar="PATH",
        help="merge the report into PATH under its mode key (e.g. BENCH_PR5.json)",
    )
    bench_p.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="fail (exit 1) when wall-clock regresses >2x over PATH's same-mode entry",
    )

    lint_p = sub.add_parser(
        "lint",
        help="run the jawslint determinism analysis (per-file D001-D007 + "
        "whole-program D100/D200/D300) over source trees",
    )
    lint_p.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    lint_p.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    lint_p.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format (default: text)",
    )
    lint_p.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the --format report to PATH (stdout keeps the text render)",
    )
    lint_p.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="suppression baseline ledger (default: ./jawslint-baseline.json when present)",
    )
    lint_p.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline ledger, report every finding",
    )
    lint_p.add_argument(
        "--no-interproc", action="store_true",
        help="per-file rules only (skip the whole-program passes)",
    )

    fuzz_p = sub.add_parser(
        "fuzz",
        help="adversarial scenario fuzzing: seeded campaigns, chaos oracles, "
        "shrunk JSON reproducers",
    )
    fuzz_sub = fuzz_p.add_subparsers(dest="fuzz_command")
    fuzz_p.add_argument("--seed", type=int, default=0, help="campaign master seed")
    fuzz_p.add_argument(
        "--runs", type=int, default=50, metavar="N",
        help="number of scenarios to explore (default 50)",
    )
    fuzz_p.add_argument(
        "--jobs", type=int, default=1, metavar="J",
        help="worker processes for scenario fan-out (bit-identical to serial)",
    )
    fuzz_p.add_argument(
        "--quick", action="store_true",
        help="small scenarios for CI smoke runs (seconds per scenario)",
    )
    fuzz_p.add_argument(
        "--out-dir", default="fuzz-reproducers", metavar="DIR",
        help="directory for shrunk reproducer JSONs (default fuzz-reproducers/)",
    )
    fuzz_p.add_argument(
        "--shrink-budget", type=int, default=200, metavar="N",
        help="max candidate evaluations per shrink (default 200)",
    )
    fuzz_p.add_argument(
        "--summary-out", default=None, metavar="PATH",
        help="also write the canonical campaign summary JSON to PATH",
    )
    fuzz_p.add_argument(
        "--task-timeout", type=float, default=None, metavar="T",
        help="watchdog deadline per scenario, real seconds: hung workers are "
        "killed, the scenario retried, then quarantined as a typed "
        "harness failure (default: no deadline)",
    )
    _add_engine_arg(fuzz_p)
    fuzz_p.add_argument(
        "--resume-journal", default=None, metavar="PATH",
        help="crash-safe campaign journal: outcomes are recorded as they "
        "settle; re-running with the same seed/runs/journal resumes "
        "exactly, with a byte-identical summary",
    )
    repro_p = fuzz_sub.add_parser(
        "repro", help="replay a shrunk reproducer file bit-identically"
    )
    repro_p.add_argument("file", help="reproducer JSON written by a campaign")

    return parser


def _cmd_trace_generate(args: argparse.Namespace) -> int:
    scale = ExperimentScale(args.scale)
    params = standard_params(scale, seed=args.seed)
    overrides = {}
    if args.jobs is not None:
        overrides["n_jobs"] = args.jobs
    if args.span is not None:
        overrides["span"] = args.span
    if overrides:
        params = dataclasses.replace(params, **overrides)
    trace = generate_trace(standard_spec(), params)
    if args.speedup != 1.0:
        trace = trace.rescale(args.speedup)
    trace.save(args.out)
    summary = workload_summary(trace)
    print(f"wrote {args.out}")
    for key, value in summary.items():
        print(f"  {key}: {value:.3f}")
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    trace = Trace.load(args.path)
    print(f"{args.path}:")
    spec = trace.spec
    print(
        f"  dataset: {spec.n_timesteps} steps x {spec.atoms_per_timestep} atoms "
        f"({spec.grid_side}^3 voxels, {spec.atom_side}^3 per atom)"
    )
    for key, value in workload_summary(trace).items():
        print(f"  {key}: {value:.3f}")
    print(f"  span: {trace.span:.1f}s")
    return 0


def _run_engine(args: argparse.Namespace) -> EngineConfig:
    engine = standard_engine()
    if getattr(args, "cache", None):
        engine = dataclasses.replace(
            engine, cache=dataclasses.replace(engine.cache, policy=args.cache)
        )
    if getattr(args, "checkpoint_dir", None):
        every_events = args.checkpoint_every_events
        if every_events is None and args.checkpoint_every_seconds is None:
            every_events = 500  # a directory alone implies a sane default policy
        try:
            checkpoint = CheckpointConfig(
                directory=args.checkpoint_dir,
                every_events=every_events,
                every_seconds=args.checkpoint_every_seconds,
            )
        except ValueError as exc:
            raise SystemExit(f"invalid checkpoint configuration: {exc}") from None
        engine = dataclasses.replace(engine, checkpoint=checkpoint)
    return engine


def _run_one(
    trace: Trace,
    name: str,
    engine: EngineConfig,
    faults: Optional[FaultConfig],
    nodes: int,
    shards: Optional[ShardConfig] = None,
    jobs: int = 1,
    supervisor: Optional[SupervisorConfig] = None,
    engine_kind: str = "exact",
) -> RunResult:
    if engine_kind != "exact":
        from repro.fastengine import validate_fast_supported

        # Typed rejection of sharded/cluster combos; what remains is a
        # single-coordinator run (faulted or not), which the fast path
        # executes bit-identically to the cluster-of-one exact runner.
        validate_fast_supported(engine, n_nodes=max(nodes, 1), shards=shards)
        return run_trace(trace, name, engine, faults=faults, engine_kind=engine_kind)
    if shards is not None:
        from repro.shard import run_sharded

        sharded = run_sharded(
            trace,
            name,
            max(nodes, 1),
            shards=shards,
            engine=engine,
            faults=faults,
            jobs=jobs,
            supervisor=supervisor,
        )
        if shards.sharded:
            stats = sharded.shard_stats
            print(
                f"  shards: {stats['n_shards']} "
                f"(crashes {stats['shard_crashes']}, "
                f"epoch bumps {stats['epoch_bumps']}, "
                f"stale retries {stats['stale_retries']})"
            )
        return sharded.result
    if nodes > 1 or faults is not None:
        return run_cluster(trace, name, max(nodes, 1), engine=engine, faults=faults).result
    return run_trace(trace, name, engine)


def _print_result(result: RunResult, degraded: bool, protected: bool = False) -> None:
    for key, value in result.summary().items():
        print(f"  {key}: {value if isinstance(value, str) else round(value, 4)}")
    if degraded:
        print("  -- degraded-mode outcomes --")
        for key, value in result.fault_summary().items():
            print(f"  {key}: {round(value, 4)}")
    if protected:
        print("  -- overload protection --")
        for key, value in result.overload_summary().items():
            print(f"  {key}: {round(value, 4)}")
        for mode, seconds in result.overload.get("time_in_mode", {}).items():
            print(f"  time_{mode.lower()}: {round(seconds, 1)}s")
        for cls, pct in result.class_percentiles().items():
            print(
                f"  {cls}: n={int(pct['n'])} p50={pct['p50']:.3f}s p99={pct['p99']:.3f}s"
            )


def _supervisor_from_args(args: argparse.Namespace) -> Optional[SupervisorConfig]:
    """Build a supervisor config from ``--task-timeout`` (None when the
    defaults suffice — the pool then uses its own)."""
    timeout = getattr(args, "task_timeout", None)
    if timeout is None:
        return None
    return SupervisorConfig(task_timeout=timeout)


def _cmd_run(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    if args.speedup != 1.0:
        trace = trace.rescale(args.speedup)
    faults = _fault_config(args)
    engine = _run_engine(args)
    if args.overload:
        engine = dataclasses.replace(engine, overload=_overload_config(args))
    shards = _shard_config(args)
    if shards is not None and args.shards > args.nodes:
        raise SystemExit(
            f"--shards {args.shards} needs at least that many nodes "
            f"(got --nodes {args.nodes})"
        )
    if shards is not None and shards.sharded:
        # Sharded runs checkpoint through cluster barriers; the engine's
        # own checkpoint config must stay off (run_sharded enforces it).
        engine = dataclasses.replace(engine, checkpoint=CheckpointConfig())
    schedulers = args.scheduler or ["jaws2"]
    if len(schedulers) > 1:
        if args.nodes > 1 or faults is not None or shards is not None:
            raise SystemExit(
                "multiple --scheduler values fan out via the single-node "
                "runner; drop --nodes/--shards/fault flags or run them "
                "one at a time"
            )
        specs = [
            RunSpec(trace, name, engine, label=name, engine_kind=args.engine)
            for name in schedulers
        ]
        supervisor = _supervisor_from_args(args)
        if args.salvage:
            failed = 0
            outcomes = run_many_outcomes(specs, jobs=args.jobs, supervisor=supervisor)
            for name, outcome in zip(schedulers, outcomes):
                print(f"[{name}]")
                if outcome.ok:
                    _print_result(outcome.value, degraded=False, protected=args.overload)
                else:
                    assert outcome.failure is not None
                    failed += 1
                    print(f"  FAILED: {outcome.failure.describe()}", file=sys.stderr)
            return 1 if failed else 0
        for name, result in zip(
            schedulers, run_many(specs, jobs=args.jobs, supervisor=supervisor)
        ):
            print(f"[{name}]")
            _print_result(result, degraded=False, protected=args.overload)
        return 0
    try:
        result = _run_one(
            trace,
            schedulers[0],
            engine,
            faults,
            args.nodes,
            shards=shards,
            jobs=args.jobs,
            supervisor=_supervisor_from_args(args),
            engine_kind=args.engine,
        )
    except CoordinatorCrash as exc:
        print(f"coordinator crashed: {exc}", file=sys.stderr)
        if getattr(args, "checkpoint_dir", None):
            print(
                f"recover with: repro resume --dir {args.checkpoint_dir}",
                file=sys.stderr,
            )
        else:
            print(
                "no --checkpoint-dir was set; this run cannot be recovered",
                file=sys.stderr,
            )
        return 3
    _print_result(result, degraded=faults is not None, protected=args.overload)
    return 0


def _cmd_overload(args: argparse.Namespace) -> int:
    from repro.workload.generator import FlashCrowdParams, inject_flash_crowd

    base = Trace.load(args.trace)
    if args.speedup != 1.0:
        base = base.rescale(args.speedup)
    span = max(base.span, 1.0)
    start = args.burst_start if args.burst_start is not None else 0.25 * span
    duration = args.burst_duration if args.burst_duration is not None else 0.10 * span
    try:
        burst = inject_flash_crowd(
            base,
            FlashCrowdParams(
                factor=args.flash_crowd,
                start=start,
                duration=duration,
                seed=args.burst_seed,
            ),
        )
    except ValueError as exc:
        raise SystemExit(f"invalid flash-crowd parameters: {exc}") from None
    engine = standard_engine()
    protected_engine = dataclasses.replace(engine, overload=_overload_config(args))
    print(
        f"flash crowd: {args.flash_crowd:g}x for {duration:.0f}s starting at "
        f"{start:.0f}s ({burst.n_jobs - base.n_jobs} burst jobs on "
        f"{base.n_jobs} base jobs)"
    )
    rows = []
    for label, trace, eng in (
        ("baseline (no burst)", base, engine),
        ("burst, unprotected", burst, engine),
        ("burst, protected", burst, protected_engine),
    ):
        result = run_trace(trace, args.scheduler, eng)
        pct = result.class_percentiles().get("interactive", {"p50": 0.0, "p99": 0.0})
        rows.append(
            (
                label,
                result.n_queries,
                result.rejected_jobs,
                result.shed_queries,
                pct["p50"],
                pct["p99"],
            )
        )
        if eng.overload.enabled:
            modes = result.overload.get("time_in_mode", {})
            spent = ", ".join(
                f"{m.lower()} {s:.0f}s" for m, s in modes.items() if s > 0
            )
            print(f"  [{label}] modes: {spent or 'normal only'}")
    print(
        render_table(
            ["run", "completed", "rejected", "shed", "int_p50_s", "int_p99_s"], rows
        )
    )
    base_p99 = rows[0][5]
    if base_p99 > 0:
        print(
            f"interactive p99 vs baseline: unprotected {rows[1][5] / base_p99:.1f}x, "
            f"protected {rows[2][5] / base_p99:.1f}x"
        )
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.engine.simulator import Simulator
    from repro.shard.recovery import latest_manifest, resume_cluster

    if latest_manifest(args.dir) is not None:
        # Sharded run: the directory holds a cluster manifest plus one
        # snapshot/WAL set per shard — restore the consistent cut.
        try:
            control = resume_cluster(args.dir)
        except RecoveryError as exc:
            print(f"recovery failed: {exc}", file=sys.stderr)
            return 2
        print(
            f"resuming sharded run: {control.topology.n_shards} shards at "
            f"cluster barrier {control._barrier_count} "
            f"(epochs {list(control.ownership.epoch)})"
        )
        try:
            sharded = control.run()
        except RecoveryError as exc:
            print(f"recovery failed during WAL replay: {exc}", file=sys.stderr)
            return 2
        _print_result(
            sharded.result,
            degraded=any(d.injector is not None for d in control.domains),
        )
        return 0

    try:
        sim = Simulator.restore(args.dir)
    except RecoveryError as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 2
    print(
        f"resuming from event {sim.event_index} "
        f"(clock {sim.clock:.6g}s, {sim._completed} queries completed)"
    )
    try:
        result = sim.run()
    except RecoveryError as exc:
        print(f"recovery failed during WAL replay: {exc}", file=sys.stderr)
        return 2
    _print_result(result, degraded=sim.injector is not None)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    if args.speedup != 1.0:
        trace = trace.rescale(args.speedup)
    engine = standard_engine()
    faults = _fault_config(args)
    degraded = faults is not None
    if degraded or args.nodes > 1:
        # Cluster/fault runs go through the multi-node runner, which
        # the process pool does not fan out; run them inline.
        results = [
            _run_one(
                trace, name, engine, faults, args.nodes, engine_kind=args.engine
            )
            for name in args.schedulers
        ]
    elif args.salvage:
        specs = [
            RunSpec(trace, name, engine, label=name, engine_kind=args.engine)
            for name in args.schedulers
        ]
        outcomes = run_many_outcomes(
            specs, jobs=args.jobs, supervisor=_supervisor_from_args(args)
        )
        results = []
        salvage_failures = []
        for outcome in outcomes:
            if outcome.ok:
                results.append(outcome.value)
            else:
                assert outcome.failure is not None
                salvage_failures.append(outcome.failure)
        for failure in salvage_failures:
            print(f"FAILED: {failure.describe()}", file=sys.stderr)
        schedulers = [name for name, o in zip(args.schedulers, outcomes) if o.ok]
        rows = []
        for name, result in zip(schedulers, results):
            rows.append(
                (
                    name,
                    result.throughput_qps,
                    result.mean_response_time,
                    result.cache_hit_ratio,
                    result.disk["reads"],
                )
            )
        print(render_table(["scheduler", "qps", "mean_rt_s", "cache_hit", "reads"], rows))
        return 1 if salvage_failures else 0
    else:
        specs = [
            RunSpec(trace, name, engine, label=name, engine_kind=args.engine)
            for name in args.schedulers
        ]
        results = run_many(specs, jobs=args.jobs, supervisor=_supervisor_from_args(args))
    rows = []
    for name, result in zip(args.schedulers, results):
        row = (
            name,
            result.throughput_qps,
            result.mean_response_time,
            result.cache_hit_ratio,
            result.disk["reads"],
        )
        if degraded:
            row += (result.availability, result.retries, result.failovers, result.timeouts)
        rows.append(row)
    headers = ["scheduler", "qps", "mean_rt_s", "cache_hit", "reads"]
    if degraded:
        headers += ["avail", "retries", "failovers", "timeouts"]
    print(render_table(headers, rows))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import inspect

    run_fn, render_fn = EXPERIMENTS[args.name]
    parameters = inspect.signature(run_fn).parameters
    kwargs = {}
    if args.jobs != 1 and "jobs" in parameters:
        kwargs["jobs"] = args.jobs
    if args.engine != "exact":
        if "engine_kind" not in parameters:
            raise ConfigurationError(
                f"experiment {args.name!r} does not support --engine "
                f"{args.engine}; only exact-engine runs are defined for it"
            )
        kwargs["engine_kind"] = args.engine
    data = run_fn(ExperimentScale(args.scale), **kwargs)
    print(render_fn(data))
    if args.csv:
        from repro.experiments import export

        exporters = {
            "fig10": export.export_fig10,
            "fig11": export.export_fig11,
            "fig12": export.export_fig12,
            "table1": export.export_table1,
        }
        exporter = exporters.get(args.name)
        if exporter is None:
            print(f"(no CSV exporter for {args.name}; skipped)")
        else:
            print(f"wrote {exporter(data, args.csv)}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments import bench

    report = bench.run_bench(quick=args.quick)
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.out:
        bench.write_report(report, Path(args.out))
        print(f"wrote {args.out}", file=sys.stderr)
    if args.baseline:
        failure = bench.check_regression(report, Path(args.baseline))
        if failure:
            print(f"benchmark regression: {failure}", file=sys.stderr)
            return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import lint

    argv = list(args.paths)
    if args.list_rules:
        argv.insert(0, "--list-rules")
    if args.format != "text":
        argv = ["--format", args.format, *argv]
    if args.out is not None:
        argv = ["--out", args.out, *argv]
    if args.baseline is not None:
        argv = ["--baseline", args.baseline, *argv]
    if args.no_baseline:
        argv = ["--no-baseline", *argv]
    if args.no_interproc:
        argv = ["--no-interproc", *argv]
    return lint.main(argv)


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.fuzz import replay_file, run_campaign

    if getattr(args, "fuzz_command", None) == "repro":
        outcome = replay_file(Path(args.file))
        print(json.dumps(outcome.to_json(), indent=2, sort_keys=True))
        if outcome.failure is not None:
            failure = outcome.failure
            print(
                f"reproduced: {failure.kind}:{failure.name} "
                f"(stage {failure.stage})",
                file=sys.stderr,
            )
            return 2
        print("scenario passed: the recorded failure no longer reproduces", file=sys.stderr)
        return 0

    try:
        result = run_campaign(
            seed=args.seed,
            runs=args.runs,
            jobs=args.jobs,
            quick=args.quick,
            out_dir=Path(args.out_dir),
            shrink_budget=args.shrink_budget,
            journal_path=Path(args.resume_journal) if args.resume_journal else None,
            supervisor=_supervisor_from_args(args),
            engine_kind=args.engine,
        )
    except JournalError as exc:
        print(f"journal error: {exc}", file=sys.stderr)
        return 2
    summary = result.summary_json()
    print(summary)
    if result.resumed_scenarios:
        print(
            f"resumed {result.resumed_scenarios}/{args.runs} scenarios "
            f"from {args.resume_journal}",
            file=sys.stderr,
        )
    if args.summary_out:
        Path(args.summary_out).write_text(summary + "\n")
        print(f"wrote {args.summary_out}", file=sys.stderr)
    for path in result.reproducer_paths:
        print(f"reproducer: {path}", file=sys.stderr)
    if result.failures:
        print(
            f"{len(result.failures)}/{args.runs} scenarios failed "
            f"({len(result.reproducers)} distinct signatures shrunk)",
            file=sys.stderr,
        )
        return 1
    print(f"{args.runs}/{args.runs} scenarios clean", file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ConfigurationError as exc:
        # Typed engine/topology mismatches (e.g. --engine fast with
        # --shards) are user errors, not crashes.
        print(f"configuration error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "trace":
        if args.trace_command == "generate":
            return _cmd_trace_generate(args)
        return _cmd_trace_info(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "overload":
        return _cmd_overload(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    return _cmd_experiment(args)


if __name__ == "__main__":
    sys.exit(main())
