"""Command-line interface.

Installed as ``repro`` (console script) or run via ``python -m
repro.cli``::

    repro trace generate --out trace.npz --jobs 120 --speedup 8
    repro trace info trace.npz
    repro run --trace trace.npz --scheduler jaws2 --cache urc
    repro run --trace trace.npz --nodes 4 --disk-fault-rate 0.05 \
        --replication 2 --crash 1:100:600
    repro run --trace trace.npz --checkpoint-dir ckpt --crash-at-event 500
    repro resume --dir ckpt
    repro compare --trace trace.npz
    repro experiment fig10 --scale small
    repro lint src tests
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Optional, Sequence

from repro.cluster.cluster import run_cluster
from repro.config import CheckpointConfig, EngineConfig, FaultConfig
from repro.engine.results import RunResult
from repro.engine.runner import SCHEDULER_NAMES, run_trace
from repro.errors import CoordinatorCrash, RecoveryError
from repro.experiments import ablations, fig08, fig09, fig10, fig11, fig12, jobid, table1
from repro.experiments.common import (
    ExperimentScale,
    standard_engine,
    standard_params,
    standard_spec,
)
from repro.experiments.report import render_table
from repro.workload.generator import generate_trace
from repro.workload.stats import workload_summary
from repro.workload.trace import Trace

EXPERIMENTS = {
    "fig08": (fig08.run, fig08.render),
    "fig09": (fig09.run, fig09.render),
    "fig10": (fig10.run, fig10.render),
    "fig11": (fig11.run, fig11.render),
    "fig12": (fig12.run, fig12.render),
    "table1": (table1.run, table1.render),
    "jobid": (jobid.run, jobid.render),
    "urc-ablation": (ablations.urc_vs_saturation, ablations.render_urc),
}


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    grp = parser.add_argument_group("fault injection (degraded-mode runs)")
    grp.add_argument(
        "--disk-fault-rate", type=float, default=0.0,
        help="probability a disk read fails transiently (retried with backoff)",
    )
    grp.add_argument(
        "--loss-rate", type=float, default=0.0,
        help="probability an atom copy is permanently lost on first access",
    )
    grp.add_argument(
        "--deadline", type=float, default=None,
        help="per-query deadline in engine seconds (overdue queries cancel)",
    )
    grp.add_argument("--fault-seed", type=int, default=0, help="fault injector RNG seed")
    grp.add_argument(
        "--replication", type=int, default=1,
        help="owners per atom (failover targets beyond the primary)",
    )
    grp.add_argument(
        "--crash", action="append", default=[], metavar="NODE:DOWN:UP",
        help="crash node NODE at time DOWN, recover at UP (repeatable)",
    )
    grp.add_argument(
        "--crash-at-event", type=int, default=None, metavar="N",
        help="kill the coordinator before dispatching event N "
        "(recover with 'repro resume' when checkpointing is on)",
    )


def _fault_config(args: argparse.Namespace) -> Optional[FaultConfig]:
    crashes = []
    for spec in args.crash:
        parts = spec.split(":")
        try:
            if len(parts) != 3:
                raise ValueError
            crashes.append((int(parts[0]), float(parts[1]), float(parts[2])))
        except ValueError:
            raise SystemExit(f"--crash expects NODE:DOWN:UP, got {spec!r}") from None
    try:
        faults = FaultConfig(
            seed=args.fault_seed,
            transient_fault_rate=args.disk_fault_rate,
            permanent_loss_rate=args.loss_rate,
            query_deadline=args.deadline,
            replication=args.replication,
            node_crashes=tuple(crashes),
            coordinator_crash_at=args.crash_at_event,
        )
    except ValueError as exc:
        raise SystemExit(f"invalid fault configuration: {exc}") from None
    if args.replication > max(args.nodes, 1):
        raise SystemExit(
            f"--replication {args.replication} needs at least that many nodes "
            f"(got --nodes {args.nodes})"
        )
    return faults if faults.enabled or args.replication > 1 else None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="JAWS (SC 2010) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace_p = sub.add_parser("trace", help="generate or inspect workload traces")
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)

    gen = trace_sub.add_parser("generate", help="generate a synthetic trace")
    gen.add_argument("--out", required=True, help="output .npz path")
    gen.add_argument("--jobs", type=int, default=None, help="override job count")
    gen.add_argument("--span", type=float, default=None, help="override submit span (s)")
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--speedup", type=float, default=1.0, help="saturation rescale")
    gen.add_argument(
        "--scale", choices=["small", "full"], default="small", help="base parameter set"
    )

    info = trace_sub.add_parser("info", help="summarize a trace file")
    info.add_argument("path")

    run_p = sub.add_parser("run", help="replay a trace under one scheduler")
    run_p.add_argument("--trace", required=True)
    run_p.add_argument("--scheduler", choices=SCHEDULER_NAMES, default="jaws2")
    run_p.add_argument("--cache", choices=["lru", "lruk", "slru", "urc"], default=None)
    run_p.add_argument("--speedup", type=float, default=1.0)
    run_p.add_argument("--nodes", type=int, default=1, help="cluster size")
    _add_fault_args(run_p)
    ckpt = run_p.add_argument_group("crash-consistent checkpointing")
    ckpt.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist snapshots + write-ahead log under DIR (enables recovery)",
    )
    ckpt.add_argument(
        "--checkpoint-every-events", type=int, default=None, metavar="N",
        help="snapshot every N dispatched events (default 500 if only a dir is given)",
    )
    ckpt.add_argument(
        "--checkpoint-every-seconds", type=float, default=None, metavar="T",
        help="snapshot every T virtual seconds",
    )

    res_p = sub.add_parser("resume", help="resume a crashed run from its checkpoints")
    res_p.add_argument(
        "--dir", required=True, metavar="DIR",
        help="checkpoint directory of the crashed run (--checkpoint-dir)",
    )

    cmp_p = sub.add_parser("compare", help="replay a trace under several schedulers")
    cmp_p.add_argument("--trace", required=True)
    cmp_p.add_argument(
        "--schedulers", nargs="+", choices=SCHEDULER_NAMES, default=list(SCHEDULER_NAMES)
    )
    cmp_p.add_argument("--speedup", type=float, default=1.0)
    cmp_p.add_argument("--nodes", type=int, default=1, help="cluster size")
    _add_fault_args(cmp_p)

    exp_p = sub.add_parser("experiment", help="regenerate a paper figure/table")
    exp_p.add_argument("name", choices=sorted(EXPERIMENTS))
    exp_p.add_argument("--scale", choices=["small", "full"], default="small")
    exp_p.add_argument(
        "--csv", default=None, help="also export the series to a CSV file (fig10/fig11/fig12/table1)"
    )

    lint_p = sub.add_parser(
        "lint", help="run the jawslint determinism rules (D001-D005) over source trees"
    )
    lint_p.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    lint_p.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )

    return parser


def _cmd_trace_generate(args: argparse.Namespace) -> int:
    scale = ExperimentScale(args.scale)
    params = standard_params(scale, seed=args.seed)
    overrides = {}
    if args.jobs is not None:
        overrides["n_jobs"] = args.jobs
    if args.span is not None:
        overrides["span"] = args.span
    if overrides:
        params = dataclasses.replace(params, **overrides)
    trace = generate_trace(standard_spec(), params)
    if args.speedup != 1.0:
        trace = trace.rescale(args.speedup)
    trace.save(args.out)
    summary = workload_summary(trace)
    print(f"wrote {args.out}")
    for key, value in summary.items():
        print(f"  {key}: {value:.3f}")
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    trace = Trace.load(args.path)
    print(f"{args.path}:")
    spec = trace.spec
    print(
        f"  dataset: {spec.n_timesteps} steps x {spec.atoms_per_timestep} atoms "
        f"({spec.grid_side}^3 voxels, {spec.atom_side}^3 per atom)"
    )
    for key, value in workload_summary(trace).items():
        print(f"  {key}: {value:.3f}")
    print(f"  span: {trace.span:.1f}s")
    return 0


def _run_engine(args: argparse.Namespace) -> EngineConfig:
    engine = standard_engine()
    if getattr(args, "cache", None):
        engine = dataclasses.replace(
            engine, cache=dataclasses.replace(engine.cache, policy=args.cache)
        )
    if getattr(args, "checkpoint_dir", None):
        every_events = args.checkpoint_every_events
        if every_events is None and args.checkpoint_every_seconds is None:
            every_events = 500  # a directory alone implies a sane default policy
        try:
            checkpoint = CheckpointConfig(
                directory=args.checkpoint_dir,
                every_events=every_events,
                every_seconds=args.checkpoint_every_seconds,
            )
        except ValueError as exc:
            raise SystemExit(f"invalid checkpoint configuration: {exc}") from None
        engine = dataclasses.replace(engine, checkpoint=checkpoint)
    return engine


def _run_one(
    trace: Trace,
    name: str,
    engine: EngineConfig,
    faults: Optional[FaultConfig],
    nodes: int,
) -> RunResult:
    if nodes > 1 or faults is not None:
        return run_cluster(trace, name, max(nodes, 1), engine=engine, faults=faults).result
    return run_trace(trace, name, engine)


def _print_result(result: RunResult, degraded: bool) -> None:
    for key, value in result.summary().items():
        print(f"  {key}: {value if isinstance(value, str) else round(value, 4)}")
    if degraded:
        print("  -- degraded-mode outcomes --")
        for key, value in result.fault_summary().items():
            print(f"  {key}: {round(value, 4)}")


def _cmd_run(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    if args.speedup != 1.0:
        trace = trace.rescale(args.speedup)
    faults = _fault_config(args)
    try:
        result = _run_one(trace, args.scheduler, _run_engine(args), faults, args.nodes)
    except CoordinatorCrash as exc:
        print(f"coordinator crashed: {exc}", file=sys.stderr)
        if getattr(args, "checkpoint_dir", None):
            print(
                f"recover with: repro resume --dir {args.checkpoint_dir}",
                file=sys.stderr,
            )
        else:
            print(
                "no --checkpoint-dir was set; this run cannot be recovered",
                file=sys.stderr,
            )
        return 3
    _print_result(result, degraded=faults is not None)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.engine.simulator import Simulator

    try:
        sim = Simulator.restore(args.dir)
    except RecoveryError as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 2
    print(
        f"resuming from event {sim.event_index} "
        f"(clock {sim.clock:.6g}s, {sim._completed} queries completed)"
    )
    try:
        result = sim.run()
    except RecoveryError as exc:
        print(f"recovery failed during WAL replay: {exc}", file=sys.stderr)
        return 2
    _print_result(result, degraded=sim.injector is not None)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    if args.speedup != 1.0:
        trace = trace.rescale(args.speedup)
    engine = standard_engine()
    faults = _fault_config(args)
    degraded = faults is not None
    rows = []
    for name in args.schedulers:
        result = _run_one(trace, name, engine, faults, args.nodes)
        row = (
            name,
            result.throughput_qps,
            result.mean_response_time,
            result.cache_hit_ratio,
            result.disk["reads"],
        )
        if degraded:
            row += (result.availability, result.retries, result.failovers, result.timeouts)
        rows.append(row)
    headers = ["scheduler", "qps", "mean_rt_s", "cache_hit", "reads"]
    if degraded:
        headers += ["avail", "retries", "failovers", "timeouts"]
    print(render_table(headers, rows))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    run_fn, render_fn = EXPERIMENTS[args.name]
    data = run_fn(ExperimentScale(args.scale))
    print(render_fn(data))
    if args.csv:
        from repro.experiments import export

        exporters = {
            "fig10": export.export_fig10,
            "fig11": export.export_fig11,
            "fig12": export.export_fig12,
            "table1": export.export_table1,
        }
        exporter = exporters.get(args.name)
        if exporter is None:
            print(f"(no CSV exporter for {args.name}; skipped)")
        else:
            print(f"wrote {exporter(data, args.csv)}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import lint

    argv = list(args.paths)
    if args.list_rules:
        argv.insert(0, "--list-rules")
    return lint.main(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "trace":
        if args.trace_command == "generate":
            return _cmd_trace_generate(args)
        return _cmd_trace_info(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "lint":
        return _cmd_lint(args)
    return _cmd_experiment(args)


if __name__ == "__main__":
    sys.exit(main())
