"""Convenience facade for common end-to-end flows.

Most users need three calls: build a dataset, generate (or load) a
trace, and run it under one or more schedulers.  This module bundles
those into single functions used by the examples and ad-hoc scripts;
everything here is a thin composition of the public subpackage APIs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import EngineConfig, SchedulerConfig
from repro.engine.results import RunResult
from repro.engine.runner import SCHEDULER_NAMES, run_trace
from repro.experiments.common import (
    standard_engine,
    standard_params,
    standard_spec,
    standard_trace,
)
from repro.grid.dataset import DatasetSpec
from repro.workload.generator import WorkloadParams, generate_trace
from repro.workload.trace import Trace

__all__ = ["build_workload", "compare_schedulers", "run_experiment"]


def build_workload(
    spec: Optional[DatasetSpec] = None,
    params: Optional[WorkloadParams] = None,
    speedup: float = 1.0,
) -> Trace:
    """Generate a calibrated synthetic trace (standard knobs unless
    overridden) at the requested saturation."""
    spec = spec or standard_spec()
    params = params or standard_params()
    trace = generate_trace(spec, params)
    return trace.rescale(speedup) if speedup != 1.0 else trace


def run_experiment(
    trace: Optional[Trace] = None,
    scheduler: str = "jaws2",
    engine: Optional[EngineConfig] = None,
    config: Optional[SchedulerConfig] = None,
) -> RunResult:
    """Replay a trace (the standard one by default) under a scheduler."""
    trace = trace or standard_trace()
    return run_trace(trace, scheduler, engine or standard_engine(), config)


def compare_schedulers(
    trace: Optional[Trace] = None,
    schedulers: Sequence[str] = SCHEDULER_NAMES,
    engine: Optional[EngineConfig] = None,
) -> dict[str, RunResult]:
    """Replay one trace under several schedulers (fresh instances)."""
    trace = trace or standard_trace()
    engine = engine or standard_engine()
    return {name: run_trace(trace, name, engine) for name in schedulers}
