"""Discrete-event simulation substrate.

Replays a trace against one or more scheduler instances (one per
cluster node) with a virtual clock, the calibrated cost model, and the
simulated storage stack.  All figures and tables are produced by
:func:`repro.engine.runner.run_trace`.
"""

from repro.engine.events import EventKind
from repro.engine.executor import BatchExecutor
from repro.engine.faults import FaultInjector, FaultKind, FaultStats
from repro.engine.results import RunResult
from repro.engine.runner import make_scheduler, run_trace
from repro.engine.simulator import Simulator

__all__ = [
    "EventKind",
    "BatchExecutor",
    "FaultInjector",
    "FaultKind",
    "FaultStats",
    "RunResult",
    "Simulator",
    "run_trace",
    "make_scheduler",
]
