"""Event records for the discrete-event simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

__all__ = ["EventKind", "Event"]


class EventKind(enum.IntEnum):
    """Event types, ordered by dispatch priority at equal timestamps:
    batch completions at time t free the executor (and count their
    completions) before anything else at t; a recovering node rejoins
    before a crashing one leaves so back-to-back schedules hand off
    cleanly; job submissions must precede their own query arrivals;
    re-routed sub-queries land before deadlines are checked; and
    deadlines fire last, so a query completing exactly at its deadline
    counts as completed."""

    BATCH_DONE = 0
    NODE_UP = 1
    NODE_DOWN = 2
    JOB_SUBMIT = 3
    QUERY_ARRIVAL = 4
    REROUTE = 5
    QUERY_DEADLINE = 6


@dataclass(order=True)
class Event:
    """Heap entry.  ``seq`` breaks ties deterministically."""

    time: float
    kind: EventKind
    seq: int
    payload: Any = field(compare=False, default=None)
