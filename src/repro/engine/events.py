"""Event records for the discrete-event simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

__all__ = ["EventKind", "Event"]


class EventKind(enum.IntEnum):
    """Event types, ordered by dispatch priority at equal timestamps:
    job submissions must precede their own query arrivals, and batch
    completions at time t free the executor before new work at t is
    considered."""

    BATCH_DONE = 0
    JOB_SUBMIT = 1
    QUERY_ARRIVAL = 2


@dataclass(order=True)
class Event:
    """Heap entry.  ``seq`` breaks ties deterministically."""

    time: float
    kind: EventKind
    seq: int
    payload: Any = field(compare=False, default=None)
