"""Event records for the discrete-event simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

__all__ = ["EventKind", "Event"]


class EventKind(enum.IntEnum):
    """Event types, ordered by dispatch priority at equal timestamps:
    batch completions at time t free the executor (and count their
    completions) before anything else at t; a recovering node rejoins
    before a crashing one leaves so back-to-back schedules hand off
    cleanly; job submissions must precede their own query arrivals;
    re-routed sub-queries land before deadlines are checked; deadlines
    fire after that, so a query completing exactly at its deadline
    counts as completed; and the overload control tick runs last of
    all, observing the fully settled queue state at its timestamp.
    (OVERLOAD_TICK and SHARD_MSG are appended rather than renumbered
    into place so WAL event fingerprints from older runs keep their
    kind codes.)

    SHARD_MSG carries one cross-shard control-plane message
    (:mod:`repro.shard`) delivered into a shard coordinator's local
    event loop at its virtual delivery time; it dispatches after the
    overload tick at equal timestamps, so remote notifications observe
    the same settled state a local observer would."""

    BATCH_DONE = 0
    NODE_UP = 1
    NODE_DOWN = 2
    JOB_SUBMIT = 3
    QUERY_ARRIVAL = 4
    REROUTE = 5
    QUERY_DEADLINE = 6
    OVERLOAD_TICK = 7
    SHARD_MSG = 8


@dataclass(order=True)
class Event:
    """Heap entry.  ``seq`` breaks ties deterministically."""

    time: float
    kind: EventKind
    seq: int
    payload: Any = field(compare=False, default=None)
