"""Seeded, deterministic fault injection for the simulated cluster.

One :class:`FaultInjector` per :class:`~repro.engine.simulator.Simulator`
owns a private RNG and every piece of mutable fault state: which atoms
have been permanently lost on which node, per-node consecutive-failure
counters (the circuit breaker), per-node retry budgets, and the
accumulated :class:`FaultStats`.

Determinism: all randomness flows through the injector's single
``random.Random(seed)`` stream, and the discrete-event engine calls the
injector in a deterministic order (heap order with sequence-number tie
breaks).  Same seed + same :class:`~repro.config.FaultConfig` + same
trace therefore reproduce bit-identical fault schedules and results —
the property the determinism tests in ``tests/test_faults.py`` assert.
"""

from __future__ import annotations

import enum
import hashlib
import random
from dataclasses import dataclass
from typing import Optional

from repro.config import FaultConfig
from repro.storage.disk import DiskModel

__all__ = ["FaultKind", "FaultStats", "FaultInjector"]


class FaultKind(enum.Enum):
    """Injected fault taxonomy.

    ``OK`` / ``TRANSIENT`` / ``LOST`` are the outcomes of one disk read
    attempt; ``COORDINATOR_CRASH`` is a whole-run fault — the engine
    aborts with :class:`~repro.errors.CoordinatorCrash` at an armed
    event index (recovered via the checkpoint subsystem,
    :mod:`repro.recovery`).  ``SHARD_CRASH`` is its cluster-level
    analog for sharded multi-coordinator runs (:mod:`repro.shard`): one
    coordinator shard crash-stops at a configured or seeded virtual
    time, its Morton-range leases fail over to a surviving shard at a
    deterministic epoch bump, and in-flight cross-shard work is
    re-resolved via typed retry in virtual time.
    """

    OK = "ok"
    TRANSIENT = "transient"
    LOST = "lost"
    COORDINATOR_CRASH = "coordinator_crash"
    SHARD_CRASH = "shard_crash"


@dataclass
class FaultStats:
    """Counters accumulated by one injector over a simulation."""

    transient_faults: int = 0
    permanent_losses: int = 0
    slow_reads: int = 0
    retries: int = 0
    retries_exhausted: int = 0

    def snapshot(self) -> dict:
        return {
            "transient_faults": self.transient_faults,
            "permanent_losses": self.permanent_losses,
            "slow_reads": self.slow_reads,
            "retries": self.retries,
            "retries_exhausted": self.retries_exhausted,
        }


class FaultInjector:
    """Draws fault outcomes and tracks degraded-mode state.

    Parameters
    ----------
    config:
        The fault knobs (rates, backoff schedule, breaker threshold).
    n_nodes:
        Cluster size; per-node state (budgets, breakers) is indexed by
        node.
    guaranteed_events:
        A lower bound on the number of events the engine will dispatch
        for this run (the engine passes ``len(trace.jobs) + 2 *
        len(node_crashes)``: every JOB_SUBMIT and NODE_DOWN/NODE_UP is
        dispatched no matter what the schedulers do).  Window-drawn
        coordinator-crash points are clamped below this bound so a
        window reaching past the end of a short trace still produces a
        crash that actually fires instead of silently testing nothing.
        Explicit ``coordinator_crash_at`` indices are honored verbatim.
    """

    def __init__(
        self,
        config: FaultConfig,
        n_nodes: int,
        guaranteed_events: Optional[int] = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.config = config
        self._rng = random.Random(config.seed)
        self._loss_decided: set[tuple[int, int]] = set()
        self._lost: set[tuple[int, int]] = set()
        self._consecutive = [0] * n_nodes
        self._retry_budget: list[Optional[int]] = [config.retry_budget_per_node] * n_nodes
        self.degraded = [False] * n_nodes
        self.stats = FaultStats()
        # Coordinator-crash point: explicit index, or drawn once from a
        # DEDICATED seeded stream (never the shared fault stream, so
        # arming a crash cannot perturb disk-fault outcomes and a
        # resumed run stays bit-identical to an uninterrupted one).
        self.crash_fired = False
        self.crash_at: Optional[int] = config.coordinator_crash_at
        if self.crash_at is None and config.coordinator_crash_window is not None:
            lo, hi = config.coordinator_crash_window
            crash_rng = random.Random(f"{config.seed}:coordinator_crash")
            self.crash_at = crash_rng.randrange(int(lo), int(hi))
            if guaranteed_events is not None:
                # Clamp into the live event range (still >= 1 so a
                # pre-crash snapshot can exist for recovery).
                self.crash_at = max(1, min(self.crash_at, guaranteed_events - 1))

    # ------------------------------------------------------------------
    # Read outcomes
    # ------------------------------------------------------------------
    def is_lost(self, node: int, atom_id: int) -> bool:
        """Has this node already discovered the atom unrecoverable?"""
        return (node, atom_id) in self._lost

    def draw_outcome(self, node: int, atom_id: int) -> FaultKind:
        """Decide the fate of one read attempt of ``atom_id`` on ``node``.

        Permanent loss is decided exactly once per (node, atom) — a
        lost atom stays lost; an atom that survived its first read can
        still fail transiently on any later attempt.
        """
        cfg = self.config
        key = (node, atom_id)
        if key in self._lost:
            return FaultKind.LOST
        if cfg.permanent_loss_rate > 0 and key not in self._loss_decided:
            self._loss_decided.add(key)
            if self._rng.random() < cfg.permanent_loss_rate:
                self._lost.add(key)
                self.stats.permanent_losses += 1
                return FaultKind.LOST
        if cfg.transient_fault_rate > 0 and self._rng.random() < cfg.transient_fault_rate:
            return FaultKind.TRANSIENT
        return FaultKind.OK

    def slow_factor(self, node: int) -> float:
        """Cost multiplier for one successful read (slow-disk fault)."""
        cfg = self.config
        if cfg.slow_read_rate > 0 and self._rng.random() < cfg.slow_read_rate:
            self.stats.slow_reads += 1
            return cfg.slow_read_factor
        return 1.0

    # ------------------------------------------------------------------
    # Circuit breaker + retry policy
    # ------------------------------------------------------------------
    def on_read_ok(self, node: int) -> None:
        """A read succeeded: the node's consecutive-failure streak ends."""
        self._consecutive[node] = 0

    def on_transient(self, node: int, disk: DiskModel) -> None:
        """Record a transient fault; trip the breaker at the threshold.

        Once tripped, the node's disk is marked degraded (modeling a
        RAID array in rebuild mode) and every later read on it is
        charged ``degraded_factor`` times the normal cost.
        """
        self.stats.transient_faults += 1
        self._consecutive[node] += 1
        threshold = self.config.circuit_breaker_threshold
        if not self.degraded[node] and self._consecutive[node] >= threshold:
            self.degraded[node] = True
            disk.degrade(self.config.degraded_factor)

    def grant_retry(self, node: int, attempt: int) -> bool:
        """May read attempt ``attempt`` (1-based failures so far) retry?

        Denied when the per-read ``max_retries`` or the node's total
        retry budget is exhausted; a denial abandons the read and the
        caller re-queues or re-routes the affected sub-queries.
        """
        if attempt > self.config.max_retries:
            self.stats.retries_exhausted += 1
            return False
        budget = self._retry_budget[node]
        if budget is not None:
            if budget <= 0:
                self.stats.retries_exhausted += 1
                return False
            self._retry_budget[node] = budget - 1
        self.stats.retries += 1
        return True

    def backoff(self, attempt: int) -> float:
        """Virtual-time delay before retry ``attempt`` (1-based), with
        exponential growth and uniform jitter."""
        cfg = self.config
        delay = cfg.backoff_base * (cfg.backoff_factor ** (attempt - 1))
        if cfg.backoff_jitter > 0:
            delay *= 1.0 + cfg.backoff_jitter * (2.0 * self._rng.random() - 1.0)
        return delay

    # ------------------------------------------------------------------
    # Coordinator crash (FaultKind.COORDINATOR_CRASH)
    # ------------------------------------------------------------------
    def coordinator_crash_due(self, event_index: int) -> bool:
        """Should the coordinator abort before dispatching this event?"""
        if self.crash_at is not None and event_index >= self.crash_at:
            self.crash_fired = True
            return True
        return False

    def disarm_coordinator_crash(self) -> None:
        """Clear the armed crash point (called on checkpoint restore so
        the resumed run does not immediately re-crash).

        Disarming an armed crash records it as fired: restore only ever
        disarms after the crash actually aborted a run, and the restored
        snapshot predates the abort, so the pickled ``crash_fired`` is
        still False at this point.
        """
        if self.crash_at is not None:
            self.crash_fired = True
        self.crash_at = None

    def rng_digest(self) -> str:
        """Short stable digest of the injector's RNG state.

        Embedded in error diagnostics and snapshot headers: two runs
        that diverge show different digests at the first divergent
        event, pinpointing the replay position of the divergence.
        """
        state = repr(self._rng.getstate()).encode()
        return hashlib.sha256(state).hexdigest()[:16]

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Stats plus degraded-node and loss summaries for RunResult.

        ``crash_effective`` reports whether an armed coordinator crash
        actually fired during the run's lifecycle (directly, or in the
        crashed run a restored simulator resumed from).  A completed run
        whose config armed a crash but whose result says
        ``crash_effective: False`` exercised nothing — the soak-level
        assertion this flag exists for.  Lifecycle metadata, not
        simulation output: bit-identity comparisons exclude it, exactly
        like the wall-clock overhead counters.
        """
        out = self.stats.snapshot()
        out["degraded_nodes"] = sum(self.degraded)
        out["lost_atom_copies"] = len(self._lost)
        out["crash_effective"] = self.crash_fired
        return out
