"""High-level entry points: build a scheduler by name, run a trace.

The evaluation's five schedulers (§VI-B) map to factory names:

========== =====================================================
name        configuration
========== =====================================================
noshare     arrival order, no sharing, round-robin interleave
liferaft1   LifeRaft, age bias α = 1 (arrival-order batching)
liferaft2   LifeRaft, age bias α = 0 (contention order)
jaws1       JAWS without job-awareness (two-level + adaptive α)
jaws2       full JAWS
========== =====================================================
"""

from __future__ import annotations

from typing import Optional

from repro.config import EngineConfig, FaultConfig, SchedulerConfig
from repro.core.base import Scheduler
from repro.core.jaws import JAWSScheduler
from repro.core.liferaft import LifeRaftScheduler
from repro.core.noshare import NoShareScheduler
from repro.engine.results import RunResult
from repro.engine.simulator import Simulator
from repro.workload.trace import Trace

__all__ = ["ENGINE_KINDS", "SCHEDULER_NAMES", "make_scheduler", "run_trace"]

SCHEDULER_NAMES = ("noshare", "liferaft1", "liferaft2", "jaws1", "jaws2")

#: Execution engines: the exact event-at-a-time oracle and the
#: vectorized fast engine (bit-identical where supported; see
#: :mod:`repro.fastengine`).
ENGINE_KINDS = ("exact", "fast")


def make_scheduler(
    name: str,
    trace: Trace,
    engine: Optional[EngineConfig] = None,
    config: Optional[SchedulerConfig] = None,
) -> Scheduler:
    """Construct a fresh scheduler for one run over ``trace``.

    ``config`` overrides the JAWS scheduler knobs (batch size k, initial
    α, run length, gating valve); LifeRaft/NoShare ignore most of it by
    construction.
    """
    engine = engine or EngineConfig()
    spec = trace.spec
    base = config or SchedulerConfig(
        alpha=0.5, adaptive_alpha=True, run_length=engine.run_length
    )
    key = name.lower()
    if key == "noshare":
        return NoShareScheduler()
    if key == "liferaft1":
        return LifeRaftScheduler(spec, engine.cost, base, alpha=1.0)
    if key == "liferaft2":
        return LifeRaftScheduler(spec, engine.cost, base, alpha=0.0)
    if key == "jaws1":
        return JAWSScheduler(spec, engine.cost, base.with_(job_aware=False))
    if key == "jaws2":
        return JAWSScheduler(spec, engine.cost, base.with_(job_aware=True))
    raise ValueError(f"unknown scheduler {name!r}; choose from {SCHEDULER_NAMES}")


def run_trace(
    trace: Trace,
    scheduler: Scheduler | str,
    engine: Optional[EngineConfig] = None,
    config: Optional[SchedulerConfig] = None,
    faults: Optional[FaultConfig] = None,
    engine_kind: str = "exact",
) -> RunResult:
    """Replay ``trace`` under ``scheduler`` (an instance or a factory
    name) on a single node and return the results.

    ``faults`` overrides ``engine.faults`` — a convenience so callers
    can inject faults without rebuilding the whole engine config.
    ``engine_kind`` selects the execution engine: ``"exact"`` (the
    event-at-a-time oracle) or ``"fast"`` (the vectorized engine of
    :mod:`repro.fastengine`, bit-identical on every configuration it
    accepts).  With ``engine_kind="fast"``, ``scheduler`` must be a
    factory name: the fast engine pairs its own scheduler subclasses
    with its simulator, and a pre-built exact scheduler instance would
    silently miss the columnar queues.
    """
    engine = engine or EngineConfig()
    if faults is not None:
        engine = engine.with_(faults=faults)
    if engine_kind == "fast":
        # Local import: repro.fastengine imports this module's factory.
        from repro.errors import ConfigurationError
        from repro.fastengine import FastSimulator, make_fast_scheduler

        if not isinstance(scheduler, str):
            raise ConfigurationError(
                "engine='fast' requires a scheduler factory name, not a "
                f"pre-built {type(scheduler).__name__} instance"
            )
        fast = make_fast_scheduler(scheduler, trace, engine, config)
        return FastSimulator(trace, [fast], engine).run()
    if engine_kind != "exact":
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"unknown engine kind {engine_kind!r}; choose from {ENGINE_KINDS}"
        )
    if isinstance(scheduler, str):
        scheduler = make_scheduler(scheduler, trace, engine, config)
    return Simulator(trace, [scheduler], engine).run()
