"""Discrete-event simulator: replays a trace through scheduler(s).

One :class:`Simulator` owns the virtual clock, the event heap, and one
*node* per scheduler instance — a node bundles a scheduler, a buffer
cache, a disk and a batch executor, mirroring the Turbulence cluster's
architecture of "data partitioned spatially and stored across different
nodes, each running a separate JAWS instance" (§V-C, Fig. 7).  The
single-node case (the paper's evaluation setup) is ``len(schedulers)
== 1``.

Lifecycle of a query (paper Fig. 1 + §IV-B):

1. its job's ``JOB_SUBMIT`` fires; ordered jobs emit the first query's
   ``QUERY_ARRIVAL``, batched jobs emit all of them;
2. on arrival the pre-processor splits it into per-atom sub-queries
   which are routed to nodes and handed to each node's scheduler;
3. idle nodes pull batches; batch completion decrements the query's
   outstanding sub-query count;
4. at zero the query completes: response time is recorded, and an
   ordered job's next query arrives after user think time.

Runs of ``run_length`` completions trigger the adaptive-α and SLRU
run-boundary hooks.

Degraded-mode operation (``EngineConfig.faults``): a seeded
:class:`~repro.engine.faults.FaultInjector` makes disk reads fail
(retried with backoff inside the executor), atoms permanently lost on
a node (their sub-queries fail over to replicas), and nodes crash and
recover on a configured schedule.  A crashing node's in-flight batch is
aborted and all its pending sub-queries are evacuated to replicas with
their original arrival times; while down it receives no new work but
still hears arrival/completion broadcasts so its gating graph stays in
sync, and on recovery it rejoins routing.  Per-query deadlines cancel
overdue queries everywhere — workload queues pruned, gating groups
released, the remainder of an ordered job aborted — and every fault
outcome is surfaced in :class:`~repro.engine.results.RunResult`.

Overload protection (``EngineConfig.overload``, DESIGN.md §9): an
:class:`~repro.overload.OverloadManager` gates every JOB_SUBMIT
(per-client token buckets, weighted fair class quotas, brownout-mode
throttling) before any scheduler hears about the job, enforces a
per-node pending-queue bound at arrival by shedding victims in policy
order, and runs a periodic OVERLOAD_TICK control loop that EWMA-smooths
load into NORMAL/THROTTLED/SHEDDING modes.  All decisions run on the
virtual clock from plain picklable state, so protected runs — including
crash+resume — stay bit-identical for the same seed.
"""

from __future__ import annotations

import heapq
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

from repro.analysis.sanitizer import SimulationSanitizer
from repro.cache.base import CachePolicy, make_policy
from repro.config import CacheConfig, EngineConfig
from repro.core.base import Batch, RunObservation, Scheduler
from repro.core.contention import ContentionSchedulerBase
from repro.engine.events import Event, EventKind
from repro.engine.executor import BatchExecutor
from repro.engine.faults import FaultInjector
from repro.engine.results import RunResult
from repro.errors import (
    CoordinatorCrash,
    LivelockError,
    SimTimeExceededError,
    SimulationError,
)
from repro.grid.atoms import AtomMapper
from repro.grid.dataset import DatasetSpec
from repro.grid.interpolation import InterpolationSpec
from repro.overload import OverloadManager, PendingWork, estimate_service
from repro.storage.buffer import BufferCache
from repro.storage.disk import DiskModel
from repro.workload.job import Job
from repro.workload.query import Query, SubQuery, preprocess_query
from repro.workload.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - recovery imports engine.events
    from repro.recovery.checkpoint import CheckpointManager

__all__ = ["Simulator", "build_policy"]


class _SingleNodeRouter:
    """Default ``node_of``: every atom lives on node 0.

    A module-level callable class (not a lambda) so a simulator using
    the default routing stays picklable for checkpoint snapshots.
    """

    def __call__(self, atom_id: int) -> int:
        return 0


class _PrimaryOnlyReplicas:
    """Default ``replicas_of``: the primary owner is the only replica.

    Picklable for the same reason as :class:`_SingleNodeRouter`.
    """

    def __init__(self, node_of: Callable[[int], int]) -> None:
        self._node_of = node_of

    def __call__(self, atom_id: int) -> Sequence[int]:
        return (self._node_of(atom_id),)


def build_policy(config: CacheConfig) -> CachePolicy:
    """Instantiate the configured replacement policy with its knobs."""
    if config.policy == "slru":
        return make_policy(
            "slru",
            capacity=config.capacity_atoms,
            protected_fraction=config.protected_fraction,
        )
    if config.policy == "lruk":
        return make_policy("lruk", k=config.lruk_k)
    return make_policy(config.policy)


class _Node:
    """One cluster node: scheduler + cache + disk + executor.

    The three ``*_cls`` class attributes are the component dispatch
    seam: the fast engine (:mod:`repro.fastengine`) subclasses this
    node with drop-in replacements that must stay bit-identical in
    observable behaviour.
    """

    cache_cls: type[BufferCache] = BufferCache
    disk_cls: type[DiskModel] = DiskModel
    executor_cls: type[BatchExecutor] = BatchExecutor

    def __init__(
        self,
        idx: int,
        scheduler: Scheduler,
        spec: DatasetSpec,
        config: EngineConfig,
        injector: Optional[FaultInjector],
        sanitizer: Optional[SimulationSanitizer] = None,
    ) -> None:
        self.scheduler = scheduler
        self.cache = self.cache_cls(config.cache.capacity_atoms, build_policy(config.cache))
        self.disk = self.disk_cls(config.cost, spec.n_atoms)
        self.executor = self.executor_cls(
            spec,
            config.cost,
            self.cache,
            self.disk,
            InterpolationSpec(order=config.interpolation_order),
            injector=injector,
            node_idx=idx,
            sanitizer=sanitizer,
        )
        self.busy = False
        self.up = True
        # Crash generation: BATCH_DONE events from before a crash carry
        # a stale epoch and are dropped (their work was re-routed).
        self.epoch = 0
        self.inflight: Optional[Batch] = None
        if isinstance(scheduler, ContentionSchedulerBase):
            scheduler.bind_cache(self.cache)


class Simulator:
    """Replay ``trace`` through one scheduler per node.

    Parameters
    ----------
    trace:
        The workload.
    schedulers:
        One scheduler instance per node (fresh — schedulers are
        stateful and single-use).
    config:
        Engine configuration (including ``config.faults``).
    node_of:
        Maps a packed atom id to its owning node index; defaults to a
        single node.  Must be consistent with ``len(schedulers)``.
    replicas_of:
        Maps a packed atom id to its owning nodes in failover
        preference order (primary first).  Defaults to the primary
        only, i.e. no failover targets.
    """

    #: Node factory seam: the fast engine swaps in a subclass of
    #: :class:`_Node` with vectorized cache/disk/executor components.
    _node_cls: type[_Node] = _Node

    def __init__(
        self,
        trace: Trace,
        schedulers: Sequence[Scheduler],
        config: Optional[EngineConfig] = None,
        node_of: Optional[Callable[[int], int]] = None,
        replicas_of: Optional[Callable[[int], Sequence[int]]] = None,
    ) -> None:
        if not schedulers:
            raise ValueError("need at least one scheduler")
        self.trace = trace
        self.config = config or EngineConfig()
        self.spec = trace.spec
        self.mapper = AtomMapper(self.spec)
        faults = self.config.faults
        # Guaranteed-dispatch floor: every JOB_SUBMIT plus both halves
        # of every scheduled node crash is dispatched unconditionally,
        # so a window-drawn coordinator crash clamped below this count
        # always fires (it cannot land past the end of a short trace).
        guaranteed_events = len(trace.jobs) + 2 * len(faults.node_crashes)
        self.injector = (
            FaultInjector(faults, len(schedulers), guaranteed_events=guaranteed_events)
            if faults.enabled
            else None
        )
        self.sanitizer = SimulationSanitizer(self) if self.config.sanitize else None
        self.nodes = [
            self._node_cls(i, s, self.spec, self.config, self.injector, self.sanitizer)
            for i, s in enumerate(schedulers)
        ]
        self._node_of = node_of or _SingleNodeRouter()
        self._replicas_of = replicas_of or _PrimaryOnlyReplicas(self._node_of)

        self._heap: list[Event] = []
        self._seq = 0
        self.clock = 0.0
        self.event_index = 0
        self._last_completion = 0.0

        # Query bookkeeping.
        self._arrival: dict[int, float] = {}
        self._remaining: dict[int, int] = {}
        self._live_query: dict[int, Query] = {}
        self._job_of: dict[int, Job] = {}
        self._job_left: dict[int, int] = {}
        self._job_first_arrival: dict[int, float] = {}
        # Jobs with a cancelled/aborted query never record a duration.
        self._impaired_jobs: set[int] = set()

        # Results accumulation.
        self._response_times: list[float] = []
        self._job_durations: dict[int, float] = {}
        self._completed = 0
        self._runs: list[RunObservation] = []
        self._run_start = 0.0
        self._run_responses: list[float] = []
        self.forced_releases = 0

        # Fault accounting.
        self._timeouts = 0
        self._failovers = 0
        self._requeues = 0
        self._data_loss_cancels = 0
        self._cancelled = 0
        self._aborted_jobs = 0
        self._aborted_unarrived = 0
        self._node_downs = 0
        self._deferred = 0

        # Overload protection (DESIGN.md §9).  The shed-conservation
        # counters (_admitted/_shed) and per-class response times are
        # maintained unconditionally — the sanitizer checks the
        # admitted = completed + cancelled + shed + pending identity on
        # every run, protected or not.
        overload_cfg = self.config.overload
        self.overload: Optional[OverloadManager] = (
            OverloadManager(overload_cfg, self.config.cost, len(schedulers))
            if overload_cfg.enabled
            else None
        )
        self._admitted = 0
        self._shed = 0
        self._class_responses: dict[str, list[float]] = {}
        self._tick_armed = False

        self._job_index = {job.job_id: job for job in trace.jobs}
        for job in trace.jobs:
            self._push(job.submit_time, EventKind.JOB_SUBMIT, job)
        if self.overload is not None and trace.jobs:
            # First control tick coincides with the earliest submit;
            # OVERLOAD_TICK dispatches last at equal timestamps, so it
            # always observes settled queue state.
            self._arm_tick(min(job.submit_time for job in trace.jobs))
        for node_idx, down_t, up_t in faults.node_crashes:
            if not 0 <= int(node_idx) < len(self.nodes):
                raise ValueError(
                    f"crash schedule names node {node_idx} but the cluster has "
                    f"{len(self.nodes)} nodes"
                )
            self._push(down_t, EventKind.NODE_DOWN, int(node_idx))
            self._push(up_t, EventKind.NODE_UP, int(node_idx))
        self._recovery_times = sorted(up_t for _, _, up_t in faults.node_crashes)

        # Crash-consistent checkpointing (DESIGN.md §8).  The manager is
        # deliberately NOT part of snapshot state (_capture_state skips
        # it): it holds open file handles and is rebuilt on restore.
        self._checkpointer: Optional["CheckpointManager"] = None
        if self.config.checkpoint.enabled:
            from repro.recovery.checkpoint import CheckpointManager

            self._checkpointer = CheckpointManager(self.config.checkpoint)

    # ------------------------------------------------------------------
    def _push(self, time_: float, kind: EventKind, payload: object) -> None:
        if self.sanitizer is not None:
            self.sanitizer.on_schedule(time_, kind)
        heapq.heappush(self._heap, Event(time_, kind, self._seq, payload))
        self._seq += 1

    def _arm_tick(self, time_: float) -> None:
        """Schedule the next overload control tick, at most one at a
        time (ticks re-arm themselves while work remains; batch starts
        re-arm a tick that died during an idle stretch)."""
        if self.overload is None or self._tick_armed:
            return
        self._tick_armed = True
        self._push(time_, EventKind.OVERLOAD_TICK, None)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, atom_id: int) -> tuple[Optional[int], bool]:
        """Pick the node to serve ``atom_id``: the first owner (primary,
        then replicas) that is up and has not lost the atom.

        Returns ``(node_index, lost_everywhere)`` — ``(None, True)``
        when every owner has discovered the atom unrecoverable (data
        loss), ``(None, False)`` when owners survive but all are down
        (defer until a recovery).
        """
        candidates = self._replicas_of(atom_id)
        lost_everywhere = True
        for idx in candidates:
            if self.injector is not None and self.injector.is_lost(idx, atom_id):
                continue
            lost_everywhere = False
            if self.nodes[idx].up:
                return idx, False
        return None, lost_everywhere

    def _next_recovery_after(self, now: float) -> Optional[float]:
        for t in self._recovery_times:
            if t > now:
                return t
        return None

    def _reroute(self, sq: SubQuery, arrival: float, now: float, from_node: Optional[int]) -> None:
        """Find a new home for a sub-query whose node failed it (crash,
        lost atom, or exhausted retries)."""
        qid = sq.query.query_id
        if qid not in self._remaining:
            return  # query already completed or cancelled
        target, lost_everywhere = self._route(sq.atom_id)
        if target is None:
            if lost_everywhere:
                self._cancel_query(qid, now, reason="data_loss")
            else:
                self._defer(sq, arrival, now)
            return
        if from_node is not None and target == from_node:
            # Same (still healthy) node: a fresh attempt later, not a
            # failover — e.g. retries exhausted with no replica.
            self._requeues += 1
        else:
            self._failovers += 1
        self.nodes[target].scheduler.readmit([(arrival, sq)], now)

    def _defer(self, sq: SubQuery, arrival: float, now: float) -> None:
        """Every owner of the atom is down: park the sub-query until
        the next scheduled recovery."""
        next_up = self._next_recovery_after(now)
        if next_up is None:
            raise SimulationError(
                "no node can serve a sub-query and no recovery is scheduled",
                **{**self._diagnostics(), "clock": now},
            )
        self._deferred += 1
        self._push(next_up, EventKind.REROUTE, (sq, arrival))

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _dispatch(self, ev: Event) -> None:
        if self.injector is not None and self.injector.coordinator_crash_due(self.event_index):
            # Crash BEFORE the write-ahead record: the aborted event is
            # not in the WAL, so the resumed run re-dispatches it.
            if self._checkpointer is not None:
                self._checkpointer.flush()
            raise CoordinatorCrash(
                "injected coordinator crash "
                f"(armed at event {self.injector.crash_at})",
                **self._diagnostics(),
            )
        if self._checkpointer is not None:
            self._checkpointer.log_event(self, ev)
        if ev.kind is EventKind.JOB_SUBMIT:
            self._on_job_submit(ev.payload, ev.time)
        elif ev.kind is EventKind.QUERY_ARRIVAL:
            self._on_query_arrival(ev.payload, ev.time)
        elif ev.kind is EventKind.BATCH_DONE:
            self._on_batch_done(*ev.payload, now=ev.time)
        elif ev.kind is EventKind.NODE_DOWN:
            self._on_node_down(ev.payload, ev.time)
        elif ev.kind is EventKind.NODE_UP:
            self._on_node_up(ev.payload, ev.time)
        elif ev.kind is EventKind.REROUTE:
            sq, arrival = ev.payload
            self._reroute(sq, arrival, ev.time, from_node=None)
        elif ev.kind is EventKind.QUERY_DEADLINE:
            self._on_query_deadline(ev.payload, ev.time)
        elif ev.kind is EventKind.SHARD_MSG:
            self._on_shard_msg(ev.payload, ev.time)
        else:  # OVERLOAD_TICK
            self._on_overload_tick(ev.time)
        if self.sanitizer is not None:
            # Every event handler leaves the engine in a consistent
            # state; sweep all invariants before the next decision.
            self.sanitizer.after_event()
        self.event_index += 1
        if self._checkpointer is not None:
            self._checkpointer.maybe_snapshot(self)

    def _on_job_submit(self, job: Job, now: float) -> None:
        if self.overload is not None:
            # Admission is decided for the job as a unit, BEFORE any
            # scheduler hears about it: a rejected job never enters a
            # gating graph, so there are no half-admitted ordered jobs
            # to deadlock on.  The typed rejection (with its retry
            # hint) is recorded by the manager; in a live service it
            # would be returned to the client.
            if self.overload.admit_job(job, self._global_depth(), now) is not None:
                return
        self._job_left[job.job_id] = job.n_queries
        for node in self.nodes:
            node.scheduler.on_job_submitted(job, now)
        if job.is_ordered:
            self._push(now, EventKind.QUERY_ARRIVAL, job.queries[0])
        else:
            for q in job.queries:
                self._push(now, EventKind.QUERY_ARRIVAL, q)

    def _on_query_arrival(self, query: Query, now: float) -> None:
        self._arrival[query.query_id] = now
        self._job_first_arrival.setdefault(query.job_id, now)
        self._live_query[query.query_id] = query
        self._job_of[query.query_id] = self._job_index[query.job_id]
        subqueries = preprocess_query(query, self.mapper)
        self._remaining[query.query_id] = len(subqueries)
        self._admitted += 1
        if self.overload is not None:
            job = self._job_of[query.query_id]
            service = estimate_service(subqueries, self.config.cost)
            self.overload.register(
                PendingWork(
                    query_id=query.query_id,
                    job_id=query.job_id,
                    client_class=job.client_class,
                    arrival=now,
                    n_subqueries=len(subqueries),
                    density=query.n_positions / max(1, len(subqueries)),
                    service_estimate=service,
                    deadline=now + self.config.overload.slack_factor * service,
                    class_weight=self.overload.fairness.weight(job.client_class),
                ),
                len(subqueries),
            )
        by_node: dict[int, list] = {}
        deferred: list[SubQuery] = []
        lost: bool = False
        for sq in subqueries:
            if self.injector is None:
                by_node.setdefault(self._node_of(sq.atom_id), []).append(sq)
                continue
            target, lost_everywhere = self._route(sq.atom_id)
            if target is not None:
                if target != self._node_of(sq.atom_id):
                    self._failovers += 1
                by_node.setdefault(target, []).append(sq)
            elif lost_everywhere:
                lost = True
            else:
                deferred.append(sq)
        # Every node hears every arrival (possibly with no local
        # sub-queries) so per-node gating state advances even for
        # queries whose data lives elsewhere — including down nodes,
        # whose gating graphs must stay in sync for recovery.
        for node_idx, node in enumerate(self.nodes):
            node.scheduler.on_query_arrival(query, by_node.get(node_idx, []), now)
        for sq in deferred:
            self._defer(sq, now, now)
        if lost:
            # Some sub-query's atom is unrecoverable everywhere: the
            # query can never complete.
            self._cancel_query(query.query_id, now, reason="data_loss")
            return
        if self.overload is not None:
            self._enforce_queue_bounds(now)
            if query.query_id not in self._remaining:
                return  # the arriving query itself was shed
        deadline = self.config.faults.query_deadline
        if deadline is not None:
            self._push(now + deadline, EventKind.QUERY_DEADLINE, query.query_id)

    def _global_depth(self) -> int:
        """Cluster-wide pending sub-query slots (queued, gated, and
        in-flight work of every admitted, incomplete query)."""
        return sum(self._remaining.values())

    def _enforce_queue_bounds(self, now: float) -> None:
        """Backpressure: while any node's workload queue exceeds the
        configured bound, shed pending queries in policy order.  Each
        shed prunes at least one local sub-query (victims are drawn
        from the node's own pending set), so the loop terminates."""
        assert self.overload is not None
        bound = self.config.overload.max_queue_depth
        for node in self.nodes:
            while node.scheduler.queue_depth() > bound:
                local = sorted({sq.query.query_id for sq in node.scheduler.iter_pending()})
                victims = self.overload.rank_victims(local, now)
                if not victims:
                    break  # pragma: no cover - pending work the manager never saw
                self.overload.note_shed("overflow")
                self._cancel_query(victims[0].query_id, now, reason="shed")

    def _on_batch_done(
        self, node_idx: int, epoch: int, batch: Batch, failed: list, now: float
    ) -> None:
        node = self.nodes[node_idx]
        if epoch != node.epoch:
            return  # the node crashed mid-batch; this work was re-routed
        node.busy = False
        node.inflight = None
        failed_ids = {id(sq) for sq in failed}
        for _, subqueries in batch.atoms:
            for sq in subqueries:
                if id(sq) in failed_ids:
                    continue
                qid = sq.query.query_id
                if qid not in self._remaining:
                    continue  # query cancelled while the batch ran
                self._remaining[qid] -= 1
                if self.overload is not None:
                    self.overload.on_subquery_done(qid)
                if self._remaining[qid] == 0:
                    self._complete_query(sq.query, now)
        for sq in failed:
            self._reroute(sq, self._arrival.get(sq.query.query_id, now), now, from_node=node_idx)

    def _on_node_down(self, node_idx: int, now: float) -> None:
        node = self.nodes[node_idx]
        if not node.up:
            return
        node.up = False
        node.epoch += 1
        self._node_downs += 1
        evacuated: list[tuple[float, SubQuery]] = []
        if node.inflight is not None:
            # Abort the in-flight batch: its completion event is now
            # stale (epoch mismatch) and its work must move.
            for _, subqueries in node.inflight.atoms:
                for sq in subqueries:
                    qid = sq.query.query_id
                    if qid in self._remaining:
                        evacuated.append((self._arrival.get(qid, now), sq))
        node.busy = False
        node.inflight = None
        node.disk.reset_locality()
        evacuated.extend(node.scheduler.evacuate(now))
        for arrival, sq in evacuated:
            self._reroute(sq, arrival, now, from_node=None)

    def _on_node_up(self, node_idx: int, now: float) -> None:
        node = self.nodes[node_idx]
        node.up = True
        node.disk.reset_locality()

    def _on_query_deadline(self, query_id: int, now: float) -> None:
        if query_id in self._remaining:
            self._cancel_query(query_id, now, reason="timeout")

    def _on_shard_msg(self, payload: object, now: float) -> None:
        """Handle one delivered cross-shard message.

        The base engine never schedules ``SHARD_MSG`` events; the
        sharded coordinator (:mod:`repro.shard`) overrides this hook to
        apply routed sub-queries, arrival/completion broadcasts and
        completion notices from peer shards."""
        raise SimulationError(
            "SHARD_MSG delivered to a non-sharded simulator",
            **{**self._diagnostics(), "clock": now},
        )

    def _on_overload_tick(self, now: float) -> None:
        """Overload control loop: advance the brownout mode machine and
        drain pending work while in SHEDDING mode.

        The tick re-arms itself only while the simulation has work left
        (a busy node or any non-tick event); otherwise it dies so the
        run can end, and :meth:`_start_batches` re-arms it when work
        resumes."""
        self._tick_armed = False
        if self.overload is None:  # pragma: no cover - tick never armed
            return
        for qid in self.overload.on_tick(self._global_depth(), now):
            if qid in self._remaining:
                self.overload.note_shed("drain")
                self._cancel_query(qid, now, reason="shed")
        if any(n.busy for n in self.nodes) or any(
            ev.kind is not EventKind.OVERLOAD_TICK for ev in self._heap
        ):
            self._arm_tick(now + self.config.overload.control_interval)

    # ------------------------------------------------------------------
    # Completion and cancellation
    # ------------------------------------------------------------------
    def _complete_query(self, query: Query, now: float) -> None:
        del self._remaining[query.query_id]
        self._live_query.pop(query.query_id, None)
        self._last_completion = now
        response = now - self._arrival.pop(query.query_id)
        self._response_times.append(response)
        self._run_responses.append(response)
        self._completed += 1
        for node in self.nodes:
            node.scheduler.on_query_complete(query, now)

        job = self._job_of.pop(query.query_id)
        self._class_responses.setdefault(job.client_class, []).append(response)
        if self.overload is not None:
            self.overload.on_query_removed(query.query_id, 0)
            self.overload.note_response(response)
        self._job_left[job.job_id] -= 1
        if self._job_left[job.job_id] == 0:
            if job.job_id not in self._impaired_jobs:
                self._job_durations[job.job_id] = now - self._job_first_arrival[job.job_id]
        elif job.is_ordered and query.seq + 1 < job.n_queries:
            self._push(
                now + job.think_time, EventKind.QUERY_ARRIVAL, job.queries[query.seq + 1]
            )

        if self._completed % self.config.run_length == 0:
            self._run_boundary(now)

    def _cancel_query(self, query_id: int, now: float, reason: str) -> None:
        """Cancel an arrived, incomplete query everywhere: prune its
        sub-queries from all workload queues, release its gating
        partners, and abort the remainder of an ordered job.

        ``reason`` is ``"timeout"``, ``"data_loss"``, or ``"shed"``
        (overload protection dropping admitted work); shed queries are
        counted separately from fault cancellations."""
        query = self._live_query.pop(query_id)
        remaining = self._remaining.pop(query_id, 0)
        self._arrival.pop(query_id, None)
        if reason == "shed":
            self._shed += 1
        elif reason == "timeout":
            self._cancelled += 1
            self._timeouts += 1
        else:
            self._cancelled += 1
            self._data_loss_cancels += 1
        if self.overload is not None:
            self.overload.on_query_removed(query_id, remaining)
        for node in self.nodes:
            node.scheduler.cancel_query(query_id, now)

        job = self._job_of.pop(query_id)
        self._job_left[job.job_id] -= 1
        self._impaired_jobs.add(job.job_id)
        if job.is_ordered:
            # Later queries never arrive; de-gate them so partner
            # groups elsewhere are not held forever.
            for fq in job.queries[query.seq + 1 :]:
                for node in self.nodes:
                    node.scheduler.cancel_query(fq.query_id, now)
                self._job_left[job.job_id] -= 1
                self._aborted_unarrived += 1
            if query.seq + 1 < job.n_queries:
                self._aborted_jobs += 1

    def _run_boundary(self, now: float) -> None:
        elapsed = now - self._run_start
        obs = RunObservation(
            run_index=len(self._runs),
            mean_response_time=float(np.mean(self._run_responses)),
            throughput=len(self._run_responses) / elapsed if elapsed > 0 else 0.0,
        )
        self._runs.append(obs)
        self._run_start = now
        self._run_responses.clear()
        for node in self.nodes:
            node.scheduler.on_run_boundary(obs)
            node.cache.run_boundary()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _start_batches(self) -> None:
        for idx, node in enumerate(self.nodes):
            if node.busy or not node.up:
                continue
            batch = node.scheduler.next_batch(self.clock)
            if batch is None or batch.n_atoms == 0:
                continue
            outcome = node.executor.execute(batch, self.clock)
            node.busy = True
            node.inflight = batch
            self._push(
                self.clock + outcome.duration,
                EventKind.BATCH_DONE,
                (idx, node.epoch, batch, outcome.failed),
            )
            # Work resumed after an idle stretch: make sure the
            # overload control loop is ticking again.
            self._arm_tick(self.clock + self.config.overload.control_interval)

    def _any_pending(self) -> bool:
        return any(n.scheduler.has_pending() for n in self.nodes) or bool(self._remaining)

    def _diagnostics(self) -> dict:
        return {
            "clock": self.clock,
            "event_index": self.event_index,
            "rng_digest": self.injector.rng_digest() if self.injector is not None else None,
            "pending_queries": sorted(self._remaining),
            "queue_depths": [n.scheduler.queue_depth() for n in self.nodes],
            "busy_flags": [n.busy for n in self.nodes],
        }

    def run(self) -> RunResult:
        """Replay the whole trace; returns the accumulated results.

        Safe to call on a freshly constructed simulator or on one
        rebuilt by :meth:`restore` — snapshots are taken only at points
        where resuming the loop from the top is equivalent to the
        original continuation.
        """
        if self._checkpointer is not None:
            self._checkpointer.start(self)
        try:
            while True:
                # Drain every event at the current instant before making
                # scheduling decisions, so same-time arrivals can batch.
                while self._heap and self._heap[0].time <= self.clock:
                    self._dispatch(heapq.heappop(self._heap))
                self._start_batches()
                if self._heap:
                    ev = heapq.heappop(self._heap)
                    self.clock = ev.time
                    if self.clock > self.config.max_sim_time:
                        raise SimTimeExceededError(
                            f"virtual clock exceeded max_sim_time={self.config.max_sim_time}",
                            **self._diagnostics(),
                        )
                    self._dispatch(ev)
                    continue
                if self._any_pending():
                    released = False
                    for node in self.nodes:
                        if node.up:
                            released |= node.scheduler.force_release(self.clock)
                    if not released:
                        raise LivelockError(
                            "livelock: pending queries but no schedulable work",
                            **self._diagnostics(),
                        )
                    self.forced_releases += 1
                    continue
                break
            return self._result()
        finally:
            if self._checkpointer is not None:
                self._checkpointer.flush()

    def run_window(self, horizon: float) -> None:
        """Process every pending event strictly before ``horizon``.

        The conservative superstep primitive of the sharded control
        plane (:mod:`repro.shard`): because cross-shard messages travel
        with a positive virtual latency, every event in ``[clock,
        horizon)`` can be processed without hearing from peer shards —
        anything they send during the same window delivers at or after
        ``horizon``.  The loop body mirrors :meth:`run` exactly (drain
        same-time events, start batches, advance), minus global
        concerns that only the control plane can decide: livelock
        detection and forced releases need cluster-wide knowledge, so
        an idle shard simply returns.
        """
        while True:
            while self._heap and self._heap[0].time <= self.clock:
                self._dispatch(heapq.heappop(self._heap))
            self._start_batches()
            if not self._heap or self._heap[0].time >= horizon:
                return
            ev = heapq.heappop(self._heap)
            self.clock = ev.time
            if self.clock > self.config.max_sim_time:
                raise SimTimeExceededError(
                    f"virtual clock exceeded max_sim_time={self.config.max_sim_time}",
                    **self._diagnostics(),
                )
            self._dispatch(ev)

    def next_event_time(self) -> Optional[float]:
        """Earliest pending local event time (None when idle) — the
        control plane's input for picking the next superstep window."""
        return self._heap[0].time if self._heap else None

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    @classmethod
    def restore(cls, directory: str | Path) -> "Simulator":
        """Rebuild a simulator from the latest snapshot in ``directory``.

        Loads the newest snapshot (format version + checksums verified
        by the codec), reattaches the sanitizer, disarms any still-armed
        coordinator crash so the resumed run does not immediately die
        again, and re-runs the workload-queue and gating-graph
        consistency audits before returning.  The returned simulator's
        :meth:`run` first *replays* the write-ahead log — every
        re-dispatched event is verified against its pre-crash WAL record
        — then continues past the crash point.  Determinism makes the
        final :class:`RunResult` bit-identical to an uninterrupted run.

        Raises :class:`~repro.errors.RecoveryError` when no snapshot
        exists or any artifact fails validation.
        """
        from repro.recovery.checkpoint import CheckpointManager, verify_restored_state

        _meta, state, manager = CheckpointManager.load_latest(directory)
        sim = object.__new__(cls)
        sim.__dict__.update(state)
        sim._checkpointer = manager
        if sim.sanitizer is not None:
            sim.sanitizer.attach(sim)
        if sim.injector is not None:
            sim.injector.disarm_coordinator_crash()
        verify_restored_state(sim)
        return sim

    # ------------------------------------------------------------------
    def _result(self) -> RunResult:
        responses = np.asarray(self._response_times, dtype=np.float64)
        arr_min = min((j.submit_time for j in self.trace.jobs), default=0.0)
        # First submit to last completion: trailing idle work (e.g. a
        # final speculative prefetch batch) must not inflate makespan.
        makespan = self._last_completion - arr_min if self._response_times else 0.0
        cache: dict = {}
        disk: dict = {}
        execs: dict = {}
        gating_ns = 0
        sched_forced = 0
        alpha_histories: list[list[float]] = []
        for node in self.nodes:
            for key, val in node.cache.stats.snapshot().items():
                if key != "hit_ratio":
                    cache[key] = cache.get(key, 0) + val
            for key, val in node.disk.stats.snapshot().items():
                disk[key] = disk.get(key, 0) + val
            for key, val in node.executor.stats.snapshot().items():
                execs[key] = execs.get(key, 0) + val
            gating_ns += getattr(node.scheduler, "gating_overhead_ns", 0)
            sched_forced += getattr(node.scheduler, "forced_releases", 0)
            history = getattr(node.scheduler, "alpha_history", None)
            if history:
                alpha_histories.append(list(history))
        accesses = cache.get("hits", 0) + cache.get("misses", 0)
        cache["hit_ratio"] = cache.get("hits", 0) / accesses if accesses else 0.0
        faults = self.injector.snapshot() if self.injector is not None else {}
        faults.update(
            node_downs=self._node_downs,
            requeued_subqueries=self._requeues,
            deferred_subqueries=self._deferred,
            data_loss_cancels=self._data_loss_cancels,
            aborted_unarrived_queries=self._aborted_unarrived,
        )
        overload = self.overload.snapshot(self.clock) if self.overload is not None else {}
        return RunResult(
            scheduler_name=self.nodes[0].scheduler.name,
            n_queries=len(responses),
            n_jobs=len(self._job_durations),
            makespan=makespan,
            response_times=responses,
            job_durations=dict(self._job_durations),
            runs=list(self._runs),
            alpha_history=alpha_histories[0] if alpha_histories else [],
            alpha_histories=alpha_histories,
            cache=cache,
            disk=disk,
            exec=execs,
            forced_releases=self.forced_releases + sched_forced,
            gating_overhead_ns=gating_ns,
            cache_overhead_ns=cache.get("overhead_ns", 0),
            timeouts=self._timeouts,
            retries=self.injector.stats.retries if self.injector is not None else 0,
            failovers=self._failovers,
            aborted_jobs=self._aborted_jobs,
            cancelled_queries=self._cancelled,
            faults=faults,
            rejected_jobs=self.overload.rejected_jobs if self.overload is not None else 0,
            rejected_queries=(
                self.overload.rejected_queries if self.overload is not None else 0
            ),
            shed_queries=self._shed,
            throttled_jobs=self.overload.throttled_jobs if self.overload is not None else 0,
            class_response_times={
                k: list(v) for k, v in sorted(self._class_responses.items())
            },
            overload=overload,
        )
