"""Discrete-event simulator: replays a trace through scheduler(s).

One :class:`Simulator` owns the virtual clock, the event heap, and one
*node* per scheduler instance — a node bundles a scheduler, a buffer
cache, a disk and a batch executor, mirroring the Turbulence cluster's
architecture of "data partitioned spatially and stored across different
nodes, each running a separate JAWS instance" (§V-C, Fig. 7).  The
single-node case (the paper's evaluation setup) is ``len(schedulers)
== 1``.

Lifecycle of a query (paper Fig. 1 + §IV-B):

1. its job's ``JOB_SUBMIT`` fires; ordered jobs emit the first query's
   ``QUERY_ARRIVAL``, batched jobs emit all of them;
2. on arrival the pre-processor splits it into per-atom sub-queries
   which are routed to nodes and handed to each node's scheduler;
3. idle nodes pull batches; batch completion decrements the query's
   outstanding sub-query count;
4. at zero the query completes: response time is recorded, and an
   ordered job's next query arrives after user think time.

Runs of ``run_length`` completions trigger the adaptive-α and SLRU
run-boundary hooks.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional, Sequence

import numpy as np

from repro.cache.base import make_policy
from repro.config import CacheConfig, EngineConfig
from repro.core.base import Batch, RunObservation, Scheduler
from repro.core.contention import ContentionSchedulerBase
from repro.engine.events import Event, EventKind
from repro.engine.executor import BatchExecutor
from repro.engine.results import RunResult
from repro.grid.atoms import AtomMapper
from repro.grid.interpolation import InterpolationSpec
from repro.storage.buffer import BufferCache
from repro.storage.disk import DiskModel
from repro.workload.job import Job
from repro.workload.query import Query, preprocess_query
from repro.workload.trace import Trace

__all__ = ["Simulator", "build_policy"]


def build_policy(config: CacheConfig):
    """Instantiate the configured replacement policy with its knobs."""
    if config.policy == "slru":
        return make_policy(
            "slru",
            capacity=config.capacity_atoms,
            protected_fraction=config.protected_fraction,
        )
    if config.policy == "lruk":
        return make_policy("lruk", k=config.lruk_k)
    return make_policy(config.policy)


class _Node:
    """One cluster node: scheduler + cache + disk + executor."""

    def __init__(self, scheduler: Scheduler, spec, config: EngineConfig) -> None:
        self.scheduler = scheduler
        self.cache = BufferCache(config.cache.capacity_atoms, build_policy(config.cache))
        self.disk = DiskModel(config.cost, spec.n_atoms)
        self.executor = BatchExecutor(
            spec,
            config.cost,
            self.cache,
            self.disk,
            InterpolationSpec(order=config.interpolation_order),
        )
        self.busy = False
        if isinstance(scheduler, ContentionSchedulerBase):
            scheduler.bind_cache(self.cache)


class Simulator:
    """Replay ``trace`` through one scheduler per node.

    Parameters
    ----------
    trace:
        The workload.
    schedulers:
        One scheduler instance per node (fresh — schedulers are
        stateful and single-use).
    config:
        Engine configuration.
    node_of:
        Maps a packed atom id to its owning node index; defaults to a
        single node.  Must be consistent with ``len(schedulers)``.
    """

    def __init__(
        self,
        trace: Trace,
        schedulers: Sequence[Scheduler],
        config: Optional[EngineConfig] = None,
        node_of: Optional[Callable[[int], int]] = None,
    ) -> None:
        if not schedulers:
            raise ValueError("need at least one scheduler")
        self.trace = trace
        self.config = config or EngineConfig()
        self.spec = trace.spec
        self.mapper = AtomMapper(self.spec)
        self.nodes = [_Node(s, self.spec, self.config) for s in schedulers]
        self._node_of = node_of or (lambda atom_id: 0)

        self._heap: list[Event] = []
        self._seq = 0
        self.clock = 0.0
        self._last_completion = 0.0

        # Query bookkeeping.
        self._arrival: dict[int, float] = {}
        self._remaining: dict[int, int] = {}
        self._job_of: dict[int, Job] = {}
        self._job_left: dict[int, int] = {}
        self._job_first_arrival: dict[int, float] = {}

        # Results accumulation.
        self._response_times: list[float] = []
        self._job_durations: dict[int, float] = {}
        self._completed = 0
        self._runs: list[RunObservation] = []
        self._run_start = 0.0
        self._run_responses: list[float] = []
        self.forced_releases = 0

        self._job_index = {job.job_id: job for job in trace.jobs}
        for job in trace.jobs:
            self._push(job.submit_time, EventKind.JOB_SUBMIT, job)

    # ------------------------------------------------------------------
    def _push(self, time_: float, kind: EventKind, payload) -> None:
        heapq.heappush(self._heap, Event(time_, kind, self._seq, payload))
        self._seq += 1

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _dispatch(self, ev: Event) -> None:
        if ev.kind is EventKind.JOB_SUBMIT:
            self._on_job_submit(ev.payload, ev.time)
        elif ev.kind is EventKind.QUERY_ARRIVAL:
            self._on_query_arrival(ev.payload, ev.time)
        else:
            self._on_batch_done(*ev.payload, now=ev.time)

    def _on_job_submit(self, job: Job, now: float) -> None:
        self._job_left[job.job_id] = job.n_queries
        for node in self.nodes:
            node.scheduler.on_job_submitted(job, now)
        if job.is_ordered:
            self._push(now, EventKind.QUERY_ARRIVAL, job.queries[0])
        else:
            for q in job.queries:
                self._push(now, EventKind.QUERY_ARRIVAL, q)

    def _on_query_arrival(self, query: Query, now: float) -> None:
        self._arrival[query.query_id] = now
        self._job_first_arrival.setdefault(query.job_id, now)
        self._job_of[query.query_id] = self._job_index[query.job_id]
        subqueries = preprocess_query(query, self.mapper)
        self._remaining[query.query_id] = len(subqueries)
        by_node: dict[int, list] = {}
        for sq in subqueries:
            by_node.setdefault(self._node_of(sq.atom_id), []).append(sq)
        # Every node hears every arrival (possibly with no local
        # sub-queries) so per-node gating state advances even for
        # queries whose data lives elsewhere.
        for node_idx, node in enumerate(self.nodes):
            node.scheduler.on_query_arrival(query, by_node.get(node_idx, []), now)

    def _on_batch_done(self, node_idx: int, batch: Batch, now: float) -> None:
        node = self.nodes[node_idx]
        node.busy = False
        for _, subqueries in batch.atoms:
            for sq in subqueries:
                qid = sq.query.query_id
                self._remaining[qid] -= 1
                if self._remaining[qid] == 0:
                    self._complete_query(sq.query, now)

    def _complete_query(self, query: Query, now: float) -> None:
        del self._remaining[query.query_id]
        self._last_completion = now
        response = now - self._arrival.pop(query.query_id)
        self._response_times.append(response)
        self._run_responses.append(response)
        self._completed += 1
        for node in self.nodes:
            node.scheduler.on_query_complete(query, now)

        job = self._job_of.pop(query.query_id)
        self._job_left[job.job_id] -= 1
        if self._job_left[job.job_id] == 0:
            self._job_durations[job.job_id] = now - self._job_first_arrival[job.job_id]
        elif job.is_ordered and query.seq + 1 < job.n_queries:
            self._push(
                now + job.think_time, EventKind.QUERY_ARRIVAL, job.queries[query.seq + 1]
            )

        if self._completed % self.config.run_length == 0:
            self._run_boundary(now)

    def _run_boundary(self, now: float) -> None:
        elapsed = now - self._run_start
        obs = RunObservation(
            run_index=len(self._runs),
            mean_response_time=float(np.mean(self._run_responses)),
            throughput=len(self._run_responses) / elapsed if elapsed > 0 else 0.0,
        )
        self._runs.append(obs)
        self._run_start = now
        self._run_responses.clear()
        for node in self.nodes:
            node.scheduler.on_run_boundary(obs)
            node.cache.run_boundary()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _start_batches(self) -> None:
        for idx, node in enumerate(self.nodes):
            if node.busy:
                continue
            batch = node.scheduler.next_batch(self.clock)
            if batch is None or batch.n_atoms == 0:
                continue
            duration = node.executor.execute(batch, self.clock)
            node.busy = True
            self._push(self.clock + duration, EventKind.BATCH_DONE, (idx, batch))

    def _any_pending(self) -> bool:
        return any(n.scheduler.has_pending() for n in self.nodes) or bool(self._remaining)

    def run(self) -> RunResult:
        """Replay the whole trace; returns the accumulated results."""
        while True:
            # Drain every event at the current instant before making
            # scheduling decisions, so same-time arrivals can batch.
            while self._heap and self._heap[0].time <= self.clock:
                self._dispatch(heapq.heappop(self._heap))
            self._start_batches()
            if self._heap:
                ev = heapq.heappop(self._heap)
                self.clock = ev.time
                if self.clock > self.config.max_sim_time:
                    raise RuntimeError(
                        f"virtual clock exceeded max_sim_time={self.config.max_sim_time}"
                    )
                self._dispatch(ev)
                continue
            if self._any_pending():
                released = False
                for node in self.nodes:
                    released |= node.scheduler.force_release(self.clock)
                if not released:
                    raise RuntimeError(
                        "livelock: pending queries but no schedulable work"
                    )
                self.forced_releases += 1
                continue
            break
        return self._result()

    # ------------------------------------------------------------------
    def _result(self) -> RunResult:
        responses = np.asarray(self._response_times, dtype=np.float64)
        arr_min = min((j.submit_time for j in self.trace.jobs), default=0.0)
        # First submit to last completion: trailing idle work (e.g. a
        # final speculative prefetch batch) must not inflate makespan.
        makespan = self._last_completion - arr_min if self._response_times else 0.0
        cache = {"hits": 0, "misses": 0, "evictions": 0, "overhead_ns": 0}
        disk = {"reads": 0, "sequential_reads": 0, "seconds": 0.0}
        execs = {
            "batches": 0,
            "atoms_executed": 0,
            "neighbor_reads": 0,
            "positions": 0,
            "busy_seconds": 0.0,
        }
        gating_ns = 0
        sched_forced = 0
        alpha_history: list[float] = []
        for node in self.nodes:
            for key, val in node.cache.stats.snapshot().items():
                if key != "hit_ratio":
                    cache[key] += val
            for key, val in node.disk.stats.snapshot().items():
                disk[key] += val
            st = node.executor.stats
            execs["batches"] += st.batches
            execs["atoms_executed"] += st.atoms_executed
            execs["neighbor_reads"] += st.neighbor_reads
            execs["positions"] += st.positions
            execs["busy_seconds"] += st.busy_seconds
            gating_ns += getattr(node.scheduler, "gating_overhead_ns", 0)
            sched_forced += getattr(node.scheduler, "forced_releases", 0)
            history = getattr(node.scheduler, "alpha_history", None)
            if history:
                alpha_history = history
        accesses = cache["hits"] + cache["misses"]
        cache["hit_ratio"] = cache["hits"] / accesses if accesses else 0.0
        return RunResult(
            scheduler_name=self.nodes[0].scheduler.name,
            n_queries=len(responses),
            n_jobs=len(self._job_durations),
            makespan=makespan,
            response_times=responses,
            job_durations=dict(self._job_durations),
            runs=list(self._runs),
            alpha_history=alpha_history,
            cache=cache,
            disk=disk,
            exec=execs,
            forced_releases=self.forced_releases + sched_forced,
            gating_overhead_ns=gating_ns,
            cache_overhead_ns=cache["overhead_ns"],
        )
