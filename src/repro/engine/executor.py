"""Batch execution cost model.

Evaluating a batch (Fig. 6) means, for each atom in the given (Morton)
order: reference it through the buffer cache, paying the disk cost
:math:`T_b` on a miss; reference any neighbor atoms that the
interpolation stencils of the atom's sub-queries require (cache-
mediated too — this is where co-scheduling ``k`` nearby atoms pays
off, since one sub-query's neighbor is another's primary); and charge
:math:`T_m` per evaluated position.  The returned duration advances
the virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CostModel
from repro.core.base import Batch
from repro.grid.dataset import DatasetSpec
from repro.grid.interpolation import InterpolationSpec
from repro.storage.buffer import BufferCache
from repro.storage.disk import DiskModel

__all__ = ["ExecStats", "BatchExecutor"]


@dataclass
class ExecStats:
    """Counters accumulated over a simulation by one executor."""

    batches: int = 0
    atoms_executed: int = 0
    neighbor_reads: int = 0
    positions: int = 0
    busy_seconds: float = 0.0


class BatchExecutor:
    """Executes batches against one node's cache + disk."""

    def __init__(
        self,
        spec: DatasetSpec,
        cost: CostModel,
        cache: BufferCache,
        disk: DiskModel,
        interp: InterpolationSpec,
    ) -> None:
        self.spec = spec
        self.cost = cost
        self.cache = cache
        self.disk = disk
        self.interp = interp
        self.stats = ExecStats()

    def execute(self, batch: Batch, now: float) -> float:
        """Run a batch starting at ``now``; returns its duration in
        simulated seconds."""
        duration = self.cost.t_overhead
        for atom_id, subqueries in batch.atoms:
            if not self.cache.access(atom_id, now):
                duration += self.disk.read_atom(atom_id)
            self.stats.atoms_executed += 1
            for sq in subqueries:
                for required in sq.neighbor_atoms(self.spec, self.interp):
                    self.stats.neighbor_reads += 1
                    if not self.cache.access(required, now):
                        duration += self.disk.read_atom(required)
                duration += self.cost.t_m * sq.n_positions
                self.stats.positions += sq.n_positions
        self.stats.batches += 1
        self.stats.busy_seconds += duration
        return duration
