"""Batch execution cost model.

Evaluating a batch (Fig. 6) means, for each atom in the given (Morton)
order: reference it through the buffer cache, paying the disk cost
:math:`T_b` on a miss; reference any neighbor atoms that the
interpolation stencils of the atom's sub-queries require (cache-
mediated too — this is where co-scheduling ``k`` nearby atoms pays
off, since one sub-query's neighbor is another's primary); and charge
:math:`T_m` per evaluated position.  The returned duration advances
the virtual clock.

With a :class:`~repro.engine.faults.FaultInjector` attached, primary
atom reads can fail: transient errors are retried with exponential
backoff (delays charged into the batch duration, in virtual time) up
to the configured retry limits; reads of permanently lost atoms — and
reads whose retries are exhausted — fail the atom, whose sub-queries
are returned to the engine for re-queueing or replica failover.
Neighbor (stencil halo) reads are not fault-injected: the production
cluster replicates boundary data precisely so interpolation never
blocks (§III-A), so halo copies are treated as always readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.config import CostModel
from repro.core.base import Batch
from repro.engine.faults import FaultInjector, FaultKind
from repro.grid.dataset import DatasetSpec
from repro.grid.interpolation import InterpolationSpec
from repro.storage.buffer import BufferCache
from repro.storage.disk import DiskModel
from repro.workload.query import SubQuery

if TYPE_CHECKING:  # pragma: no cover - avoids an import cycle at runtime
    from repro.analysis.sanitizer import SimulationSanitizer

__all__ = ["ExecStats", "BatchOutcome", "BatchExecutor"]


@dataclass
class ExecStats:
    """Counters accumulated over a simulation by one executor."""

    batches: int = 0
    atoms_executed: int = 0
    neighbor_reads: int = 0
    positions: int = 0
    busy_seconds: float = 0.0
    failed_atoms: int = 0

    def snapshot(self) -> dict:
        return {
            "batches": self.batches,
            "atoms_executed": self.atoms_executed,
            "neighbor_reads": self.neighbor_reads,
            "positions": self.positions,
            "busy_seconds": self.busy_seconds,
            "failed_atoms": self.failed_atoms,
        }


@dataclass
class BatchOutcome:
    """Result of executing one batch.

    ``duration`` advances the virtual clock; ``failed`` holds the
    sub-queries of atoms whose disk reads could not be completed (the
    engine re-queues or fails them over to replicas).
    """

    duration: float
    failed: list[SubQuery] = field(default_factory=list)


class BatchExecutor:
    """Executes batches against one node's cache + disk."""

    def __init__(
        self,
        spec: DatasetSpec,
        cost: CostModel,
        cache: BufferCache,
        disk: DiskModel,
        interp: InterpolationSpec,
        injector: Optional[FaultInjector] = None,
        node_idx: int = 0,
        sanitizer: Optional["SimulationSanitizer"] = None,
    ) -> None:
        self.spec = spec
        self.cost = cost
        self.cache = cache
        self.disk = disk
        self.interp = interp
        self.injector = injector
        self.node_idx = node_idx
        self.sanitizer = sanitizer
        self.stats = ExecStats()

    # ------------------------------------------------------------------
    def _charge_read(self, atom_id: int) -> tuple[float, bool]:
        """One fault-aware primary read: ``(seconds consumed, ok)``.

        Transient faults charge the failed attempt plus a backoff delay
        and retry; a lost atom or exhausted retries abandon the read.
        """
        inj = self.injector
        if inj is None:
            return self.disk.read_atom(atom_id), True
        seconds = 0.0
        attempt = 0
        while True:
            kind = inj.draw_outcome(self.node_idx, atom_id)
            if kind is FaultKind.LOST:
                seconds += self.disk.failed_read(atom_id)
                return seconds, False
            if kind is FaultKind.OK:
                seconds += self.disk.read_atom(atom_id, cost_factor=inj.slow_factor(self.node_idx))
                inj.on_read_ok(self.node_idx)
                return seconds, True
            # Transient fault: pay for the failed attempt, maybe retry.
            seconds += self.disk.failed_read(atom_id)
            inj.on_transient(self.node_idx, self.disk)
            attempt += 1
            if not inj.grant_retry(self.node_idx, attempt):
                return seconds, False
            seconds += inj.backoff(attempt)

    def execute(self, batch: Batch, now: float) -> BatchOutcome:
        """Run a batch starting at ``now``; returns its duration in
        simulated seconds plus any sub-queries that failed."""
        duration = self.cost.t_overhead
        failed: list[SubQuery] = []
        for atom_id, subqueries in batch.atoms:
            if not self.cache.access(atom_id, now):
                seconds, ok = self._charge_read(atom_id)
                duration += seconds
                if not ok:
                    # The atom never materialized: undo the cache insert
                    # and hand its sub-queries back to the engine.
                    self.cache.drop([atom_id])
                    self.stats.failed_atoms += 1
                    failed.extend(subqueries)
                    continue
            self.stats.atoms_executed += 1
            for sq in subqueries:
                for required in sq.neighbor_atoms(self.spec, self.interp):
                    self.stats.neighbor_reads += 1
                    if not self.cache.access(required, now):
                        duration += self.disk.read_atom(required)
                duration += self.cost.t_m * sq.n_positions
                self.stats.positions += sq.n_positions
        self.stats.batches += 1
        self.stats.busy_seconds += duration
        outcome = BatchOutcome(duration, failed)
        if self.sanitizer is not None:
            self.sanitizer.check_batch(batch, outcome)
        return outcome
