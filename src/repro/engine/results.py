"""Simulation results: the numbers every figure and table is built from."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.core.base import RunObservation

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """Outcome of replaying one trace under one scheduler.

    Attributes
    ----------
    scheduler_name:
        Human-readable scheduler identifier.
    n_queries / n_jobs:
        Completed counts.
    makespan:
        First arrival to last completion, engine seconds.
    response_times:
        Per-query response time (arrival → completion), engine seconds,
        in completion order.
    job_durations:
        job id → first-query arrival to last-query completion.
    runs:
        Per-run observations (adaptive-α inputs).
    alpha_history:
        α after each run for adaptive schedulers, else empty.
    cache / disk / exec:
        Snapshot dicts from the storage stack (summed over nodes).
    forced_releases:
        Gated queries released by the liveness valve (should be 0).
    gating_overhead_ns / cache_overhead_ns:
        Measured wall-clock bookkeeping cost (Table I's overhead).
    alpha_histories:
        Per-node α traces for adaptive schedulers (``alpha_history`` is
        the first node's, preserving the single-node shape).
    timeouts / retries / failovers / aborted_jobs / cancelled_queries:
        Degraded-mode counters — all zero when fault injection is off.
    faults:
        Raw fault-injector snapshot plus engine-side fault accounting
        (empty dict when fault injection is off).
    rejected_jobs / rejected_queries:
        Jobs (and the queries they carried) refused at admission by
        overload protection — zero when ``EngineConfig.overload`` is
        off.
    shed_queries:
        Admitted queries dropped by load shedding (queue bound or
        brownout drain); counted separately from fault cancellations.
    throttled_jobs:
        Rejections attributable to brownout throttling specifically.
    class_response_times:
        client class → response times of its completed queries, in
        completion order (always populated, overload on or off).
    overload:
        Overload-manager snapshot: final mode, virtual time in each
        mode, per-reason rejection and shed counts, and a capped list
        of typed rejection samples (empty dict when overload is off).
    """

    scheduler_name: str
    n_queries: int
    n_jobs: int
    makespan: float
    response_times: np.ndarray
    job_durations: dict[int, float]
    runs: list[RunObservation] = field(default_factory=list)
    alpha_history: list[float] = field(default_factory=list)
    alpha_histories: list[list[float]] = field(default_factory=list)
    cache: dict = field(default_factory=dict)
    disk: dict = field(default_factory=dict)
    exec: dict = field(default_factory=dict)
    forced_releases: int = 0
    gating_overhead_ns: int = 0
    cache_overhead_ns: int = 0
    timeouts: int = 0
    retries: int = 0
    failovers: int = 0
    aborted_jobs: int = 0
    cancelled_queries: int = 0
    faults: dict = field(default_factory=dict)
    rejected_jobs: int = 0
    rejected_queries: int = 0
    shed_queries: int = 0
    throttled_jobs: int = 0
    class_response_times: dict[str, list[float]] = field(default_factory=dict)
    overload: dict = field(default_factory=dict)

    # -- headline numbers ---------------------------------------------------
    @property
    def throughput_qps(self) -> float:
        """Completed queries per engine second (the Fig. 10/11a axis)."""
        return self.n_queries / self.makespan if self.makespan > 0 else 0.0

    @property
    def mean_response_time(self) -> float:
        return float(self.response_times.mean()) if len(self.response_times) else 0.0

    @property
    def median_response_time(self) -> float:
        return float(np.median(self.response_times)) if len(self.response_times) else 0.0

    @property
    def p95_response_time(self) -> float:
        return (
            float(np.percentile(self.response_times, 95)) if len(self.response_times) else 0.0
        )

    @property
    def p99_response_time(self) -> float:
        return (
            float(np.percentile(self.response_times, 99)) if len(self.response_times) else 0.0
        )

    def class_percentiles(self) -> dict[str, dict[str, float]]:
        """Per-client-class latency profile of *completed* queries:
        count, p50, p95, p99 (the overload acceptance metric — rejected
        and shed queries never complete, so they are excluded by
        construction)."""
        out: dict[str, dict[str, float]] = {}
        for cls in sorted(self.class_response_times):
            times = self.class_response_times[cls]
            if not times:
                continue
            arr = np.asarray(times, dtype=np.float64)
            out[cls] = {
                "n": float(len(arr)),
                "p50": float(np.percentile(arr, 50)),
                "p95": float(np.percentile(arr, 95)),
                "p99": float(np.percentile(arr, 99)),
            }
        return out

    @property
    def cache_hit_ratio(self) -> float:
        return float(self.cache.get("hit_ratio", 0.0))

    @property
    def seconds_per_query(self) -> float:
        """Engine seconds of service per completed query (Table I's
        Seconds/Qry column)."""
        busy = float(self.exec.get("busy_seconds", 0.0))
        return busy / self.n_queries if self.n_queries else 0.0

    @property
    def availability(self) -> float:
        """Fraction of arrived queries that completed (1.0 = no
        cancellations or sheds; the acceptance bar for degraded-mode
        runs).  Rejected jobs never arrive, so they do not count
        against availability — they count against
        :attr:`admission_rate` instead."""
        arrived = self.n_queries + self.cancelled_queries + self.shed_queries
        return self.n_queries / arrived if arrived else 1.0

    @property
    def admission_rate(self) -> float:
        """Fraction of offered queries admitted past the front door."""
        offered = self.n_queries + self.cancelled_queries + self.shed_queries
        offered += self.rejected_queries
        return (offered - self.rejected_queries) / offered if offered else 1.0

    @property
    def cache_overhead_ms_per_query(self) -> float:
        """Measured cache-policy bookkeeping per query, milliseconds."""
        return self.cache_overhead_ns / 1e6 / self.n_queries if self.n_queries else 0.0

    def summary(self) -> dict[str, float]:
        """Flat dict for experiment tables."""
        return {
            "scheduler": self.scheduler_name,
            "queries": self.n_queries,
            "throughput_qps": self.throughput_qps,
            "mean_rt": self.mean_response_time,
            "median_rt": self.median_response_time,
            "p95_rt": self.p95_response_time,
            "cache_hit": self.cache_hit_ratio,
            "sec_per_qry": self.seconds_per_query,
            "makespan": self.makespan,
        }

    def fault_summary(self) -> dict[str, float]:
        """Flat dict of degraded-mode outcomes (for the CLI fault block)."""
        return {
            "availability": self.availability,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "failovers": self.failovers,
            "aborted_jobs": self.aborted_jobs,
            "cancelled_queries": self.cancelled_queries,
        }

    def overload_summary(self) -> dict[str, float]:
        """Flat dict of overload-protection outcomes (for the CLI
        overload block)."""
        return {
            "admission_rate": self.admission_rate,
            "rejected_jobs": self.rejected_jobs,
            "rejected_queries": self.rejected_queries,
            "shed_queries": self.shed_queries,
            "throttled_jobs": self.throttled_jobs,
        }

    # -- lossless serialization ---------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict carrying every field losslessly.

        ``response_times`` becomes a plain list, ``job_durations`` keys
        become strings (JSON objects have string keys), and each
        :class:`~repro.core.base.RunObservation` becomes a dict.
        :meth:`from_dict` inverts all three, so a round trip reproduces
        the original, including the fault/recovery counters.
        """
        return {
            "scheduler_name": self.scheduler_name,
            "n_queries": self.n_queries,
            "n_jobs": self.n_jobs,
            "makespan": self.makespan,
            "response_times": [float(x) for x in self.response_times],
            "job_durations": {str(k): v for k, v in self.job_durations.items()},
            "runs": [
                {
                    "run_index": obs.run_index,
                    "mean_response_time": obs.mean_response_time,
                    "throughput": obs.throughput,
                }
                for obs in self.runs
            ],
            "alpha_history": list(self.alpha_history),
            "alpha_histories": [list(h) for h in self.alpha_histories],
            "cache": dict(self.cache),
            "disk": dict(self.disk),
            "exec": dict(self.exec),
            "forced_releases": self.forced_releases,
            "gating_overhead_ns": self.gating_overhead_ns,
            "cache_overhead_ns": self.cache_overhead_ns,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "failovers": self.failovers,
            "aborted_jobs": self.aborted_jobs,
            "cancelled_queries": self.cancelled_queries,
            "faults": dict(self.faults),
            "rejected_jobs": self.rejected_jobs,
            "rejected_queries": self.rejected_queries,
            "shed_queries": self.shed_queries,
            "throttled_jobs": self.throttled_jobs,
            "class_response_times": {
                cls: [float(x) for x in times]
                for cls, times in self.class_response_times.items()
            },
            "overload": dict(self.overload),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Inverse of :meth:`to_dict` (accepts freshly ``json.loads``-ed
        mappings)."""
        return cls(
            scheduler_name=str(data["scheduler_name"]),
            n_queries=int(data["n_queries"]),
            n_jobs=int(data["n_jobs"]),
            makespan=float(data["makespan"]),
            response_times=np.asarray(data["response_times"], dtype=np.float64),
            job_durations={int(k): float(v) for k, v in data["job_durations"].items()},
            runs=[
                RunObservation(
                    run_index=int(obs["run_index"]),
                    mean_response_time=float(obs["mean_response_time"]),
                    throughput=float(obs["throughput"]),
                )
                for obs in data["runs"]
            ],
            alpha_history=[float(a) for a in data["alpha_history"]],
            alpha_histories=[[float(a) for a in h] for h in data["alpha_histories"]],
            cache=dict(data["cache"]),
            disk=dict(data["disk"]),
            exec=dict(data["exec"]),
            forced_releases=int(data["forced_releases"]),
            gating_overhead_ns=int(data["gating_overhead_ns"]),
            cache_overhead_ns=int(data["cache_overhead_ns"]),
            timeouts=int(data["timeouts"]),
            retries=int(data["retries"]),
            failovers=int(data["failovers"]),
            aborted_jobs=int(data["aborted_jobs"]),
            cancelled_queries=int(data["cancelled_queries"]),
            faults=dict(data["faults"]),
            rejected_jobs=int(data.get("rejected_jobs", 0)),
            rejected_queries=int(data.get("rejected_queries", 0)),
            shed_queries=int(data.get("shed_queries", 0)),
            throttled_jobs=int(data.get("throttled_jobs", 0)),
            class_response_times={
                str(cls): [float(x) for x in times]
                for cls, times in data.get("class_response_times", {}).items()
            },
            overload=dict(data.get("overload", {})),
        )
