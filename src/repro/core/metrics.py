"""Scheduling metrics: workload throughput (Eq. 1) and its aged
variant (Eq. 2).

Equation 1 — workload throughput of atom ``A_i``::

    U_t(i) = W_i / (T_b * phi(i) + T_m * W_i)

where ``W_i`` is the total number of queued positions against the atom,
``T_b``/``T_m`` are the empirical I/O and per-position compute costs,
and ``phi(i)`` is 0 when the atom is cached (no I/O needed) and 1
otherwise.  ``U_t`` is the rate at which executing the atom consumes
its workload queue; greedy descending-``U_t`` order maximizes query
throughput.

Equation 2 — aged workload throughput::

    U_e(i) = U_t(i) * (1 - alpha) + E(i) * alpha

where ``E(i)`` is the queueing age of the atom's oldest sub-query and
``alpha`` in [0, 1] biases the scheduler toward arrival order
(starvation resistance).  See ``MetricConfig.normalize`` for the
unit-mixing caveat and the normalized default.
"""

from __future__ import annotations

import numpy as np

from repro.config import CostModel, MetricConfig

__all__ = ["workload_throughput", "aged_metric"]


def workload_throughput(
    counts: np.ndarray, cached: np.ndarray, cost: CostModel
) -> np.ndarray:
    """Vectorized Eq. 1 over a set of atoms.

    Parameters
    ----------
    counts:
        Queued positions per atom (``W_i``); zeros yield ``U_t = 0``.
    cached:
        Boolean residency per atom (``phi(i) = ~cached``).
    cost:
        Supplies ``T_b`` and ``T_m``.
    """
    counts = np.asarray(counts, dtype=np.float64)
    phi = (~np.asarray(cached, dtype=bool)).astype(np.float64)
    denom = cost.t_b * phi + cost.t_m * counts
    # A cached atom with pending work has denom = T_m * W > 0; an atom
    # with no work has U_t = 0 regardless of the denominator.
    out = np.zeros_like(counts)
    nz = denom > 0
    out[nz] = counts[nz] / denom[nz]
    return out


def aged_metric(
    u_t: np.ndarray,
    oldest_arrival: np.ndarray,
    now: float,
    alpha: float,
    config: MetricConfig,
) -> np.ndarray:
    """Vectorized Eq. 2 over a set of atoms.

    With ``config.normalize`` (default) both terms are min–max scaled
    over the candidate set, so ``alpha = 0`` reproduces contention
    order, ``alpha = 1`` arrival order, and intermediate values
    interpolate meaningfully.  With ``normalize=False`` the paper's raw
    formula is used with ages in ``config.age_units``.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    u_t = np.asarray(u_t, dtype=np.float64)
    ages = now - np.asarray(oldest_arrival, dtype=np.float64)
    if u_t.size == 0:
        return u_t.copy()
    if config.normalize:
        u_term = _minmax(u_t)
        a_term = _minmax(ages)
    else:
        u_term = u_t
        a_term = ages / config.age_units
    return u_term * (1.0 - alpha) + a_term * alpha


def _minmax(x: np.ndarray) -> np.ndarray:
    lo = x.min()
    span = x.max() - lo
    if span <= 0:
        return np.zeros_like(x)
    return (x - lo) / span
