"""Scheduler interface shared by NoShare, LifeRaft and JAWS.

The discrete-event engine (:mod:`repro.engine.simulator`) drives a
scheduler through this interface:

1. ``on_job_submitted`` when a job's first query (ordered) or all of
   its queries (batched) are about to arrive — JAWS uses this to align
   the new job against active jobs;
2. ``on_query_arrival`` with the pre-processed sub-queries — the
   scheduler decides when they enter the workload queues (JAWS may
   hold a query in READY until its gating group is complete);
3. ``next_batch`` whenever the executor goes idle — returns the next
   set of atoms (with their drained sub-queries) to evaluate in one
   pass, or ``None`` when nothing is queued;
4. ``on_query_complete`` / ``on_run_boundary`` for bookkeeping and
   adaptive control.

Degraded-mode hooks (used only under fault injection): ``evacuate``
pulls every pending sub-query off a crashing node, ``readmit`` hands
re-routed sub-queries to a replica node with their original arrival
times (so workload-queue ages stay honest), and ``cancel_query`` prunes
a timed-out query's sub-queries and releases its gating partners.  The
defaults are safe no-ops for schedulers that never run under faults.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.workload.job import Job
from repro.workload.query import Query, SubQuery

__all__ = ["Batch", "RunObservation", "Scheduler"]


@dataclass
class Batch:
    """One scheduling decision: atoms evaluated in a single pass.

    ``atoms`` preserves the order the executor must read them in
    (Morton order within a time step, per §III-B/§V).  Each atom
    carries every sub-query drained from its workload queue.
    """

    atoms: list[tuple[int, list[SubQuery]]] = field(default_factory=list)

    @property
    def n_atoms(self) -> int:
        return len(self.atoms)

    @property
    def n_positions(self) -> int:
        return sum(sq.n_positions for _, subs in self.atoms for sq in subs)

    def atom_ids(self) -> list[int]:
        return [a for a, _ in self.atoms]


@dataclass(frozen=True)
class RunObservation:
    """Performance of one run of ``r`` consecutive completed queries,
    handed to the scheduler at each run boundary (§V-A)."""

    run_index: int
    mean_response_time: float
    throughput: float


class Scheduler(ABC):
    """Abstract scheduler; see the module docstring for the protocol."""

    #: human-readable name used in experiment tables
    name: str = "scheduler"

    def on_job_submitted(self, job: Job, now: float) -> None:
        """A job is entering the system (before its queries arrive)."""

    @abstractmethod
    def on_query_arrival(self, query: Query, subqueries: list[SubQuery], now: float) -> None:
        """A query's precedence constraints are satisfied; its
        pre-processed sub-queries are handed over."""

    @abstractmethod
    def next_batch(self, now: float) -> Optional[Batch]:
        """Return the next batch to execute, or ``None`` if no
        sub-queries are currently queued."""

    @abstractmethod
    def has_pending(self) -> bool:
        """True while any admitted query has undrained sub-queries or
        is held back by gating."""

    def on_query_complete(self, query: Query, now: float) -> None:
        """All of a query's sub-queries finished executing."""

    def on_run_boundary(self, obs: RunObservation) -> None:
        """A run of ``r`` queries completed (adaptive-α hook)."""

    def queue_depth(self) -> int:
        """Pending sub-queries on this node (queued + internally held);
        diagnostics for error reports and fault bookkeeping."""
        return 0

    def evacuate(self, now: float) -> list[tuple[float, "SubQuery"]]:
        """Remove and return all pending work as ``(arrival_time,
        sub-query)`` pairs (node failover).  Default: nothing to move."""
        return []

    def readmit(self, entries: list[tuple[float, "SubQuery"]], now: float) -> None:
        """Accept sub-queries evacuated or failed over from another
        node.  ``entries`` are ``(original_arrival, sub-query)`` pairs;
        implementations must preserve those ages where they track age.

        The default funnels them through ``on_query_arrival`` grouped
        by query, using each group's oldest arrival as its time.
        """
        by_query: dict[int, tuple[Query, float, list[SubQuery]]] = {}
        for arrival, sq in entries:
            qid = sq.query.query_id
            if qid in by_query:
                query, oldest, subs = by_query[qid]
                by_query[qid] = (query, min(oldest, arrival), subs + [sq])
            else:
                by_query[qid] = (sq.query, arrival, [sq])
        for query, oldest, subs in by_query.values():
            self.on_query_arrival(query, subs, oldest)

    def cancel_query(self, query_id: int, now: float) -> int:
        """Drop every pending sub-query of a cancelled (timed-out or
        data-lost) query and release any gating state referencing it.
        Returns the number of sub-queries removed."""
        return 0

    def iter_pending(self) -> Iterator["SubQuery"]:
        """Yield every sub-query this scheduler currently holds (queued
        *and* internally held, e.g. by gating).  The simulation
        sanitizer uses this for its conservation sweep; implementations
        must not mutate state while yielding."""
        return iter(())

    def force_release(self, now: float) -> bool:
        """Liveness valve: release any internally held queries.

        Returns True if anything was released.  The engine calls this
        only if the executor is idle, no batch is available, no future
        event is pending, and incomplete queries remain — which a
        correct gating graph never triggers (asserted in tests).
        """
        return False

    def cache_utility_fn(self) -> Optional[Callable[[int], tuple]]:
        """Utility ranking exported to URC (lower = evict sooner);
        ``None`` if this scheduler does not coordinate caching."""
        return None

    @property
    def current_alpha(self) -> Optional[float]:
        """Current age bias, if the scheduler uses one (diagnostics)."""
        return None
