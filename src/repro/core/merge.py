"""Greedy merge of pairwise alignment solutions (paper §IV-B).

The dynamic-programming phase yields gating-edge candidates for every
*pair* of jobs; this module merges them into one precedence graph.  The
paper's greedy order: start from the pair with the most edges, then
repeatedly attach the job whose pairwise solution with an
already-merged job has the most edges, admitting each edge through
``AdmitGatingEdge`` (implemented by
:meth:`repro.core.gating.PrecedenceGraph.admit_edge`).  With ``n`` jobs
of ``m`` queries the merge is :math:`O(n^3 m^2)` worst case but cheap
in practice because the graph is sparse and completed queries are
pruned.

Two entry points:

* :func:`build_gating_offline` — merge a complete set of jobs at once
  (used by tests and the scheduling-overhead bench);
* :class:`GatingManager` — the engine-facing incremental form: "when a
  new job arrives, it can be added to the existing graph incrementally
  by computing new pairwise dynamic programs and then merging their
  solutions".
"""

from __future__ import annotations

from typing import Sequence

from repro.core.alignment import align_jobs
from repro.core.gating import PrecedenceGraph
from repro.core.states import QueryState

__all__ = ["admit_alignment", "build_gating_offline", "GatingManager"]


def admit_alignment(
    graph: PrecedenceGraph,
    job_a: int,
    job_b: int,
    pairs: Sequence[tuple[int, int]],
) -> int:
    """Admit a pairwise alignment's edges in precedence order.

    ``pairs`` holds (index into job_a's live queries, index into
    job_b's live queries).  Returns the number of edges admitted.
    """
    qa_ids = graph.queries_of(job_a)
    qb_ids = graph.queries_of(job_b)
    admitted = 0
    for ia, ib in pairs:
        if ia >= len(qa_ids) or ib >= len(qb_ids):
            continue
        if graph.admit_edge(qa_ids[ia], qb_ids[ib]):
            admitted += 1
    return admitted


def _pairwise_alignments(
    graph: PrecedenceGraph, job_ids: Sequence[int]
) -> dict[tuple[int, int], list[tuple[int, int]]]:
    atom_seqs = {
        j: [graph.atoms_of(q) for q in graph.queries_of(j)] for j in job_ids
    }
    out: dict[tuple[int, int], list[tuple[int, int]]] = {}
    ids = list(job_ids)
    for i in range(len(ids)):
        for k in range(i + 1, len(ids)):
            pairs = align_jobs(atom_seqs[ids[i]], atom_seqs[ids[k]])
            if pairs:
                out[(ids[i], ids[k])] = pairs
    return out


def build_gating_offline(graph: PrecedenceGraph) -> int:
    """Run the full DP + greedy merge over every job in ``graph``.

    Returns the total number of admitted gating edges.
    """
    job_ids = graph.jobs()
    solutions = _pairwise_alignments(graph, job_ids)
    if not solutions:
        return 0
    remaining = dict(solutions)
    merged: set[int] = set()
    total = 0
    while remaining:
        # Prefer pairs touching the merged set; fall back to the global
        # best pair (starts a new merged component).
        touching = {p: e for p, e in remaining.items() if merged & set(p)}
        pool = touching or remaining
        (ja, jb), pairs = max(pool.items(), key=lambda kv: (len(kv[1]), -kv[0][0], -kv[0][1]))
        del remaining[(ja, jb)]
        total += admit_alignment(graph, ja, jb, pairs)
        merged.update((ja, jb))
    return total


class GatingManager:
    """Incremental job-aware gating for the live scheduler.

    Owns a :class:`PrecedenceGraph`; the JAWS scheduler funnels job
    submissions, query arrivals and completions through it and receives
    back the query ids whose gating constraints are now satisfied.
    """

    def __init__(self, min_job_len: int = 2) -> None:
        self.graph = PrecedenceGraph()
        self._min_job_len = min_job_len
        self._tracked: set[int] = set()  # query ids under gating control

    # ------------------------------------------------------------------
    def is_tracked(self, query_id: int) -> bool:
        return query_id in self._tracked

    def add_job(
        self, job_id: int, query_ids: list[int], atom_sets: list[frozenset[int]]
    ) -> int:
        """Register an ordered job and align it against every active job.

        Jobs shorter than ``min_job_len`` are not worth aligning and are
        left untracked (their queries bypass gating).  Returns the
        number of gating edges admitted for this job.
        """
        if len(query_ids) < self._min_job_len:
            return 0
        existing = [j for j in self.graph.jobs() if j != job_id]
        self.graph.add_job(job_id, query_ids, atom_sets)
        self._tracked.update(query_ids)

        new_atoms = [self.graph.atoms_of(q) for q in self.graph.queries_of(job_id)]
        scored: list[tuple[int, int, list[tuple[int, int]]]] = []
        for other in existing:
            other_atoms = [self.graph.atoms_of(q) for q in self.graph.queries_of(other)]
            pairs = align_jobs(new_atoms, other_atoms)
            if pairs:
                scored.append((len(pairs), other, pairs))
        # Greedy: most-sharing partner job first (merge-phase order).
        scored.sort(key=lambda t: (-t[0], t[1]))
        admitted = 0
        for _, other, pairs in scored:
            admitted += admit_alignment(self.graph, job_id, other, pairs)
        return admitted

    # ------------------------------------------------------------------
    def on_arrival(self, query_id: int) -> list[int] | None:
        """A tracked query arrived (precedence satisfied).

        Returns the list of query ids to release to QUEUE now (always
        including ``query_id`` when release happens), or ``None`` if
        the query must be held in READY awaiting gating partners.
        """
        self.graph.set_state(query_id, QueryState.READY)
        ready = self.graph.releasable_group(query_id)
        if ready is None:
            return None
        for qid in ready:
            self.graph.set_state(qid, QueryState.QUEUE)
        return ready

    def on_complete(self, query_id: int) -> None:
        """Prune a completed tracked query."""
        if query_id in self._tracked:
            self._tracked.discard(query_id)
            self.graph.mark_done(query_id)

    def cancel(self, query_id: int) -> list[int]:
        """De-gate a cancelled query (timeout or aborted job).

        Prunes it from the graph exactly like completion, then checks
        whether its former co-scheduling group became releasable — the
        cancelled query may have been the WAIT member partners were
        gated on.  Returns the query ids to release to QUEUE now.
        """
        if query_id not in self._tracked:
            return []
        self._tracked.discard(query_id)
        if query_id not in self.graph:
            return []
        partners = self.graph.partners(query_id)
        self.graph.mark_done(query_id)
        for member in partners:
            if member not in self.graph:
                continue
            # All partners share one group: one check covers them all.
            ready = self.graph.releasable_group(member)
            if ready is None:
                return []
            for qid in ready:
                self.graph.set_state(qid, QueryState.QUEUE)
            return ready
        return []

    def held_queries(self) -> list[int]:
        """Queries currently held in READY (awaiting partners)."""
        return self.graph.ready_queries()

    def release_all_ready(self) -> list[int]:
        """Liveness valve: force every READY query to QUEUE."""
        ready = self.graph.ready_queries()
        for qid in ready:
            self.graph.set_state(qid, QueryState.QUEUE)
        return ready
