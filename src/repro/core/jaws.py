"""The JAWS scheduler (paper §IV–V).

Extends LifeRaft's contention-ordered batching with:

* **two-level scheduling** — pick the best time step by mean aged
  workload throughput, then co-schedule up to ``k`` above-mean atoms
  from it in Morton order (§V, Fig. 6);
* **job-aware gated execution** — ordered jobs are aligned
  (Needleman–Wunsch) and merged into a precedence graph with gating
  edges; gated queries are held in READY and released together so
  shared atoms are read once (§IV);
* **adaptive starvation resistance** — the age bias α is tuned per run
  of ``r`` completed queries from observed throughput/response-time
  trade-offs (§V-A);
* **cache coordination** — exports the URC utility ranking (inherited
  from :class:`~repro.core.contention.ContentionSchedulerBase`).

The paper's two evaluation variants map to configuration:
``JAWS_1`` = ``SchedulerConfig(job_aware=False)``, ``JAWS_2`` = full.
"""

from __future__ import annotations

import time
from typing import Iterator, Optional

import numpy as np

from repro.config import CostModel, SchedulerConfig
from repro.core.adaptive import AdaptiveAlphaController
from repro.core.base import Batch, RunObservation
from repro.core.contention import ContentionSchedulerBase
from repro.core.merge import GatingManager
from repro.core.two_level import select_two_level
from repro.grid.dataset import DatasetSpec
from repro.workload.job import Job
from repro.workload.query import Query, SubQuery

__all__ = ["JAWSScheduler"]


class JAWSScheduler(ContentionSchedulerBase):
    """Job-aware, two-level, adaptively-aged batch scheduler."""

    def __init__(
        self,
        spec: DatasetSpec,
        cost: CostModel,
        config: Optional[SchedulerConfig] = None,
    ) -> None:
        config = config or SchedulerConfig(adaptive_alpha=True)
        super().__init__(spec, cost, config)
        variant = "2" if config.job_aware else "1"
        self.name = f"JAWS_{variant}"
        self._controller = (
            AdaptiveAlphaController(alpha=config.alpha) if config.adaptive_alpha else None
        )
        self._gating = GatingManager() if config.job_aware else None
        # READY queries held back by gating:
        # query_id -> (query, subqueries, arrival_time).
        self._held: dict[int, tuple[Query, list[SubQuery], float]] = {}
        # Completed-query counts since each held query went READY (lag valve).
        self._held_lag: dict[int, int] = {}
        # Wall-clock cost of gating bookkeeping (§VI overhead figure).
        # The D001 suppressions below are safe: these reads only feed
        # this reporting counter, never the virtual clock or any
        # scheduling decision.
        self.gating_overhead_ns = 0
        self.forced_releases = 0

    # ------------------------------------------------------------------
    # Job awareness
    # ------------------------------------------------------------------
    def on_job_submitted(self, job: Job, now: float) -> None:
        if self._gating is None or not job.is_ordered or job.n_queries < 2:
            return
        t0 = time.perf_counter_ns()  # jawslint: disable=D001
        atom_sets = [q.atoms(self.spec) for q in job.queries]
        self._gating.add_job(job.job_id, [q.query_id for q in job.queries], atom_sets)
        self.gating_overhead_ns += time.perf_counter_ns() - t0  # jawslint: disable=D001

    def on_query_arrival(self, query: Query, subqueries: list[SubQuery], now: float) -> None:
        if self._gating is None or not self._gating.is_tracked(query.query_id):
            self._enqueue(subqueries, now)
            return
        t0 = time.perf_counter_ns()  # jawslint: disable=D001
        self._held[query.query_id] = (query, subqueries, now)
        released = self._gating.on_arrival(query.query_id)
        self.gating_overhead_ns += time.perf_counter_ns() - t0  # jawslint: disable=D001
        if released is None:
            self._held_lag[query.query_id] = 0
            return
        self._release(released, now)

    def _release(self, query_ids: list[int], now: float) -> None:
        for qid in query_ids:
            entry = self._held.pop(qid, None)
            self._held_lag.pop(qid, None)
            if entry is not None:
                self._enqueue(entry[1], now)

    def on_query_complete(self, query: Query, now: float) -> None:
        if self._gating is None:
            return
        t0 = time.perf_counter_ns()  # jawslint: disable=D001
        self._gating.on_complete(query.query_id)
        self.gating_overhead_ns += time.perf_counter_ns() - t0  # jawslint: disable=D001
        # Liveness valve: a query held past gating_max_lag completions
        # abandons its gates (bounded starvation from gating itself).
        max_lag = self.config.gating_max_lag
        if max_lag is not None and self._held:
            expired = []
            for qid in self._held:
                self._held_lag[qid] = self._held_lag.get(qid, 0) + 1
                if self._held_lag[qid] >= max_lag:
                    expired.append(qid)
            if expired:
                self.forced_releases += len(expired)
                self._release(expired, now)

    # ------------------------------------------------------------------
    # Batch selection
    # ------------------------------------------------------------------
    def next_batch(self, now: float) -> Optional[Batch]:
        ids, timesteps, u_t, u_e = self._metric_view(now)
        if len(ids) == 0:
            return None
        if self.config.two_level:
            chosen = select_two_level(ids, timesteps, u_t, u_e, self.config.batch_size)
        else:
            ties = np.flatnonzero(u_e == u_e.max())
            chosen = [int(ids[ties].min())]
        return self._drain(chosen)

    def has_pending(self) -> bool:
        return super().has_pending() or bool(self._held)

    def queue_depth(self) -> int:
        held = sum(len(entry[1]) for entry in self._held.values())
        return super().queue_depth() + held

    def iter_pending(self) -> Iterator[SubQuery]:
        yield from super().iter_pending()
        for _, subs, _ in self._held.values():
            yield from subs

    # ------------------------------------------------------------------
    # Degraded-mode hooks (node failover, query cancellation)
    # ------------------------------------------------------------------
    def evacuate(self, now: float) -> list[tuple[float, SubQuery]]:
        """Queued work plus the sub-queries of gating-held queries.

        Held entries stay in place (emptied) so the gating graph keeps
        advancing symmetrically across nodes; only their local work
        moves to a replica.
        """
        entries = super().evacuate(now)
        for qid, (query, subs, arrival) in list(self._held.items()):
            if subs:
                entries.extend((arrival, sq) for sq in subs)
                self._held[qid] = (query, [], arrival)
        return entries

    def readmit(self, entries: list[tuple[float, SubQuery]], now: float) -> None:
        """Failed-over sub-queries of a query this node still holds in
        READY join its held entry (released with its gating group);
        everything else enters the workload queues directly."""
        passthrough: list[tuple[float, SubQuery]] = []
        for arrival, sq in entries:
            held = self._held.get(sq.query.query_id)
            if held is not None:
                held[1].append(sq)
            else:
                passthrough.append((arrival, sq))
        super().readmit(passthrough, now)

    def cancel_query(self, query_id: int, now: float) -> int:
        removed = super().cancel_query(query_id, now)
        entry = self._held.pop(query_id, None)
        self._held_lag.pop(query_id, None)
        if entry is not None:
            removed += len(entry[1])
        if self._gating is not None:
            released = self._gating.cancel(query_id)
            if released:
                self._release(released, now)
        return removed

    def force_release(self, now: float) -> bool:
        """Release every gated hold (engine liveness valve)."""
        if self._gating is None or not self._held:
            return False
        released = self._gating.release_all_ready()
        # Also flush holds whose graph entries were already released or
        # pruned (defensive; should coincide with `released`).
        to_release = set(released) | set(self._held)
        self.forced_releases += len(to_release)
        self._release(sorted(to_release), now)
        return True

    # ------------------------------------------------------------------
    # Adaptive alpha
    # ------------------------------------------------------------------
    def on_run_boundary(self, obs: RunObservation) -> None:
        if self._controller is not None:
            self._alpha = self._controller.update(obs.mean_response_time, obs.throughput)

    @property
    def alpha_history(self) -> list[float]:
        """α after each run (empty when adaptation is off)."""
        return list(self._controller.history) if self._controller else []

    @property
    def held_count(self) -> int:
        """Queries currently held in READY by gating (diagnostics)."""
        return len(self._held)
