"""Adaptive starvation resistance: the age-bias controller (paper §V-A).

JAWS divides the workload into runs of ``r`` consecutive queries,
measures mean response time ``rt(i)`` and throughput ``tp(i)`` per run,
and nudges the age bias α of Eq. 2 after each run:

* **Rule 1** — saturation rising (``rt`` ratio ≥ 1) without a
  commensurate throughput gain: *decrease* α (bias toward contention,
  maximize sharing to keep queueing times from exploding).
* **Rule 2** — saturation falling (``rt`` ratio < 1) while throughput
  dropped even faster: *increase* α (spend spare capacity on response
  time).

Ratios are computed on EWMA-smoothed series
(``rt'(i) = 0.2 rt(i) + 0.8 rt'(i-1)``, same for ``tp``) so α moves
incrementally; and when two consecutive runs show no change, the
controller *explores* by perturbing α, so it cannot stay stuck at a bad
initial value when saturation is static.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AdaptiveAlphaController"]


@dataclass
class AdaptiveAlphaController:
    """Incremental α tuner.

    Attributes
    ----------
    alpha:
        Current age bias, updated in place by :meth:`update`.
    ewma_weight:
        Weight of the newest run in the smoothed series (paper: 0.2).
    step_gain:
        Multiplier on the raw ``rt-ratio − tp-ratio`` step (1.0 = the
        paper's formula).
    stasis_epsilon:
        Ratio band treated as "no change" for exploration purposes.
    explore_step:
        Magnitude of the exploration perturbation, alternating sign.
    """

    alpha: float = 0.5
    ewma_weight: float = 0.2
    step_gain: float = 1.0
    stasis_epsilon: float = 0.02
    explore_step: float = 0.05

    _rt_smooth: float | None = field(default=None, repr=False)
    _tp_smooth: float | None = field(default=None, repr=False)
    _stasis_runs: int = field(default=0, repr=False)
    _explore_sign: float = field(default=1.0, repr=False)
    history: list[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if not 0.0 < self.ewma_weight <= 1.0:
            raise ValueError("ewma_weight must be in (0, 1]")

    def update(self, rt: float, tp: float) -> float:
        """Observe one run's mean response time and throughput; returns
        the α to use for the next run."""
        if rt < 0 or tp < 0:
            raise ValueError("rt and tp must be non-negative")
        if self._rt_smooth is None or self._tp_smooth is None:
            # rt'(0) = rt(0), tp'(0) = tp(0): first run seeds the series.
            self._rt_smooth = rt
            self._tp_smooth = tp
            self.history.append(self.alpha)
            return self.alpha

        w = self.ewma_weight
        rt_new = w * rt + (1 - w) * self._rt_smooth
        tp_new = w * tp + (1 - w) * self._tp_smooth
        rt_ratio = rt_new / self._rt_smooth if self._rt_smooth > 0 else 1.0
        tp_ratio = tp_new / self._tp_smooth if self._tp_smooth > 0 else 1.0
        self._rt_smooth = rt_new
        self._tp_smooth = tp_new

        if abs(rt_ratio - 1.0) < self.stasis_epsilon and abs(tp_ratio - 1.0) < self.stasis_epsilon:
            self._stasis_runs += 1
        else:
            self._stasis_runs = 0

        if self._stasis_runs >= 2:
            # Exploration: vary the bias to probe the trade-off curve.
            self.alpha = min(1.0, max(0.0, self.alpha + self._explore_sign * self.explore_step))
            self._explore_sign = -self._explore_sign
            self._stasis_runs = 0
        elif rt_ratio >= 1.0 and tp_ratio < rt_ratio:
            # Rule 1: bias toward contention.
            step = self.step_gain * (rt_ratio - tp_ratio)
            self.alpha -= min(step, self.alpha)
        elif rt_ratio < 1.0 and tp_ratio < rt_ratio:
            # Rule 2: bias toward age.
            step = self.step_gain * (rt_ratio - tp_ratio)
            self.alpha += min(step, 1.0 - self.alpha)

        self.alpha = min(1.0, max(0.0, self.alpha))
        self.history.append(self.alpha)
        return self.alpha
