"""Precedence graph with gating edges (paper §IV-B, Figs. 3–5).

The graph holds every active query as a vertex.  Directed *precedence*
edges chain each ordered job's queries; undirected *gating* edges link
queries of different jobs that the scheduler must co-schedule to
realize data sharing.  A query can be scheduled only when its
predecessor is DONE and every gating partner has at least arrived
(READY) — partners already queued or completed no longer block.

Because ``AdmitGatingEdge`` (Fig. 4 line 2) makes a new query inherit
every edge incident to its partner, co-scheduling components are
*cliques*; we therefore represent them directly as **groups** (one id
per clique) instead of edge sets, which keeps admission incremental —
no union-find rebuild per candidate edge.

Admission enforces the paper's feasibility conditions:

* a group may contain at most one query per job (two queries of one
  job can never be co-scheduled — one precedes the other);
* contracting groups to single nodes must leave the precedence
  relation acyclic.  This single check subsumes the pseudo-code's
  non-crossing/per-pair rules: two crossing edges between jobs A and B
  induce precedence paths g1 → g2 (through A) and g2 → g1 (through B),
  i.e. a cycle.  The paper pre-filters with *gating numbers*; since
  its published comparison line is garbled we keep gating numbers as a
  diagnostic (:meth:`gating_numbers`) and rely on the explicit cycle
  check for soundness (see DESIGN.md); property tests verify gated
  schedules never deadlock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.states import QueryState

__all__ = ["PrecedenceGraph"]


@dataclass
class _Vertex:
    job_id: int
    seq: int
    atoms: frozenset[int]
    group: int
    state: QueryState = QueryState.WAIT


class PrecedenceGraph:
    """Mutable precedence + gating-group graph over active queries."""

    def __init__(self) -> None:
        self._v: dict[int, _Vertex] = {}
        self._job_queries: dict[int, list[int]] = {}  # live query ids, seq order
        self._groups: dict[int, set[int]] = {}  # group id -> member query ids
        self._next_group = 0
        self.edges_admitted = 0
        self.edges_rejected = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_job(
        self, job_id: int, query_ids: list[int], atom_sets: list[frozenset[int]]
    ) -> None:
        """Register a job's query chain (all vertices start WAIT, each
        in its own singleton group)."""
        if job_id in self._job_queries:
            raise ValueError(f"job {job_id} already in graph")
        if len(query_ids) != len(atom_sets):
            raise ValueError("query_ids and atom_sets length mismatch")
        for seq, (qid, atoms) in enumerate(zip(query_ids, atom_sets)):
            if qid in self._v:
                raise ValueError(f"query {qid} already in graph")
            gid = self._next_group
            self._next_group += 1
            self._v[qid] = _Vertex(job_id=job_id, seq=seq, atoms=atoms, group=gid)
            self._groups[gid] = {qid}
        self._job_queries[job_id] = list(query_ids)

    def __contains__(self, qid: int) -> bool:
        return qid in self._v

    def jobs(self) -> list[int]:
        return list(self._job_queries)

    def queries_of(self, job_id: int) -> list[int]:
        return list(self._job_queries.get(job_id, []))

    def atoms_of(self, qid: int) -> frozenset[int]:
        return self._v[qid].atoms

    def state(self, qid: int) -> QueryState:
        return self._v[qid].state

    def set_state(self, qid: int, state: QueryState) -> None:
        self._v[qid].state = state

    def partners(self, qid: int) -> frozenset[int]:
        """Gating partners (the rest of the query's clique)."""
        v = self._v[qid]
        return frozenset(self._groups[v.group] - {qid})

    # ------------------------------------------------------------------
    # Deadlock check: contracted group graph must stay acyclic
    # ------------------------------------------------------------------
    def _acyclic_with_merge(self, ga: int, gb: int) -> bool:
        succ: dict[int, set[int]] = {}
        for qids in self._job_queries.values():
            prev = -1
            for qid in qids:
                g = self._v[qid].group
                if g == gb:
                    g = ga
                if prev >= 0:
                    if prev == g:
                        return False  # group contains its own successor
                    succ.setdefault(prev, set()).add(g)
                prev = g
        # Iterative three-color DFS.
        color: dict[int, int] = {}
        for start in succ:
            if color.get(start):
                continue
            stack = [(start, iter(succ.get(start, ())))]
            color[start] = 1
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    c = color.get(nxt, 0)
                    if c == 1:
                        return False
                    if c == 0:
                        color[nxt] = 1
                        stack.append((nxt, iter(succ.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = 2
                    stack.pop()
        return True

    # ------------------------------------------------------------------
    # Admission (Fig. 4)
    # ------------------------------------------------------------------
    def admit_edge(self, qa: int, qb: int) -> bool:
        """Try to admit gating edge (qa, qb), merging their cliques.

        Returns True if admitted (or already present).  Either endpoint
        missing/DONE, a duplicate job inside the merged group, or a
        cycle in the contracted graph rejects the merge.
        """
        va = self._v.get(qa)
        vb = self._v.get(qb)
        if va is None or vb is None or va is vb:
            self.edges_rejected += 1
            return False
        if va.state is QueryState.DONE or vb.state is QueryState.DONE:
            self.edges_rejected += 1
            return False
        ga, gb = va.group, vb.group
        if ga == gb:
            return True  # already co-scheduled
        members_a = self._groups[ga]
        members_b = self._groups[gb]
        jobs_a = {self._v[q].job_id for q in members_a}
        jobs_b = {self._v[q].job_id for q in members_b}
        if jobs_a & jobs_b:
            self.edges_rejected += 1
            return False
        if not self._acyclic_with_merge(ga, gb):
            self.edges_rejected += 1
            return False
        # Merge smaller into larger.
        if len(members_a) < len(members_b):
            ga, gb = gb, ga
            members_a, members_b = members_b, members_a
        for qid in members_b:
            self._v[qid].group = ga
        members_a.update(members_b)
        del self._groups[gb]
        self.edges_admitted += 1
        return True

    # ------------------------------------------------------------------
    # Gating numbers (diagnostic; Fig. 3 annotation)
    # ------------------------------------------------------------------
    def gating_numbers(self) -> dict[int, int]:
        """Minimum gating edges evaluated before each query can run.

        Fixed point of ``G(q) = gated predecessors in q's own job +
        max over partners p of those predecessors of (G(p) + 1)``,
        iterated over jobs in execution order until stable.
        """
        g = {qid: 0 for qid in self._v}
        changed = True
        guard = 0
        while changed and guard < len(self._v) + 2:
            changed = False
            guard += 1
            for qids in self._job_queries.values():
                prior_edges = 0
                best_partner = 0
                for qid in qids:
                    new = prior_edges + best_partner
                    if new > g[qid]:
                        g[qid] = new
                        changed = True
                    partners = self.partners(qid)
                    if partners:
                        prior_edges += len(partners)
                        for p in partners:
                            if g[p] + 1 > best_partner:
                                best_partner = g[p] + 1
        return g

    # ------------------------------------------------------------------
    # Release logic
    # ------------------------------------------------------------------
    def group_of(self, qid: int) -> set[int]:
        """The query's live co-scheduling clique (including itself)."""
        return set(self._groups[self._v[qid].group])

    def releasable_group(self, qid: int) -> list[int] | None:
        """If ``qid``'s whole gating group has arrived, return its READY
        members (the ones to move to QUEUE now); else ``None``.

        Partners still WAIT (not yet arrived) block the group; partners
        already QUEUE never do.
        """
        ready: list[int] = []
        for member in self._groups[self._v[qid].group]:
            st = self._v[member].state
            if st is QueryState.WAIT:
                return None
            if st is QueryState.READY:
                ready.append(member)
        # Sorted so release (and hence enqueue) order never depends on
        # set-iteration order — part of the determinism contract (§7).
        return sorted(ready)

    def mark_done(self, qid: int) -> None:
        """Complete a query and prune it from the graph (the paper
        continually prunes completed queries to keep the merge cheap)."""
        v = self._v.pop(qid, None)
        if v is None:
            return
        members = self._groups[v.group]
        members.discard(qid)
        if not members:
            del self._groups[v.group]
        qids = self._job_queries.get(v.job_id)
        if qids is not None:
            try:
                qids.remove(qid)
            except ValueError:
                pass
            if not qids:
                del self._job_queries[v.job_id]

    def ready_queries(self) -> list[int]:
        """All queries currently held in READY (diagnostics/valve)."""
        return [qid for qid, v in self._v.items() if v.state is QueryState.READY]

    def n_gating_edges(self) -> int:
        """Number of implied (clique) gating edges."""
        return sum(len(m) * (len(m) - 1) // 2 for m in self._groups.values())

    # ------------------------------------------------------------------
    # Sanitizer checkpoints
    # ------------------------------------------------------------------
    def is_acyclic(self) -> bool:
        """Is the contracted group graph acyclic right now?

        The deadlock-freedom condition admission maintains; re-checked
        wholesale by the simulation sanitizer.
        """
        if not self._groups:
            return True
        gid = next(iter(self._groups))
        # Merging a group with itself is the identity contraction.
        return self._acyclic_with_merge(gid, gid)

    def validate(self) -> list[str]:
        """Audit graph internals: group partition coherence, the
        one-query-per-job clique rule, and gating-number stability.

        Returns human-readable problem descriptions (empty = valid).
        Read-only; called by the simulation sanitizer per event.
        """
        problems: list[str] = []
        for qid, v in self._v.items():
            members = self._groups.get(v.group)
            if members is None:
                problems.append(f"query {qid}: group {v.group} missing")
            elif qid not in members:
                problems.append(f"query {qid}: not a member of its group {v.group}")
        for gid, members in self._groups.items():
            jobs: set[int] = set()
            for qid in members:
                v = self._v.get(qid)
                if v is None:
                    problems.append(f"group {gid}: member {qid} not in graph")
                    continue
                if v.group != gid:
                    problems.append(f"group {gid}: member {qid} claims group {v.group}")
                if v.job_id in jobs:
                    problems.append(f"group {gid}: two queries of job {v.job_id}")
                jobs.add(v.job_id)
        for job_id, qids in self._job_queries.items():
            seqs = []
            for qid in qids:
                v = self._v.get(qid)
                if v is None:
                    problems.append(f"job {job_id}: pruned query {qid} still listed")
                    continue
                if v.job_id != job_id:
                    problems.append(f"job {job_id}: lists query {qid} of job {v.job_id}")
                seqs.append(v.seq)
            if seqs != sorted(seqs):
                problems.append(f"job {job_id}: query chain out of sequence order")
        # Gating numbers must be a stable fixed point: one further
        # relaxation pass over the converged values changes nothing.
        # (The iteration in ``gating_numbers`` is guard-bounded, so a
        # cyclic graph could exit before converging — this catches it.)
        if not problems:
            g = self.gating_numbers()
            if any(value < 0 for value in g.values()):
                problems.append("negative gating number")
            for qids in self._job_queries.values():
                prior_edges = 0
                best_partner = 0
                for qid in qids:
                    if prior_edges + best_partner > g[qid]:
                        problems.append(
                            f"gating number of query {qid} is not a fixed point"
                        )
                        break
                    partners = self.partners(qid)
                    if partners:
                        prior_edges += len(partners)
                        for p in partners:
                            if g[p] + 1 > best_partner:
                                best_partner = g[p] + 1
                else:
                    continue
                break
        return problems
