"""Needleman–Wunsch alignment of job query sequences (paper §IV-B).

JAWS identifies the maximal data sharing between a *pair* of ordered
jobs with a global sequence alignment: queries are the "characters",
the match score ``s(j, l)`` is 1 when ``A(q_{i,j}) ∩ A(q_{k,l}) ≠ ∅``
(the queries touch at least one common atom) and 0 otherwise, and gaps
are free.  Every matched pair in the optimal alignment becomes a
*gating edge* candidate: the scheduler should co-schedule the two
queries so the shared atoms are read once.

Because the alignment is monotone, the produced edge set automatically
satisfies the paper's per-pair feasibility conditions: no two edges
cross, and each query has at most one edge to the other job.

The DP is :math:`O(nm)` per pair, :math:`O(n^2 m^2)` over all pairs as
the paper states (§IV-B).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["overlap_matrix", "align_jobs", "alignment_score"]


def overlap_matrix(
    atoms_a: Sequence[frozenset[int]], atoms_b: Sequence[frozenset[int]]
) -> np.ndarray:
    """Boolean matrix ``S[j, l]`` = queries j (of A) and l (of B) share data."""
    n, m = len(atoms_a), len(atoms_b)
    s = np.zeros((n, m), dtype=bool)
    for j, a in enumerate(atoms_a):
        if not a:
            continue
        for l, b in enumerate(atoms_b):
            if not a.isdisjoint(b):
                s[j, l] = True
    return s


def align_jobs(
    atoms_a: Sequence[frozenset[int]], atoms_b: Sequence[frozenset[int]]
) -> list[tuple[int, int]]:
    """Optimal monotone matching of data-sharing queries between two jobs.

    Parameters
    ----------
    atoms_a, atoms_b:
        Per-query atom sets ``A(q)`` of the two jobs, in execution
        order.

    Returns
    -------
    list of (j, l)
        Matched index pairs with ``s = 1``, strictly increasing in both
        coordinates — the gating-edge candidates.
    """
    n, m = len(atoms_a), len(atoms_b)
    if n == 0 or m == 0:
        return []
    s = overlap_matrix(atoms_a, atoms_b)

    # score[j, l] = best alignment of prefixes a[:j], b[:l].
    score = np.zeros((n + 1, m + 1), dtype=np.int32)
    for j in range(1, n + 1):
        row = score[j]
        prev = score[j - 1]
        match = prev[:-1] + s[j - 1]
        # row[l] = max(prev[l], match[l-1], row[l-1]); the row[l-1] term
        # forces a sequential scan, but rows are numpy-backed so the two
        # vector candidates are precombined.
        best_up_or_diag = np.maximum(prev[1:], match)
        running = 0
        for l in range(1, m + 1):
            v = best_up_or_diag[l - 1]
            if running > v:
                v = running
            row[l] = v
            running = v

    # Traceback, preferring matches so every point of score is realized
    # as an explicit edge.
    pairs: list[tuple[int, int]] = []
    j, l = n, m
    while j > 0 and l > 0:
        if s[j - 1, l - 1] and score[j, l] == score[j - 1, l - 1] + 1:
            pairs.append((j - 1, l - 1))
            j -= 1
            l -= 1
        elif score[j, l] == score[j - 1, l]:
            j -= 1
        else:
            l -= 1
    pairs.reverse()
    return pairs


def alignment_score(
    atoms_a: Sequence[frozenset[int]], atoms_b: Sequence[frozenset[int]]
) -> int:
    """Number of gating edges the optimal alignment yields."""
    return len(align_jobs(atoms_a, atoms_b))
