"""Per-atom workload queues (paper §III-C, §V-C).

The Workload Manager keeps, for every atom with pending requests, the
union of all sub-query position sets against it, the age of the oldest
pending sub-query, and whether the atom is currently cached (the
``phi`` term of Eq. 1).  This module stores those aggregates in
parallel NumPy arrays over dynamically allocated slots so the
scheduling metrics vectorize over all active atoms in one shot —
per-batch scheduling cost is a few array ops, not a Python loop.

Three structures keep the per-event cost independent of the total
number of active atoms:

* capacity grows geometrically (doubling), so slot allocation is
  amortized O(1) instead of an O(n) ``np.concatenate`` every 256 slots;
* a per-query inverted index (query id -> atom ids) lets
  :meth:`WorkloadQueues.remove_query` touch only the cancelled query's
  slots instead of scanning every active slot;
* :meth:`WorkloadQueues.active_view` is memoized on a mutation version
  counter, so back-to-back metric evaluations with no intervening
  queue change reuse one snapshot.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.workload.query import SubQuery

__all__ = ["WorkloadQueues"]

_MIN_CAPACITY = 256


class WorkloadQueues:
    """Aggregated pending work, indexed by atom.

    Slots are recycled: an atom gets a slot when its first sub-query
    arrives and frees it when a batch drains the atom.  Cached flags
    are maintained incrementally from buffer-cache listener callbacks.

    ``capacity_hint`` preallocates slot storage when the caller knows
    the expected working set (e.g. the dataset's atoms-per-timestep),
    avoiding early regrowth; capacity still doubles beyond the hint.
    """

    def __init__(self, atoms_per_timestep: int, capacity_hint: int = 0) -> None:
        self._atoms_per_timestep = atoms_per_timestep
        self._slot_of: dict[int, int] = {}
        cap = _MIN_CAPACITY
        while cap < capacity_hint:
            cap *= 2
        # Same pop order as freshly grown slots: highest slot first.
        self._free: list[int] = list(range(cap))
        self._atom_ids = np.full(cap, -1, dtype=np.int64)
        self._counts = np.zeros(cap, dtype=np.int64)
        self._oldest = np.zeros(cap, dtype=np.float64)
        self._cached = np.zeros(cap, dtype=bool)
        self._subqueries: list[list[SubQuery]] = [[] for _ in range(cap)]
        # Arrival time of each pending sub-query, parallel to
        # ``_subqueries`` per slot; min(arrivals) == _oldest[slot].
        self._arrivals: list[list[float]] = [[] for _ in range(cap)]
        # Inverted index: query id -> atom ids with pending sub-queries
        # of that query (insertion-ordered dict used as a set, so
        # cancellation iterates deterministically).
        self._by_query: dict[int, dict[int, None]] = {}
        self._cached_atoms: set[int] = set()
        self.total_positions = 0
        # Mutation counter; bumped whenever the active view would
        # change.  Consumers (metric memos) key on it.
        self._version = 0
        self._view: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None
        self._view_version = -1

    @property
    def version(self) -> int:
        """Monotonic mutation counter for memoizing derived metrics."""
        return self._version

    # ------------------------------------------------------------------
    # Slot management
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        old = len(self._atom_ids)
        new = old * 2
        extra = new - old
        self._atom_ids = np.concatenate(
            [self._atom_ids, np.full(extra, -1, dtype=np.int64)]
        )
        self._counts = np.concatenate([self._counts, np.zeros(extra, dtype=np.int64)])
        self._oldest = np.concatenate([self._oldest, np.zeros(extra)])
        self._cached = np.concatenate([self._cached, np.zeros(extra, dtype=bool)])
        self._subqueries.extend([] for _ in range(extra))
        self._arrivals.extend([] for _ in range(extra))
        self._free.extend(range(old, new))

    def _slot_for(self, atom_id: int, now: float) -> int:
        slot = self._slot_of.get(atom_id)
        if slot is not None:
            return slot
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self._slot_of[atom_id] = slot
        self._atom_ids[slot] = atom_id
        self._counts[slot] = 0
        self._oldest[slot] = now
        self._cached[slot] = atom_id in self._cached_atoms
        self._subqueries[slot] = []
        self._arrivals[slot] = []
        return slot

    def _index_query(self, query_id: int, atom_id: int) -> None:
        atoms = self._by_query.get(query_id)
        if atoms is None:
            atoms = {}
            self._by_query[query_id] = atoms
        atoms[atom_id] = None

    def _unindex_query(self, query_id: int, atom_id: int) -> None:
        atoms = self._by_query.get(query_id)
        if atoms is None:
            return
        atoms.pop(atom_id, None)
        if not atoms:
            del self._by_query[query_id]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, subquery: SubQuery, now: float) -> None:
        """Append a sub-query to its atom's workload queue.

        ``now`` is the sub-query's arrival time; re-admitted sub-queries
        (node failover) pass their *original* arrival, which may predate
        the slot's current oldest and then takes over the atom's age.
        """
        slot = self._slot_for(subquery.atom_id, now)
        if now < self._oldest[slot]:
            self._oldest[slot] = now
        self._counts[slot] += subquery.n_positions
        self._subqueries[slot].append(subquery)
        self._arrivals[slot].append(now)
        self._index_query(subquery.query.query_id, subquery.atom_id)
        self.total_positions += subquery.n_positions
        self._version += 1

    def pop_atom(self, atom_id: int) -> list[SubQuery]:
        """Drain an atom's queue (the batch takes every pending
        sub-query in one pass over the data)."""
        slot = self._slot_of.pop(atom_id)
        subs = self._subqueries[slot]
        for sq in subs:
            self._unindex_query(sq.query.query_id, atom_id)
        self.total_positions -= int(self._counts[slot])
        self._subqueries[slot] = []
        self._arrivals[slot] = []
        self._atom_ids[slot] = -1
        self._counts[slot] = 0
        self._free.append(slot)
        self._version += 1
        return subs

    def pop_atom_entries(self, atom_id: int) -> list[tuple[float, SubQuery]]:
        """Drain an atom's queue keeping each sub-query's true arrival
        time (node-failover evacuation re-admits with these ages)."""
        slot = self._slot_of[atom_id]
        entries = list(zip(self._arrivals[slot], self._subqueries[slot]))
        self.pop_atom(atom_id)
        return entries

    def _free_slot(self, atom_id: int, slot: int) -> None:
        for sq in self._subqueries[slot]:
            self._unindex_query(sq.query.query_id, atom_id)
        self._slot_of.pop(atom_id, None)
        self._subqueries[slot] = []
        self._arrivals[slot] = []
        self._atom_ids[slot] = -1
        self._counts[slot] = 0
        self._free.append(slot)

    def remove_query(self, query_id: int) -> int:
        """Drop every pending sub-query of ``query_id`` (cancellation).

        The inverted per-query index makes this touch only the
        cancelled query's atoms, not every active slot.  Atoms whose
        queues empty free their slots; surviving atoms restore their
        true oldest-arrival age from the stored per-sub-query arrival
        times.  Returns the number removed.
        """
        atoms = self._by_query.pop(query_id, None)
        if not atoms:
            return 0
        removed = 0
        for atom_id in atoms:
            slot = self._slot_of[atom_id]
            subs = self._subqueries[slot]
            arrivals = self._arrivals[slot]
            kept_subs: list[SubQuery] = []
            kept_arrivals: list[float] = []
            dropped = 0
            for sq, arrival in zip(subs, arrivals):
                if sq.query.query_id == query_id:
                    removed += 1
                    dropped += sq.n_positions
                else:
                    kept_subs.append(sq)
                    kept_arrivals.append(arrival)
            self.total_positions -= dropped
            if kept_subs:
                self._subqueries[slot] = kept_subs
                self._arrivals[slot] = kept_arrivals
                self._counts[slot] -= dropped
                self._oldest[slot] = min(kept_arrivals)
            else:
                self._subqueries[slot] = []
                self._free_slot(atom_id, slot)
        self._version += 1
        return removed

    # -- cache residency listeners ------------------------------------------
    def on_cache_insert(self, atom_id: int) -> None:
        self._cached_atoms.add(atom_id)
        slot = self._slot_of.get(atom_id)
        if slot is not None:
            self._cached[slot] = True
            self._version += 1

    def on_cache_evict(self, atom_id: int) -> None:
        self._cached_atoms.discard(atom_id)
        slot = self._slot_of.get(atom_id)
        if slot is not None:
            self._cached[slot] = False
            self._version += 1

    # ------------------------------------------------------------------
    # Views for metric computation
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, atom_id: int) -> bool:
        return atom_id in self._slot_of

    def active_view(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(atom_ids, counts, oldest_arrival, cached)`` over active slots.

        Arrays are read-only snapshots in a stable (slot-map insertion)
        order, memoized on the queue version: repeated calls with no
        intervening mutation return the same tuple without copying.
        Callers must not write to them (they are marked non-writeable).
        """
        if self._view is not None and self._view_version == self._version:
            return self._view
        if not self._slot_of:
            view = (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0),
                np.empty(0, dtype=bool),
            )
        else:
            slots = np.fromiter(
                self._slot_of.values(), dtype=np.int64, count=len(self._slot_of)
            )
            view = (
                self._atom_ids[slots],
                self._counts[slots],
                self._oldest[slots],
                self._cached[slots],
            )
        for arr in view:
            arr.flags.writeable = False
        self._view = view
        self._view_version = self._version
        return view

    def iter_subquery_lists(self) -> Iterator[list[SubQuery]]:
        """Yield each active atom's pending sub-query list (read-only)."""
        for slot in self._slot_of.values():
            yield self._subqueries[slot]

    def positions_pending(self, atom_id: int) -> int:
        """Total queued positions against one atom (0 when idle)."""
        slot = self._slot_of.get(atom_id)
        return int(self._counts[slot]) if slot is not None else 0

    def oldest_arrival(self, atom_id: int) -> float:
        """Arrival time of the atom's oldest pending sub-query."""
        slot = self._slot_of[atom_id]
        return float(self._oldest[slot])

    def timesteps_of(self, atom_ids: np.ndarray) -> np.ndarray:
        """Vectorized packed-id -> time step."""
        return atom_ids // self._atoms_per_timestep

    # ------------------------------------------------------------------
    # Sanitizer checkpoint
    # ------------------------------------------------------------------
    def check_consistency(self) -> list[str]:
        """Audit the slot map against the parallel arrays.

        Returns human-readable problem descriptions (empty = coherent).
        Called by the simulation sanitizer after every engine event;
        read-only.  Verifies, beyond slot/array coherence: per-slot
        arrival lists parallel to the sub-query lists with
        ``min(arrivals) == oldest``, and the inverted per-query index
        matching the pending sub-queries exactly (both directions).
        """
        problems: list[str] = []
        used = set(self._slot_of.values())
        if len(used) != len(self._slot_of):
            problems.append("two atoms share one slot")
        overlap = used & set(self._free)
        if overlap:
            problems.append(f"slots both used and free: {sorted(overlap)}")
        total = 0
        pending_pairs: set[tuple[int, int]] = set()
        for atom_id, slot in self._slot_of.items():
            if not 0 <= slot < len(self._atom_ids):
                problems.append(f"atom {atom_id}: slot {slot} out of range")
                continue
            if int(self._atom_ids[slot]) != atom_id:
                problems.append(
                    f"atom {atom_id}: slot {slot} labeled {int(self._atom_ids[slot])}"
                )
            subs = self._subqueries[slot]
            arrivals = self._arrivals[slot]
            if not subs:
                problems.append(f"atom {atom_id}: active slot {slot} has no sub-queries")
            if len(arrivals) != len(subs):
                problems.append(
                    f"atom {atom_id}: {len(arrivals)} arrivals for {len(subs)} sub-queries"
                )
            elif subs and min(arrivals) != float(self._oldest[slot]):
                problems.append(
                    f"atom {atom_id}: oldest {float(self._oldest[slot])} != "
                    f"min arrival {min(arrivals)}"
                )
            positions = sum(sq.n_positions for sq in subs)
            if int(self._counts[slot]) != positions:
                problems.append(
                    f"atom {atom_id}: slot count {int(self._counts[slot])} != "
                    f"sub-query positions {positions}"
                )
            if bool(self._cached[slot]) != (atom_id in self._cached_atoms):
                problems.append(f"atom {atom_id}: stale cached flag")
            for sq in subs:
                if sq.atom_id != atom_id:
                    problems.append(
                        f"atom {atom_id}: slot holds sub-query for atom {sq.atom_id}"
                    )
                pending_pairs.add((sq.query.query_id, atom_id))
                atoms = self._by_query.get(sq.query.query_id)
                if atoms is None or atom_id not in atoms:
                    problems.append(
                        f"atom {atom_id}: query {sq.query.query_id} missing from "
                        "inverted index"
                    )
            total += positions
        for query_id, atoms in self._by_query.items():
            if not atoms:
                problems.append(f"query {query_id}: empty inverted-index entry")
            for atom_id in atoms:
                if (query_id, atom_id) not in pending_pairs:
                    problems.append(
                        f"query {query_id}: inverted index lists atom {atom_id} "
                        "with no pending sub-query"
                    )
        if total != self.total_positions:
            problems.append(
                f"total_positions {self.total_positions} != summed slot counts {total}"
            )
        return problems
