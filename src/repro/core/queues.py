"""Per-atom workload queues (paper §III-C, §V-C).

The Workload Manager keeps, for every atom with pending requests, the
union of all sub-query position sets against it, the age of the oldest
pending sub-query, and whether the atom is currently cached (the
``phi`` term of Eq. 1).  This module stores those aggregates in
parallel NumPy arrays over dynamically allocated slots so the
scheduling metrics vectorize over all active atoms in one shot —
per-batch scheduling cost is a few array ops, not a Python loop.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.workload.query import SubQuery

__all__ = ["WorkloadQueues"]

_GROW = 256


class WorkloadQueues:
    """Aggregated pending work, indexed by atom.

    Slots are recycled: an atom gets a slot when its first sub-query
    arrives and frees it when a batch drains the atom.  Cached flags
    are maintained incrementally from buffer-cache listener callbacks.
    """

    def __init__(self, atoms_per_timestep: int) -> None:
        self._atoms_per_timestep = atoms_per_timestep
        self._slot_of: dict[int, int] = {}
        self._free: list[int] = []
        cap = _GROW
        self._atom_ids = np.full(cap, -1, dtype=np.int64)
        self._counts = np.zeros(cap, dtype=np.int64)
        self._oldest = np.zeros(cap, dtype=np.float64)
        self._cached = np.zeros(cap, dtype=bool)
        self._subqueries: list[list[SubQuery]] = [[] for _ in range(cap)]
        self._cached_atoms: set[int] = set()
        self.total_positions = 0

    # ------------------------------------------------------------------
    # Slot management
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        old = len(self._atom_ids)
        new = old + _GROW
        self._atom_ids = np.concatenate([self._atom_ids, np.full(_GROW, -1, dtype=np.int64)])
        self._counts = np.concatenate([self._counts, np.zeros(_GROW, dtype=np.int64)])
        self._oldest = np.concatenate([self._oldest, np.zeros(_GROW)])
        self._cached = np.concatenate([self._cached, np.zeros(_GROW, dtype=bool)])
        self._subqueries.extend([] for _ in range(_GROW))
        self._free.extend(range(old, new))

    def _slot_for(self, atom_id: int, now: float) -> int:
        slot = self._slot_of.get(atom_id)
        if slot is not None:
            return slot
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self._slot_of[atom_id] = slot
        self._atom_ids[slot] = atom_id
        self._counts[slot] = 0
        self._oldest[slot] = now
        self._cached[slot] = atom_id in self._cached_atoms
        self._subqueries[slot] = []
        return slot

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, subquery: SubQuery, now: float) -> None:
        """Append a sub-query to its atom's workload queue.

        ``now`` is the sub-query's arrival time; re-admitted sub-queries
        (node failover) pass their *original* arrival, which may predate
        the slot's current oldest and then takes over the atom's age.
        """
        slot = self._slot_for(subquery.atom_id, now)
        if now < self._oldest[slot]:
            self._oldest[slot] = now
        self._counts[slot] += subquery.n_positions
        self._subqueries[slot].append(subquery)
        self.total_positions += subquery.n_positions

    def pop_atom(self, atom_id: int) -> list[SubQuery]:
        """Drain an atom's queue (the batch takes every pending
        sub-query in one pass over the data)."""
        slot = self._slot_of.pop(atom_id)
        subs = self._subqueries[slot]
        self.total_positions -= int(self._counts[slot])
        self._subqueries[slot] = []
        self._atom_ids[slot] = -1
        self._counts[slot] = 0
        self._free.append(slot)
        return subs

    def _free_slot(self, atom_id: int, slot: int) -> None:
        self._slot_of.pop(atom_id, None)
        self._subqueries[slot] = []
        self._atom_ids[slot] = -1
        self._counts[slot] = 0
        self._free.append(slot)

    def remove_query(self, query_id: int) -> int:
        """Drop every pending sub-query of ``query_id`` (cancellation).

        Atoms whose queues empty free their slots; other atoms keep
        their oldest-arrival age (conservatively — the removed
        sub-query may have been the oldest, but per-sub-query arrival
        times are not stored).  Returns the number removed.
        """
        removed = 0
        for atom_id, slot in list(self._slot_of.items()):
            subs = self._subqueries[slot]
            kept = [sq for sq in subs if sq.query.query_id != query_id]
            if len(kept) == len(subs):
                continue
            dropped = sum(sq.n_positions for sq in subs if sq.query.query_id == query_id)
            removed += len(subs) - len(kept)
            self.total_positions -= dropped
            if kept:
                self._subqueries[slot] = kept
                self._counts[slot] -= dropped
            else:
                self._free_slot(atom_id, slot)
        return removed

    # -- cache residency listeners ------------------------------------------
    def on_cache_insert(self, atom_id: int) -> None:
        self._cached_atoms.add(atom_id)
        slot = self._slot_of.get(atom_id)
        if slot is not None:
            self._cached[slot] = True

    def on_cache_evict(self, atom_id: int) -> None:
        self._cached_atoms.discard(atom_id)
        slot = self._slot_of.get(atom_id)
        if slot is not None:
            self._cached[slot] = False

    # ------------------------------------------------------------------
    # Views for metric computation
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, atom_id: int) -> bool:
        return atom_id in self._slot_of

    def active_view(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(atom_ids, counts, oldest_arrival, cached)`` over active slots.

        Arrays are fresh copies in a stable (slot-index) order; callers
        may mutate them freely.
        """
        if not self._slot_of:
            empty = np.empty(0)
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                empty,
                np.empty(0, dtype=bool),
            )
        slots = np.fromiter(self._slot_of.values(), dtype=np.int64, count=len(self._slot_of))
        return (
            self._atom_ids[slots],
            self._counts[slots],
            self._oldest[slots],
            self._cached[slots],
        )

    def iter_subquery_lists(self) -> Iterator[list[SubQuery]]:
        """Yield each active atom's pending sub-query list (read-only)."""
        for slot in self._slot_of.values():
            yield self._subqueries[slot]

    def positions_pending(self, atom_id: int) -> int:
        """Total queued positions against one atom (0 when idle)."""
        slot = self._slot_of.get(atom_id)
        return int(self._counts[slot]) if slot is not None else 0

    def oldest_arrival(self, atom_id: int) -> float:
        """Arrival time of the atom's oldest pending sub-query."""
        slot = self._slot_of[atom_id]
        return float(self._oldest[slot])

    def timesteps_of(self, atom_ids: np.ndarray) -> np.ndarray:
        """Vectorized packed-id -> time step."""
        return atom_ids // self._atoms_per_timestep

    # ------------------------------------------------------------------
    # Sanitizer checkpoint
    # ------------------------------------------------------------------
    def check_consistency(self) -> list[str]:
        """Audit the slot map against the parallel arrays.

        Returns human-readable problem descriptions (empty = coherent).
        Called by the simulation sanitizer after every engine event;
        read-only.
        """
        problems: list[str] = []
        used = set(self._slot_of.values())
        if len(used) != len(self._slot_of):
            problems.append("two atoms share one slot")
        overlap = used & set(self._free)
        if overlap:
            problems.append(f"slots both used and free: {sorted(overlap)}")
        total = 0
        for atom_id, slot in self._slot_of.items():
            if not 0 <= slot < len(self._atom_ids):
                problems.append(f"atom {atom_id}: slot {slot} out of range")
                continue
            if int(self._atom_ids[slot]) != atom_id:
                problems.append(
                    f"atom {atom_id}: slot {slot} labeled {int(self._atom_ids[slot])}"
                )
            subs = self._subqueries[slot]
            if not subs:
                problems.append(f"atom {atom_id}: active slot {slot} has no sub-queries")
            positions = sum(sq.n_positions for sq in subs)
            if int(self._counts[slot]) != positions:
                problems.append(
                    f"atom {atom_id}: slot count {int(self._counts[slot])} != "
                    f"sub-query positions {positions}"
                )
            if bool(self._cached[slot]) != (atom_id in self._cached_atoms):
                problems.append(f"atom {atom_id}: stale cached flag")
            for sq in subs:
                if sq.atom_id != atom_id:
                    problems.append(
                        f"atom {atom_id}: slot holds sub-query for atom {sq.atom_id}"
                    )
            total += positions
        if total != self.total_positions:
            problems.append(
                f"total_positions {self.total_positions} != summed slot counts {total}"
            )
        return problems
