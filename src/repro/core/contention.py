"""Shared machinery of the contention-based schedulers.

LifeRaft and JAWS both schedule *atoms* out of per-atom workload queues
ranked by the (aged) workload-throughput metric, and both can
coordinate the buffer cache's URC policy by exporting a utility
ranking.  :class:`ContentionSchedulerBase` implements that common core:
queue ownership, cache binding (``phi`` residency flags + URC utility
export + invalidation), vectorized metric evaluation, and batch
draining.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

import numpy as np

from repro.config import CostModel, SchedulerConfig
from repro.core.base import Batch, Scheduler
from repro.core.metrics import aged_metric, workload_throughput
from repro.core.queues import WorkloadQueues
from repro.grid.dataset import DatasetSpec
from repro.storage.buffer import BufferCache
from repro.workload.query import Query, SubQuery

__all__ = ["ContentionSchedulerBase"]


class ContentionSchedulerBase(Scheduler):
    """Common base for queue-driven, contention-ordered schedulers."""

    def __init__(self, spec: DatasetSpec, cost: CostModel, config: SchedulerConfig) -> None:
        self.spec = spec
        self.cost = cost
        self.config = config
        # Preallocate one time step's worth of slots: the dataset is
        # known at construction and a step's atom count bounds the
        # typical working set, so early runs avoid regrowth entirely.
        self.queues = WorkloadQueues(
            spec.atoms_per_timestep, capacity_hint=spec.atoms_per_timestep
        )
        self._alpha = config.alpha
        self._cache: Optional[BufferCache] = None
        # URC utility memo: recomputed lazily after queue changes.
        self._utility_stale = True
        self._utility_atom: dict[int, float] = {}
        self._utility_ts_mean: dict[int, float] = {}
        # Metric memos keyed on the queue mutation version: U_t depends
        # only on queue contents, U_e additionally on (now, alpha).
        # Consecutive next_batch calls with no intervening queue change
        # (idle node sweeps, gated holds) then skip recomputation.
        self._ut_memo: Optional[
            tuple[int, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]
        ] = None
        self._ue_memo: Optional[tuple[int, float, float, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Cache coordination
    # ------------------------------------------------------------------
    def bind_cache(self, cache: BufferCache) -> None:
        """Wire residency flags (Eq. 1's phi) and the URC utility feed."""
        self._cache = cache
        cache.add_listener(
            on_insert=self.queues.on_cache_insert,
            on_evict=self.queues.on_cache_evict,
        )
        cache.policy.set_utility_fn(self._utility)

    def cache_utility_fn(self) -> Optional[Callable[[int], tuple]]:
        return self._utility

    def _invalidate_utilities(self) -> None:
        self._utility_stale = True
        if self._cache is not None:
            self._cache.policy.invalidate_utilities()

    def _utility(self, atom_id: int) -> tuple:
        """URC rank of a resident atom: (mean step throughput, atom
        throughput), lower evicted sooner (§V-B).

        Uses phi = 1 (the cost *re-reading* the atom would incur if
        evicted); an idle atom ranks (0, 0) and goes first.
        """
        if self._utility_stale:
            ids, counts, _, _ = self.queues.active_view()
            # What the workload loses if the atom must be re-read.
            u = workload_throughput(counts, np.zeros(len(ids), dtype=bool), self.cost)
            self._utility_atom = {int(a): float(v) for a, v in zip(ids, u)}
            ts = self.queues.timesteps_of(ids)
            self._utility_ts_mean = {}
            for step in np.unique(ts):
                self._utility_ts_mean[int(step)] = float(u[ts == step].mean())
            self._utility_stale = False
        step = atom_id // self.spec.atoms_per_timestep
        return (
            self._utility_ts_mean.get(step, 0.0),
            self._utility_atom.get(atom_id, 0.0),
        )

    # ------------------------------------------------------------------
    # Queue plumbing
    # ------------------------------------------------------------------
    def _enqueue(self, subqueries: list[SubQuery], now: float) -> None:
        for sq in subqueries:
            self.queues.add(sq, now)
        if subqueries:
            self._invalidate_utilities()

    def on_query_arrival(self, query: Query, subqueries: list[SubQuery], now: float) -> None:
        self._enqueue(subqueries, now)

    def _metric_view(
        self, now: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(atom_ids, timesteps, U_t, U_e)`` over atoms with work.

        Memoized on the queue version (and, for the aged metric, on
        ``now`` and alpha): when nothing arrived or drained between
        consecutive calls, the previous arrays are returned without
        recomputing Eq. 1/Eq. 2 or re-snapshotting the queues.  The
        returned arrays are shared — callers must treat them as
        read-only.
        """
        version = self.queues.version
        if self._ut_memo is not None and self._ut_memo[0] == version:
            ids, timesteps, u_t, oldest = self._ut_memo[1]
        else:
            ids, counts, oldest, cached = self.queues.active_view()
            u_t = workload_throughput(counts, cached, self.cost)
            timesteps = self.queues.timesteps_of(ids)
            self._ut_memo = (version, (ids, timesteps, u_t, oldest))
            self._ue_memo = None
        # Exact == on `now` is deliberate: it is a memo key, not a
        # clock comparison — any difference (even one ulp) must miss
        # the cache and recompute, which is always correct.
        memo = self._ue_memo
        if (
            memo is not None
            and memo[0] == version
            and memo[1] == now  # jawslint: disable=D005
            and memo[2] == self._alpha
        ):
            u_e = memo[3]
        else:
            u_e = aged_metric(u_t, oldest, now, self._alpha, self.config.metric)
            self._ue_memo = (version, now, self._alpha, u_e)
        return ids, timesteps, u_t, u_e

    def _drain(self, atom_ids: list[int]) -> Batch:
        batch = Batch(atoms=[(a, self.queues.pop_atom(a)) for a in atom_ids])
        self._invalidate_utilities()
        return batch

    def has_pending(self) -> bool:
        return len(self.queues) > 0

    def queue_depth(self) -> int:
        return sum(len(subs) for subs in self.queues.iter_subquery_lists())

    def iter_pending(self) -> Iterator[SubQuery]:
        for subs in self.queues.iter_subquery_lists():
            yield from subs

    # ------------------------------------------------------------------
    # Degraded-mode hooks (node failover, query cancellation)
    # ------------------------------------------------------------------
    def evacuate(self, now: float) -> list[tuple[float, SubQuery]]:
        """Pull every queued sub-query, tagged with its own true
        arrival time (the queues store per-sub-query arrivals)."""
        entries: list[tuple[float, SubQuery]] = []
        ids, _, _, _ = self.queues.active_view()
        for atom_id in ids:
            entries.extend(self.queues.pop_atom_entries(int(atom_id)))
        if entries:
            self._invalidate_utilities()
        return entries

    def readmit(self, entries: list[tuple[float, SubQuery]], now: float) -> None:
        """Re-admit failed-over sub-queries, oldest first so a fresh
        slot's age is set by its oldest member."""
        for arrival, sq in sorted(entries, key=lambda e: e[0]):
            self.queues.add(sq, arrival)
        if entries:
            self._invalidate_utilities()

    def cancel_query(self, query_id: int, now: float) -> int:
        removed = self.queues.remove_query(query_id)
        if removed:
            self._invalidate_utilities()
        return removed

    @property
    def current_alpha(self) -> float:
        return self._alpha
