"""Trajectory prediction and prefetching (paper §VII, future work).

The Discussion proposes extrapolating "the trajectory of jobs in time
and space (i.e. the velocity of the bounding box or time step delta
between consecutive queries) to predict which data atoms are accessed
by subsequent queries", prefetching them to avoid page faults and mask
random-read cost.

:class:`TrajectoryPredictor` keeps, per ordered job, the footprint and
cloud center of the last two completed queries; the prediction for the
next query translates the latest *atom footprint* by the observed
center drift (a tighter variant of the paper's bounding-box velocity —
see the class docstring) and advances the time step by the observed
delta.

:class:`PrefetchingJAWSScheduler` turns predictions into *prefetch
batches*: when the executor goes idle with no real work queued — which
is exactly the user think-time window of ordered jobs — it returns a
batch that reads the predicted atoms into the cache (no sub-queries,
no compute).  The next query then hits memory.  Prediction accuracy is
tracked for the bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.config import CostModel, SchedulerConfig
from repro.core.base import Batch
from repro.core.jaws import JAWSScheduler
from repro.grid.dataset import DatasetSpec
from repro.morton.index import MortonIndex
from repro.workload.query import Query

__all__ = ["TrajectoryPredictor", "PrefetchingJAWSScheduler"]


@dataclass
class _JobTrack:
    prev_center: Optional[np.ndarray] = None
    last_center: Optional[np.ndarray] = None
    last_atom_coords: Optional[np.ndarray] = None  # (n, 3) unique
    prev_timestep: Optional[int] = None
    last_timestep: Optional[int] = None


@dataclass
class TrajectoryPredictor:
    """Per-job trajectory extrapolation.

    The paper suggests extrapolating "the velocity of the bounding box"
    of consecutive queries; for diffuse particle clouds the box itself
    is far larger than the touched atom set, so we extrapolate more
    tightly: translate the *previous query's atom footprint* by the
    observed cloud-center drift (covering both the floor and ceiling
    atom shift of a sub-atom drift), at the extrapolated time step.
    """

    spec: DatasetSpec
    _tracks: dict[int, _JobTrack] = field(default_factory=dict)

    def observe(self, query: Query) -> None:
        """Record a completed query's spatial/temporal footprint."""
        track = self._tracks.setdefault(query.job_id, _JobTrack())
        # Circular-safe center is unnecessary at the drift scales of one
        # step; the arithmetic mean is what a front end would compute.
        track.prev_center, track.last_center = track.last_center, query.positions.mean(axis=0)
        coords = np.floor(
            np.mod(query.positions, self.spec.grid_side) / self.spec.atom_side
        ).astype(np.int64)
        track.last_atom_coords = np.unique(coords, axis=0)
        track.prev_timestep, track.last_timestep = track.last_timestep, query.timestep

    def forget(self, job_id: int) -> None:
        self._tracks.pop(job_id, None)

    def predict_atoms(self, job_id: int) -> list[int]:
        """Packed atom ids the job's next query is expected to touch,
        or ``[]`` if fewer than two observations exist."""
        track = self._tracks.get(job_id)
        if (
            track is None
            or track.prev_center is None
            or track.last_center is None
            or track.prev_timestep is None
            or track.last_atom_coords is None
        ):
            return []
        step_delta = track.last_timestep - track.prev_timestep
        next_ts = track.last_timestep + step_delta
        if not 0 <= next_ts < self.spec.n_timesteps:
            return []
        n_axis = self.spec.atoms_per_axis
        drift = (track.last_center - track.prev_center) / self.spec.atom_side
        # Sub-atom drift lands in either the same or the adjacent atom:
        # cover both bounds of each axis' shift.
        lo_shift = np.floor(drift).astype(np.int64)
        hi_shift = np.ceil(drift).astype(np.int64)
        shifts = sorted(
            {
                (sx, sy, sz)
                for sx in (int(lo_shift[0]), int(hi_shift[0]))
                for sy in (int(lo_shift[1]), int(hi_shift[1]))
                for sz in (int(lo_shift[2]), int(hi_shift[2]))
            }
        )
        index = MortonIndex(n_axis)
        pieces = []
        for shift in shifts:
            coords = (track.last_atom_coords + np.asarray(shift)) % n_axis
            pieces.append(index.encode(coords[:, 0], coords[:, 1], coords[:, 2]))
        codes = np.unique(np.concatenate(pieces))
        base = next_ts * self.spec.atoms_per_timestep
        return sorted(base + int(c) for c in codes)


class PrefetchingJAWSScheduler(JAWSScheduler):
    """JAWS + idle-time trajectory prefetching.

    Parameters
    ----------
    max_prefetch_atoms:
        Cap on atoms fetched per idle window (bounds cache pollution).
    """

    def __init__(
        self,
        spec: DatasetSpec,
        cost: CostModel,
        config: Optional[SchedulerConfig] = None,
        max_prefetch_atoms: int = 64,
    ) -> None:
        super().__init__(spec, cost, config)
        if max_prefetch_atoms < 1:
            raise ValueError("max_prefetch_atoms must be >= 1")
        self.name = "JAWS+prefetch"
        self.predictor = TrajectoryPredictor(spec)
        self.max_prefetch_atoms = max_prefetch_atoms
        self._pending_prefetch: list[int] = []
        self._predicted: dict[int, set[int]] = {}  # job -> last prediction
        self.prefetched_atoms = 0
        self.predicted_hits = 0
        self.predicted_total = 0

    def on_query_complete(self, query: Query, now: float) -> None:
        super().on_query_complete(query, now)
        # Score the previous prediction for this job, then roll forward.
        predicted = self._predicted.pop(query.job_id, None)
        if predicted is not None:
            actual = query.atoms(self.spec)
            self.predicted_total += len(actual)
            self.predicted_hits += len(predicted & actual)
        self.predictor.observe(query)
        atoms = self.predictor.predict_atoms(query.job_id)
        if atoms:
            # Accuracy is scored on the full prediction; the fetch
            # itself is capped to bound cache pollution per idle window.
            self._predicted[query.job_id] = set(atoms)
            self._pending_prefetch = atoms[: self.max_prefetch_atoms]

    def next_batch(self, now: float) -> Optional[Batch]:
        batch = super().next_batch(now)
        if batch is not None:
            return batch
        # Idle (think-time window): spend it prefetching.
        if self._pending_prefetch:
            atoms = self._pending_prefetch
            self._pending_prefetch = []
            self.prefetched_atoms += len(atoms)
            return Batch(atoms=[(a, []) for a in atoms])
        return None

    @property
    def prediction_accuracy(self) -> float:
        """Fraction of actually-touched atoms that were predicted."""
        return self.predicted_hits / self.predicted_total if self.predicted_total else 0.0
