"""Query lifecycle states (paper §IV-B).

``S(q) -> [WAIT, READY, QUEUE, DONE]``:

* ``WAIT`` — precedence constraints unsatisfied: the query's
  predecessor in its ordered job has not completed (in the engine,
  the query has not *arrived* yet — ordered-job followers arrive only
  after the predecessor's result plus user think time).
* ``READY`` — precedence satisfied, but gating constraints are not:
  some gating partner has not arrived.
* ``QUEUE`` — all constraints satisfied; the query's sub-queries are in
  the workload queues awaiting batch execution.
* ``DONE`` — completed.
"""

from __future__ import annotations

import enum

__all__ = ["QueryState"]


class QueryState(enum.Enum):
    WAIT = "wait"
    READY = "ready"
    QUEUE = "queue"
    DONE = "done"
