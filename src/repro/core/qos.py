"""Quality-of-service scheduling (paper §VII, future work).

The Discussion proposes "predictable and fair completion time
guarantees that are proportional to query size (e.g. short queries are
delayed less than long queries)", observing that "even with real-time
constraints that bound the completion time of queries, there is still
elasticity in the workload that permits the reordering of queries to
exploit data sharing."

:class:`QoSJAWSScheduler` implements that proposal on top of JAWS:

* every query receives a *proportional deadline*
  ``arrival + slack_factor × estimated_service`` where the service
  estimate is the query's own I/O + compute cost (so short queries get
  tight deadlines and long scans loose ones);
* while no deadline is at risk inside ``lookahead`` seconds, scheduling
  is plain JAWS (full elasticity, maximal sharing);
* once queries become *urgent*, their atoms are batched
  earliest-deadline-first (still draining each atom's whole queue, so
  sharing survives even in the EDF regime).

The scheduler tracks misses and tardiness for the QoS bench.
"""

from __future__ import annotations

from typing import Optional

from repro.config import CostModel, SchedulerConfig
from repro.core.base import Batch
from repro.core.jaws import JAWSScheduler
from repro.errors import ConfigurationError
from repro.grid.dataset import DatasetSpec
from repro.workload.query import Query, SubQuery

__all__ = ["QoSJAWSScheduler"]


class QoSJAWSScheduler(JAWSScheduler):
    """JAWS with proportional-deadline urgency override.

    Parameters
    ----------
    slack_factor:
        Deadline = arrival + slack_factor × estimated service time.
        Smaller = tighter guarantees, less elasticity.
    lookahead:
        Queries whose deadline falls within ``lookahead`` seconds of
        now are treated as urgent.
    """

    def __init__(
        self,
        spec: DatasetSpec,
        cost: CostModel,
        config: Optional[SchedulerConfig] = None,
        slack_factor: float = 20.0,
        lookahead: float = 5.0,
    ) -> None:
        super().__init__(spec, cost, config)
        if not isinstance(slack_factor, (int, float)) or isinstance(slack_factor, bool):
            raise ConfigurationError(
                f"slack_factor must be a number, got {type(slack_factor).__name__}"
            )
        if slack_factor <= 0:
            raise ConfigurationError("slack_factor must be positive")
        if not isinstance(lookahead, (int, float)) or isinstance(lookahead, bool):
            raise ConfigurationError(
                f"lookahead must be a number, got {type(lookahead).__name__}"
            )
        if lookahead < 0:
            raise ConfigurationError("lookahead must be non-negative")
        self.name = f"QoS-JAWS(slack={slack_factor:g})"
        self.slack_factor = float(slack_factor)
        self.lookahead = float(lookahead)
        self._deadline: dict[int, float] = {}  # query_id -> deadline
        self._atom_deadline: dict[int, float] = {}  # atom -> earliest deadline
        self.deadline_misses = 0
        self.completed = 0
        self.cancelled = 0
        self.total_tardiness = 0.0

    # ------------------------------------------------------------------
    def estimate_service(self, subqueries: list[SubQuery]) -> float:
        """Standalone service estimate: one read per touched atom plus
        per-position compute."""
        n_positions = sum(sq.n_positions for sq in subqueries)
        return len(subqueries) * self.cost.t_b + n_positions * self.cost.t_m

    def on_query_arrival(self, query: Query, subqueries: list[SubQuery], now: float) -> None:
        if subqueries:  # queries without local work carry no local deadline
            self._deadline[query.query_id] = now + self.slack_factor * self.estimate_service(
                subqueries
            )
        super().on_query_arrival(query, subqueries, now)

    def _enqueue(self, subqueries: list[SubQuery], now: float) -> None:
        super()._enqueue(subqueries, now)
        for sq in subqueries:
            deadline = self._deadline.get(sq.query.query_id)
            if deadline is None:
                continue
            cur = self._atom_deadline.get(sq.atom_id)
            if cur is None or deadline < cur:
                self._atom_deadline[sq.atom_id] = deadline

    # ------------------------------------------------------------------
    def next_batch(self, now: float) -> Optional[Batch]:
        urgent = [
            (deadline, atom)
            for atom, deadline in self._atom_deadline.items()
            if deadline <= now + self.lookahead and atom in self.queues
        ]
        if urgent:
            urgent.sort()
            chosen = [atom for _, atom in urgent[: self.config.batch_size]]
            # Morton order within the batch preserves disk sequentiality.
            batch = self._drain(sorted(chosen))
        else:
            batch = super().next_batch(now)
        if batch is not None:
            for atom, _ in batch.atoms:
                self._atom_deadline.pop(atom, None)
        return batch

    # ------------------------------------------------------------------
    def on_query_complete(self, query: Query, now: float) -> None:
        super().on_query_complete(query, now)
        deadline = self._deadline.pop(query.query_id, None)
        if deadline is None:
            return
        self.completed += 1
        if now > deadline:
            self.deadline_misses += 1
            self.total_tardiness += now - deadline

    def cancel_query(self, query_id: int, now: float) -> None:
        """A cancelled/shed query is a QoS outcome too: it counts as a
        deadline miss (the guarantee was not delivered), with tardiness
        accrued for however far past its deadline it already was.
        Earlier versions silently dropped cancelled queries from the
        accounting, understating the miss rate under faults and
        overload."""
        super().cancel_query(query_id, now)
        deadline = self._deadline.pop(query_id, None)
        self._atom_deadline = {
            atom: dl for atom, dl in self._atom_deadline.items() if atom in self.queues
        }
        if deadline is None:
            return
        self.cancelled += 1
        self.deadline_misses += 1
        if now > deadline:
            self.total_tardiness += now - deadline

    @property
    def _accounted(self) -> int:
        """Queries with a QoS outcome: completed plus cancelled."""
        return self.completed + self.cancelled

    @property
    def miss_rate(self) -> float:
        """Fraction of accounted (completed + cancelled) queries that
        missed their deadline — cancellations count as misses."""
        return self.deadline_misses / self._accounted if self._accounted else 0.0

    @property
    def mean_tardiness(self) -> float:
        """Mean lateness over accounted (completed + cancelled)
        queries, seconds."""
        return self.total_tardiness / self._accounted if self._accounted else 0.0
