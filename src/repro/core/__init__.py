"""The paper's contribution: NoShare, LifeRaft, and JAWS schedulers,
plus the metrics, gating machinery and adaptive-α controller they
build on."""

from repro.core.adaptive import AdaptiveAlphaController
from repro.core.alignment import align_jobs, alignment_score, overlap_matrix
from repro.core.base import Batch, RunObservation, Scheduler
from repro.core.gating import PrecedenceGraph
from repro.core.jaws import JAWSScheduler
from repro.core.liferaft import LifeRaftScheduler
from repro.core.merge import GatingManager, build_gating_offline
from repro.core.metrics import aged_metric, workload_throughput
from repro.core.noshare import NoShareScheduler
from repro.core.queues import WorkloadQueues
from repro.core.states import QueryState
from repro.core.two_level import select_two_level

__all__ = [
    "Scheduler",
    "Batch",
    "RunObservation",
    "NoShareScheduler",
    "LifeRaftScheduler",
    "JAWSScheduler",
    "AdaptiveAlphaController",
    "PrecedenceGraph",
    "GatingManager",
    "build_gating_offline",
    "align_jobs",
    "alignment_score",
    "overlap_matrix",
    "aged_metric",
    "workload_throughput",
    "select_two_level",
    "WorkloadQueues",
    "QueryState",
]
