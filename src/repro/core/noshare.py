"""NoShare baseline scheduler (paper §VI).

"NoShare evaluates each query independently (no I/O is shared) and in
arrival order."  To model multiple queries executing *simultaneously*
and competing for I/O — the contention the paper's introduction
motivates — active queries are interleaved round-robin, one sub-query
(atom) at a time, the way a conventional DBMS timeslices concurrent
scans.  No co-scheduling happens: a batch contains exactly one
sub-query of one query, even when other queries have pending work on
the same atom (they will read it again themselves; only the buffer
cache can save them, as it would under SQL Server).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

from repro.core.base import Batch, Scheduler
from repro.workload.query import Query, SubQuery

__all__ = ["NoShareScheduler"]


class NoShareScheduler(Scheduler):
    """Arrival-order, share-nothing execution with round-robin
    interleaving of concurrent queries.

    Parameters
    ----------
    max_concurrent:
        Maximum queries interleaved at once; arrivals beyond it wait in
        FIFO admission order (``None`` = unbounded, every active query
        competes).
    """

    name = "NoShare"

    def __init__(self, max_concurrent: Optional[int] = None) -> None:
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1 or None")
        self._max_concurrent = max_concurrent
        self._admission: deque[tuple[Query, deque[SubQuery], float]] = deque()
        self._active: deque[tuple[Query, deque[SubQuery], float]] = deque()

    def on_query_arrival(self, query: Query, subqueries: list[SubQuery], now: float) -> None:
        if not subqueries:
            return  # multi-node broadcast: no local work for this query
        entry = (query, deque(subqueries), now)
        if self._max_concurrent is not None and len(self._active) >= self._max_concurrent:
            self._admission.append(entry)
        else:
            self._active.append(entry)

    def _admit(self) -> None:
        while self._admission and (
            self._max_concurrent is None or len(self._active) < self._max_concurrent
        ):
            self._active.append(self._admission.popleft())

    def next_batch(self, now: float) -> Optional[Batch]:
        self._admit()
        if not self._active:
            return None
        query, subs, arrival = self._active.popleft()
        subquery = subs.popleft()
        if subs:
            self._active.append((query, subs, arrival))  # round-robin rotation
        else:
            self._admit()
        return Batch(atoms=[(subquery.atom_id, [subquery])])

    def has_pending(self) -> bool:
        return bool(self._active) or bool(self._admission)

    def queue_depth(self) -> int:
        return sum(len(subs) for _, subs, _ in self._active) + sum(
            len(subs) for _, subs, _ in self._admission
        )

    def iter_pending(self) -> Iterator[SubQuery]:
        for queue in (self._active, self._admission):
            for _, subs, _ in queue:
                yield from subs

    # ------------------------------------------------------------------
    # Degraded-mode hooks (node failover, query cancellation)
    # ------------------------------------------------------------------
    def evacuate(self, now: float) -> list[tuple[float, SubQuery]]:
        entries = [
            (arrival, sq)
            for queue in (self._active, self._admission)
            for _, subs, arrival in queue
            for sq in subs
        ]
        self._active.clear()
        self._admission.clear()
        return entries

    # readmit: the base implementation regroups by query and re-enters
    # through on_query_arrival, which is exactly NoShare admission.

    def cancel_query(self, query_id: int, now: float) -> int:
        removed = 0
        for queue in (self._active, self._admission):
            kept = []
            for query, subs, arrival in queue:
                if query.query_id == query_id:
                    removed += len(subs)
                else:
                    kept.append((query, subs, arrival))
            queue.clear()
            queue.extend(kept)
        return removed
