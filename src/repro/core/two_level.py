"""Two-level batch selection (paper §V, Fig. 6).

Inspired by Cello's coarse/fine disk scheduling: JAWS first selects a
*time step* — the one with the highest mean (aged) workload throughput,
which favours dense regions where I/O amortizes over the most queries —
then co-schedules up to ``k`` atoms from that time step whose workload
throughput exceeds the step's mean, executed in Morton order.

Interpretation notes (the paper leaves two means implicit):

* the *time-step score* is the sum of its pending atoms' aged metrics
  divided by the number of atoms per time step — i.e. a per-step
  density, so a step with many moderately contended atoms can beat a
  step with one hot atom ("tends to yield higher workload density");
* the *above-the-mean filter* averages only atoms with pending work in
  the chosen step (averaging in thousands of idle zero-throughput atoms
  would make the filter vacuous); when every pending atom sits exactly
  at the mean (e.g. a single atom), all qualify.
"""

from __future__ import annotations

import numpy as np

__all__ = ["select_two_level"]


def select_two_level(
    atom_ids: np.ndarray,
    timesteps: np.ndarray,
    u_t: np.ndarray,
    u_e: np.ndarray,
    k: int,
) -> list[int]:
    """Pick up to ``k`` atoms from the best time step.

    Parameters
    ----------
    atom_ids, timesteps, u_t, u_e:
        Parallel arrays over atoms with pending work: packed ids, their
        time steps, Eq. 1 and Eq. 2 values.
    k:
        Batch size (max atoms co-scheduled).

    Returns
    -------
    list of packed atom ids in Morton (ascending id) order.
    """
    if len(atom_ids) == 0:
        return []
    if k < 1:
        raise ValueError("k must be >= 1")

    # Coarse level: score each time step by summed aged metric (the
    # division by atoms-per-step is a constant and cancels in argmax).
    order = np.argsort(timesteps, kind="stable")
    ts_sorted = timesteps[order]
    cut = np.flatnonzero(np.diff(ts_sorted)) + 1
    group_starts = np.concatenate(([0], cut))
    sums = np.add.reduceat(u_e[order], group_starts)
    best_group = int(np.argmax(sums))
    best_ts = int(ts_sorted[group_starts[best_group]])

    # Fine level: above-mean atoms of the chosen step, best aged metric
    # first, capped at k.
    in_step = timesteps == best_ts
    step_ids = atom_ids[in_step]
    step_ut = u_t[in_step]
    step_ue = u_e[in_step]
    mean_ut = step_ut.mean()
    qualified = step_ut > mean_ut
    if not qualified.any():
        qualified = np.ones_like(qualified)
    cand_ids = step_ids[qualified]
    cand_ue = step_ue[qualified]
    # Highest aged metric first; ties (e.g. cached atoms, which share
    # U_t = 1/T_m) break toward ascending Morton code for locality.
    top = np.lexsort((cand_ids, -cand_ue))[:k]
    chosen = cand_ids[top]
    # Execute in Morton order: within one time step, packed id order is
    # Morton order.
    return sorted(int(a) for a in chosen)
