"""LifeRaft scheduler adapted to Turbulence (paper §III).

Data-driven batch processing: atoms are evaluated greedily in
decreasing (aged) workload-throughput order, one atom per pass, with
all pending sub-queries against the atom co-scheduled.  The age bias
``alpha`` is fixed at initialization — LifeRaft's starvation knob is
manual, not adaptive, and there is no two-level framework or
job-awareness:

* ``alpha = 0`` → the paper's ``LifeRaft_2`` (pure contention order,
  throughput-maximizing);
* ``alpha = 1`` → ``LifeRaft_1`` (arrival order, but queries
  referencing the same atom as the oldest request are still
  co-scheduled — which is what distinguishes it from NoShare).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import CostModel, SchedulerConfig
from repro.core.base import Batch
from repro.core.contention import ContentionSchedulerBase
from repro.grid.dataset import DatasetSpec

__all__ = ["LifeRaftScheduler"]


class LifeRaftScheduler(ContentionSchedulerBase):
    """Single-atom contention/age-ordered batch scheduler."""

    def __init__(
        self,
        spec: DatasetSpec,
        cost: CostModel,
        config: Optional[SchedulerConfig] = None,
        alpha: Optional[float] = None,
    ) -> None:
        config = config or SchedulerConfig()
        if alpha is not None:
            config = config.with_(alpha=alpha)
        # LifeRaft never adapts alpha nor batches beyond one atom.
        config = config.with_(
            adaptive_alpha=False, two_level=False, batch_size=1, job_aware=False
        )
        super().__init__(spec, cost, config)
        self.name = f"LifeRaft(alpha={config.alpha:g})"

    def next_batch(self, now: float) -> Optional[Batch]:
        ids, _, _, u_e = self._metric_view(now)
        if len(ids) == 0:
            return None
        # Tie-break equal metrics by packed atom id: cached atoms all
        # share U_t = 1/T_m, and draining ties in (timestep, Morton)
        # order preserves disk sequentiality and stencil locality.
        ties = np.flatnonzero(u_e == u_e.max())
        best = int(ids[ties].min())
        return self._drain([best])
