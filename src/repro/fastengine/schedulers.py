"""Columnar-queue scheduler subclasses and the fast factory.

Each fast scheduler is the exact scheduler with :class:`~repro.
fastengine.columnar.ColumnarQueues` swapped in, plus — for LifeRaft —
a specialized ``next_batch`` that evaluates the aged metric directly on
the packed columns instead of going through
:meth:`~repro.core.contention.ContentionSchedulerBase._metric_view`.

The LifeRaft fast path is restricted to the configurations where the
Eq. 2 evaluation reduces algebraically, **bit-exactly**, to a single
min–max over one column (``config.metric.normalize`` with ``alpha`` of
exactly 0 or 1 — the only alphas LifeRaft is instantiated with by the
factory):

* ``alpha = 0``: ``a_term * 0.0`` is ``+0.0`` for every element
  (min–max terms are nonnegative) and ``u_term * 1.0 + 0.0`` is
  ``u_term`` bitwise, so ``U_e == minmax(U_t)``.
* ``alpha = 1``: symmetrically ``U_e == minmax(now - oldest)``.
* With ``span > 0``, monotonicity of correctly-rounded subtraction and
  division gives ``minmax(x) <= 1.0`` elementwise with equality at the
  maximum, so ``U_e.max()`` is exactly ``1.0`` and the tie set is
  ``(x - lo) / span == 1.0`` — computed on the *divided* values, never
  on raw ``x`` (distinct raw values can round to the same quotient).
* With ``span <= 0`` the exact metric is all zeros: every atom ties.

Min/max/tie reductions are order-independent, so the fast path may use
the packed (swap-remove-permuted) columns directly; every other
consumer goes through the order-restoring ``active_view``.  Any other
configuration falls back to the inherited exact ``next_batch``, which
is itself bit-identical on top of ``ColumnarQueues``.

Tie-set caching
---------------

LifeRaft drains one atom per decision, and most decisions are *pure
drains*: no arrival, cancellation, or cache insert/evict touches a
queued atom in between (every such mutation bumps ``queues.version``).
Across a pure-drain stretch the cached tie set can be replayed in
ascending-id order without re-reducing the columns, because the next
exact evaluation is *forced* to reproduce it:

* ``alpha = 0``: the cache is only kept when the tie set equals the
  exact-max set ``{u == u.max()}`` bitwise (checked at build time; a
  rounding-collapsed tie, where ``u < max`` normalizes to exactly
  ``1.0``, disables caching).  Draining one max row leaves the max
  attained, the min attained (``span > 0`` means no max row is the
  min), and every other ``u`` unchanged — so the formula's inputs are
  unchanged and the next tie set is exactly the cache minus the
  drained atom.
* ``alpha = 1``: ages move with ``now``, so input-stability does not
  apply.  The cache is kept only when (a) the tie set equals the exact
  ``oldest``-argmin set and (b) a no-collapse margin holds:
  ``o_second - o_min > 2**-40 * (o_span + T)`` with ``T`` a finite
  bound on the clock (``max_sim_time``).  Argmin members always
  normalize to exactly ``1.0`` (their age is bitwise the max, so the
  numerator is bitwise the span); the margin guarantees no non-member
  quotient can round up to ``1.0`` at *any* later clock: each of the
  ~4 roundings contributes relative error ``2**-53`` plus absolute
  error ``2**-53 * now`` from the age subtraction, totalling under
  ``2**-48 * (o_span + T) / o_span`` of quotient error against a
  reserved headroom of ``2**-40 * (1 + T / o_span)`` — 256× slack.
  The margin also keeps the normalized span strictly positive, so the
  all-tie ``span <= 0`` branch cannot activate mid-stretch.

When the build-time conditions fail (astronomically rare in practice —
they require distinct metric values within ~2⁻⁴⁰ relative distance),
the scheduler simply recomputes every decision; correctness never
depends on the cache being usable.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.config import CostModel, EngineConfig, SchedulerConfig
from repro.core.base import Batch, Scheduler
from repro.core.jaws import JAWSScheduler
from repro.core.liferaft import LifeRaftScheduler
from repro.core.noshare import NoShareScheduler
from repro.fastengine.columnar import ColumnarQueues
from repro.grid.dataset import DatasetSpec
from repro.workload.trace import Trace

__all__ = [
    "FastJAWSScheduler",
    "FastLifeRaftScheduler",
    "make_fast_scheduler",
]


class FastLifeRaftScheduler(LifeRaftScheduler):
    """LifeRaft on columnar queues with a reduced-metric hot loop."""

    def __init__(
        self,
        spec: DatasetSpec,
        cost: CostModel,
        config: Optional[SchedulerConfig] = None,
        alpha: Optional[float] = None,
        time_bound: Optional[float] = None,
    ) -> None:
        super().__init__(spec, cost, config, alpha=alpha)
        # Second, narrowed reference to the same object: the inherited
        # machinery keeps using ``self.queues``.
        self._cqueues = ColumnarQueues(
            spec.atoms_per_timestep, capacity_hint=spec.atoms_per_timestep, cost=cost
        )
        self.queues = self._cqueues
        a = self.config.alpha
        self._fast_metric = self.config.metric.normalize and (a == 0.0 or a == 1.0)
        # Finite clock bound enabling the alpha=1 no-collapse margin
        # (see module docstring); None disables alpha=1 tie caching.
        self._time_bound = (
            time_bound if time_bound is not None and math.isfinite(time_bound) else None
        )
        # Cached tie set: ascending atom ids, next index to drain, and
        # the queue version the cache is valid for.
        self._tie_ids: list[int] = []
        self._tie_pos = 0
        self._tie_ver = -1

    def next_batch(self, now: float) -> Optional[Batch]:
        if not self._fast_metric:
            return super().next_batch(now)
        queues = self._cqueues
        if queues.version == self._tie_ver and self._tie_pos < len(self._tie_ids):
            # Pure-drain stretch: replay the cached tie set.
            best = self._tie_ids[self._tie_pos]
            self._tie_pos += 1
            batch = self._drain([best])
            self._tie_ver = queues.version
            return batch
        n, ids_col, ut_col, oldest_col = queues.dense_arrays()
        if n == 0:
            return None
        ids = ids_col[:n]
        alpha_zero = self.config.alpha == 0.0
        v = ut_col[:n] if alpha_zero else now - oldest_col[:n]
        lo = v.min()
        hi = v.max()
        span = hi - lo
        if span <= 0:
            tie_ids = ids
            if alpha_zero:
                # All u bitwise equal; draining preserves that.
                cacheable = True
            else:
                # Equal *computed* ages can hide distinct oldest values
                # that diverge at a later clock; cache only the bitwise
                # all-equal case.
                o = oldest_col[:n]
                cacheable = int(np.count_nonzero(o == o.min())) == n
        else:
            tie_ids = ids[(v - lo) / span == 1.0]
            if alpha_zero:
                cacheable = tie_ids.size == np.count_nonzero(v == hi)
            else:
                cacheable = False
                if self._time_bound is not None:
                    o = oldest_col[:n]
                    o_min = o.min()
                    if int(np.count_nonzero(o == o_min)) == tie_ids.size:
                        others = o[o != o_min]
                        o_span = float(o.max() - o_min)
                        margin = 2.0**-40 * (o_span + self._time_bound)
                        cacheable = float(others.min() - o_min) > margin
        if cacheable and tie_ids.size > 1:
            self._tie_ids = np.sort(tie_ids).tolist()
            self._tie_pos = 1
            batch = self._drain([self._tie_ids[0]])
            self._tie_ver = queues.version
            return batch
        self._tie_ver = -1
        return self._drain([int(tie_ids.min())])


class FastJAWSScheduler(JAWSScheduler):
    """JAWS on columnar queues.

    JAWS's two-level selection sums metrics per time step in active-view
    order (``np.add.reduceat``), so it keeps the inherited, order-exact
    ``next_batch``; the win is the O(1)-maintenance ``active_view`` and
    the shared fast engine components around it.
    """

    def __init__(
        self, spec: DatasetSpec, cost: CostModel, config: Optional[SchedulerConfig] = None
    ) -> None:
        super().__init__(spec, cost, config)
        self.queues = ColumnarQueues(
            spec.atoms_per_timestep, capacity_hint=spec.atoms_per_timestep, cost=cost
        )


def make_fast_scheduler(
    name: str,
    trace: Trace,
    engine: Optional[EngineConfig] = None,
    config: Optional[SchedulerConfig] = None,
) -> Scheduler:
    """Fast-engine twin of :func:`repro.engine.runner.make_scheduler`.

    Must mirror the exact factory's configuration construction verbatim
    so both engines run behaviourally identical scheduler instances.
    """
    engine = engine or EngineConfig()
    spec = trace.spec
    base = config or SchedulerConfig(
        alpha=0.5, adaptive_alpha=True, run_length=engine.run_length
    )
    key = name.lower()
    if key == "noshare":
        # Deque-driven arrival order: no queues, nothing to vectorize.
        return NoShareScheduler()
    if key == "liferaft1":
        return FastLifeRaftScheduler(
            spec, engine.cost, base, alpha=1.0, time_bound=engine.max_sim_time
        )
    if key == "liferaft2":
        return FastLifeRaftScheduler(
            spec, engine.cost, base, alpha=0.0, time_bound=engine.max_sim_time
        )
    if key == "jaws1":
        return FastJAWSScheduler(spec, engine.cost, base.with_(job_aware=False))
    if key == "jaws2":
        return FastJAWSScheduler(spec, engine.cost, base.with_(job_aware=True))
    from repro.engine.runner import SCHEDULER_NAMES

    raise ValueError(f"unknown scheduler {name!r}; choose from {SCHEDULER_NAMES}")
