"""The fast simulator: vectorized node components + batched event loop.

:class:`FastSimulator` is :class:`~repro.engine.simulator.Simulator`
with two substitutions:

1. **Fast node components** via the ``_node_cls`` dispatch seam:
   :class:`~repro.fastengine.storage.FastBufferCache` (no wall-clock
   overhead profiling) and :class:`~repro.fastengine.storage.
   FastDiskModel` (identity block mapping, no per-read B+-tree
   descent).  These are active in *every* fast run, including ones
   that fall back to the exact event loop.

2. **An inline quiet-stretch event loop** (the batching horizon of
   DESIGN.md §15): on the single-node, no-overload, no-checkpoint,
   no-armed-coordinator-crash configuration, a ``BATCH_DONE`` whose
   completion time precedes every heaped event is *inlined* — the
   sanitizer schedule hook, clock advance, ``max_sim_time`` guard,
   completion handling, sanitizer sweep and ``event_index`` increment
   run directly, skipping the heap push/pop and the per-event
   ``_dispatch`` preamble (the coordinator-crash probe, pure when
   unarmed, and the checkpoint WAL hook, absent when disabled).  The
   moment any heaped event is due at or before the batch completion —
   an arrival, a node crash, a reroute — the loop degrades to the
   exact push/pop sequence for that step, so cross-event ordering is
   governed by the same ``(time, kind, seq)`` heap invariants in both
   engines.  The event sequence counter is still advanced for inlined
   events, keeping heap tie-breaker numbering aligned with the exact
   engine.

Unsupported configurations (:func:`validate_fast_supported`) raise
:class:`~repro.errors.ConfigurationError` at construction; supported
but non-quiet configurations (overload protection, an armed
coordinator crash) transparently run the inherited exact loop on fast
components.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional, Sequence

from repro.config import EngineConfig
from repro.core.base import Scheduler
from repro.engine.events import EventKind
from repro.engine.results import RunResult
from repro.engine.simulator import Simulator, _Node
from repro.errors import ConfigurationError, LivelockError, SimTimeExceededError
from repro.fastengine.executor import FastBatchExecutor
from repro.fastengine.storage import FastBufferCache, FastDiskModel
from repro.workload.trace import Trace

__all__ = ["FastSimulator", "validate_fast_supported"]


def validate_fast_supported(
    config: Optional[EngineConfig],
    *,
    n_nodes: int = 1,
    shards: object = None,
) -> None:
    """Reject configurations the fast engine does not execute.

    Raises :class:`ConfigurationError` for sharded execution, clusters,
    and checkpointing; everything else (faults, overload, sanitizer)
    is supported bit-identically.
    """
    if shards is not None:
        raise ConfigurationError(
            "engine='fast' does not support sharded execution; "
            "drop the shard topology or use engine='exact'"
        )
    if n_nodes != 1:
        raise ConfigurationError(
            f"engine='fast' supports single-node runs only, got {n_nodes} nodes; "
            "use engine='exact' for cluster simulations"
        )
    if config is not None and config.checkpoint.enabled:
        raise ConfigurationError(
            "engine='fast' does not support crash-consistent checkpointing; "
            "disable checkpointing or use engine='exact'"
        )


class _FastNode(_Node):
    """Node with the timer-free cache and identity-mapped disk."""

    cache_cls = FastBufferCache
    disk_cls = FastDiskModel
    executor_cls = FastBatchExecutor


class FastSimulator(Simulator):
    """Bit-identical twin of :class:`Simulator` on columnar components."""

    _node_cls = _FastNode

    def __init__(
        self,
        trace: Trace,
        schedulers: Sequence[Scheduler],
        config: Optional[EngineConfig] = None,
        node_of: Optional[Callable[[int], int]] = None,
        replicas_of: Optional[Callable[[int], Sequence[int]]] = None,
    ) -> None:
        validate_fast_supported(config, n_nodes=len(schedulers) if schedulers else 1)
        super().__init__(trace, schedulers, config, node_of, replicas_of)

    def run(self) -> RunResult:
        if (
            len(self.nodes) != 1
            or self.overload is not None
            or self._checkpointer is not None
            or (self.injector is not None and self.injector.crash_at is not None)
        ):
            # Non-quiet configuration: the exact loop is correct (and
            # bit-identical) on top of the fast node components.
            return super().run()

        heap = self._heap
        node = self.nodes[0]
        scheduler = node.scheduler
        executor = node.executor
        sanitizer = self.sanitizer
        max_sim_time = self.config.max_sim_time
        dispatch = self._dispatch
        on_batch_done = self._on_batch_done
        heappop = heapq.heappop

        while True:
            # Drain every event at the current instant before making
            # scheduling decisions, so same-time arrivals can batch.
            while heap and heap[0].time <= self.clock:
                dispatch(heappop(heap))
            if not node.busy and node.up:
                batch = scheduler.next_batch(self.clock)
                if batch is not None and batch.n_atoms != 0:
                    outcome = executor.execute(batch, self.clock)
                    node.busy = True
                    node.inflight = batch
                    t_done = self.clock + outcome.duration
                    if heap and heap[0].time <= t_done:
                        # Another event is due first (or BATCH_DONE
                        # would tie with it): go through the heap so
                        # the (time, kind, seq) order decides.
                        self._push(
                            t_done,
                            EventKind.BATCH_DONE,
                            (0, node.epoch, batch, outcome.failed),
                        )
                    else:
                        # Quiet stretch: the completion is strictly
                        # next.  Inline push + pop + dispatch.
                        if sanitizer is not None:
                            sanitizer.on_schedule(t_done, EventKind.BATCH_DONE)
                        self._seq += 1
                        self.clock = t_done
                        if t_done > max_sim_time:
                            raise SimTimeExceededError(
                                "virtual clock exceeded "
                                f"max_sim_time={self.config.max_sim_time}",
                                **self._diagnostics(),
                            )
                        on_batch_done(0, node.epoch, batch, outcome.failed, now=t_done)
                        if sanitizer is not None:
                            sanitizer.after_event()
                        self.event_index += 1
                        continue
            if heap:
                ev = heappop(heap)
                self.clock = ev.time
                if self.clock > max_sim_time:
                    raise SimTimeExceededError(
                        f"virtual clock exceeded max_sim_time={self.config.max_sim_time}",
                        **self._diagnostics(),
                    )
                dispatch(ev)
                continue
            if self._any_pending():
                released = False
                if node.up:
                    released = scheduler.force_release(self.clock)
                if not released:
                    raise LivelockError(
                        "livelock: pending queries but no schedulable work",
                        **self._diagnostics(),
                    )
                self.forced_releases += 1
                continue
            break
        return self._result()
