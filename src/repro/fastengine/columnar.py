"""Struct-of-arrays workload queues for the fast engine.

:class:`ColumnarQueues` extends :class:`~repro.core.queues.WorkloadQueues`
with a *packed dense mirror* of the active slots: parallel numpy
columns (atom id, position count, oldest arrival, cached flag, and the
workload-throughput metric ``u_t``) kept contiguous at positions
``0..n-1`` by swap-remove, plus a monotonically increasing activation
sequence number per position.

Two properties make the mirror pay for itself:

* **free slices** — a scheduling decision reads ``column[:n]`` views
  with zero gather cost, where the base class rebuilds its active view
  with ``np.fromiter`` over the slot map plus four fancy-index gathers
  on every queue mutation;
* **incremental u_t** — the Eq. 1 workload-throughput metric is
  updated per mutated slot with scalar IEEE-754 arithmetic that is
  bit-identical to the vectorized
  :func:`~repro.core.metrics.workload_throughput` elementwise result,
  so the per-decision metric evaluation reduces to a handful of array
  ops over prebuilt columns.

The packed order is *not* the base class's dict-insertion order
(swap-remove permutes it); :meth:`ColumnarQueues.active_view` restores
the exact insertion order with a stable argsort over the activation
sequence numbers, so order-sensitive consumers (two-level float sums,
URC utility means, evacuation order) observe byte-identical arrays.

The base parallel structures stay fully maintained — every inherited
read path (``positions_pending``, ``pop_atom_entries``, the base
consistency audit) keeps working — and :meth:`check_consistency`
additionally audits the mirror against them, vectorized so the audit
itself honors the D400 no-per-element-loops rule.
"""

from __future__ import annotations

import numpy as np

from repro.config import CostModel
from repro.core.metrics import workload_throughput
from repro.core.queues import WorkloadQueues
from repro.workload.query import SubQuery

__all__ = ["ColumnarQueues"]


class ColumnarQueues(WorkloadQueues):
    """Workload queues with a packed columnar mirror of the hot state.

    Parameters
    ----------
    atoms_per_timestep / capacity_hint:
        As for :class:`~repro.core.queues.WorkloadQueues`.
    cost:
        Cost constants of the workload-throughput metric; needed to
        maintain the ``u_t`` column incrementally.
    """

    def __init__(
        self, atoms_per_timestep: int, capacity_hint: int = 0, *, cost: CostModel
    ) -> None:
        super().__init__(atoms_per_timestep, capacity_hint)
        self._cost = cost
        self._t_b = cost.t_b
        self._t_m = cost.t_m
        cap = len(self._atom_ids)
        # slot -> packed position (-1 while the slot is free) and its
        # inverse; Python lists because single-element reads/writes are
        # several times cheaper than numpy scalar indexing.
        self._d_pos: list[int] = [-1] * cap
        self._d_slots: list[int] = [0] * cap
        # Packed metric columns, parallel across positions 0..n-1.
        self._d_ids = np.zeros(cap, dtype=np.int64)
        self._d_counts = np.zeros(cap, dtype=np.int64)
        self._d_oldest = np.zeros(cap, dtype=np.float64)
        self._d_cached = np.zeros(cap, dtype=bool)
        self._d_ut = np.zeros(cap, dtype=np.float64)
        # Activation sequence per position: a fresh number on every
        # slot activation reproduces the base class's dict semantics
        # (re-activated atoms re-enter at the end of the active order).
        self._d_seq = np.zeros(cap, dtype=np.int64)
        self._d_n = 0
        self._seq_counter = 0

    # ------------------------------------------------------------------
    # Mirror maintenance
    # ------------------------------------------------------------------
    def _ut_scalar(self, count: int, cached: bool) -> float:
        """Scalar Eq. 1 workload throughput, bit-identical to the
        elementwise :func:`~repro.core.metrics.workload_throughput`
        (same IEEE-754 operations in the same order)."""
        w = float(count)
        denom = self._t_b * (0.0 if cached else 1.0) + self._t_m * w
        return w / denom if denom > 0.0 else 0.0

    def _grow(self) -> None:
        old = len(self._atom_ids)
        super()._grow()
        extra = len(self._atom_ids) - old
        self._d_pos.extend([-1] * extra)
        self._d_slots.extend([0] * extra)
        zero_i = np.zeros(extra, dtype=np.int64)
        self._d_ids = np.concatenate([self._d_ids, zero_i])
        self._d_counts = np.concatenate([self._d_counts, zero_i])
        self._d_oldest = np.concatenate([self._d_oldest, np.zeros(extra)])
        self._d_cached = np.concatenate([self._d_cached, np.zeros(extra, dtype=bool)])
        self._d_ut = np.concatenate([self._d_ut, np.zeros(extra)])
        self._d_seq = np.concatenate([self._d_seq, zero_i])

    def _release_mirror(self, slot: int) -> None:
        """Swap-remove ``slot``'s packed row, keeping columns dense."""
        p = self._d_pos[slot]
        last = self._d_n - 1
        if p != last:
            moved = self._d_slots[last]
            self._d_slots[p] = moved
            self._d_pos[moved] = p
            self._d_ids[p] = self._d_ids[last]
            self._d_counts[p] = self._d_counts[last]
            self._d_oldest[p] = self._d_oldest[last]
            self._d_cached[p] = self._d_cached[last]
            self._d_ut[p] = self._d_ut[last]
            self._d_seq[p] = self._d_seq[last]
        self._d_pos[slot] = -1
        self._d_n = last

    # ------------------------------------------------------------------
    # Mutation overrides (base structures stay authoritative)
    # ------------------------------------------------------------------
    def add(self, subquery: SubQuery, now: float) -> None:
        atom_id = subquery.atom_id
        slot = self._slot_of.get(atom_id)
        if slot is None:
            # Inlined base _slot_for + mirror activation.
            if not self._free:
                self._grow()
            slot = self._free.pop()
            self._slot_of[atom_id] = slot
            cached = atom_id in self._cached_atoms
            self._atom_ids[slot] = atom_id
            self._oldest[slot] = now
            self._cached[slot] = cached
            subs: list[SubQuery] = []
            arrivals: list[float] = []
            self._subqueries[slot] = subs
            self._arrivals[slot] = arrivals
            p = self._d_n
            self._d_n = p + 1
            self._d_pos[slot] = p
            self._d_slots[p] = slot
            self._d_ids[p] = atom_id
            self._d_cached[p] = cached
            self._d_seq[p] = self._seq_counter
            self._seq_counter += 1
            count = subquery.n_positions
            oldest = now
        else:
            subs = self._subqueries[slot]
            arrivals = self._arrivals[slot]
            cached = bool(self._cached[slot])
            p = self._d_pos[slot]
            oldest = float(self._oldest[slot])
            if now < oldest:
                oldest = now
                self._oldest[slot] = now
            count = int(self._counts[slot]) + subquery.n_positions
        self._counts[slot] = count
        self._d_counts[p] = count
        self._d_oldest[p] = oldest
        self._d_ut[p] = self._ut_scalar(count, cached)
        subs.append(subquery)
        arrivals.append(now)
        self._index_query(subquery.query.query_id, atom_id)
        self.total_positions += subquery.n_positions
        self._version += 1

    def pop_atom(self, atom_id: int) -> list[SubQuery]:
        slot = self._slot_of[atom_id]
        subs = super().pop_atom(atom_id)
        self._release_mirror(slot)
        return subs

    def _free_slot(self, atom_id: int, slot: int) -> None:
        super()._free_slot(atom_id, slot)
        self._release_mirror(slot)

    def remove_query(self, query_id: int) -> int:
        atoms = self._by_query.get(query_id)
        touched = [] if not atoms else [(a, self._slot_of[a]) for a in atoms]
        removed = super().remove_query(query_id)
        for atom_id, slot in touched:
            p = self._d_pos[slot]
            if p < 0:
                continue  # emptied: _free_slot already released the row
            count = int(self._counts[slot])
            self._d_counts[p] = count
            self._d_oldest[p] = self._oldest[slot]
            self._d_ut[p] = self._ut_scalar(count, bool(self._cached[slot]))
        return removed

    def on_cache_insert(self, atom_id: int) -> None:
        self._cached_atoms.add(atom_id)
        slot = self._slot_of.get(atom_id)
        if slot is not None:
            self._cached[slot] = True
            p = self._d_pos[slot]
            self._d_cached[p] = True
            self._d_ut[p] = self._ut_scalar(int(self._counts[slot]), True)
            self._version += 1

    def on_cache_evict(self, atom_id: int) -> None:
        self._cached_atoms.discard(atom_id)
        slot = self._slot_of.get(atom_id)
        if slot is not None:
            self._cached[slot] = False
            p = self._d_pos[slot]
            self._d_cached[p] = False
            self._d_ut[p] = self._ut_scalar(int(self._counts[slot]), False)
            self._version += 1

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def dense_arrays(self) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
        """``(n, atom_ids, u_t, oldest_arrival)`` packed columns.

        The arrays are the *live* backing columns (only ``[:n]`` is
        meaningful) in packed order, which is NOT the active-view
        insertion order.  Callers must treat them as read-only and use
        only order-independent reductions (min/max/ties), or restore
        order through :meth:`active_view`.
        """
        return self._d_n, self._d_ids, self._d_ut, self._d_oldest

    def active_view(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if self._view is not None and self._view_version == self._version:
            return self._view
        n = self._d_n
        if n == 0:
            view = (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0),
                np.empty(0, dtype=bool),
            )
        else:
            # Stable ascending activation order == the base class's
            # dict-insertion order (sequence numbers are unique).
            order = np.argsort(self._d_seq[:n], kind="stable")
            view = (
                self._d_ids[:n][order],
                self._d_counts[:n][order],
                self._d_oldest[:n][order],
                self._d_cached[:n][order],
            )
        for arr in view:
            arr.flags.writeable = False
        self._view = view
        self._view_version = self._version
        return view

    # ------------------------------------------------------------------
    # Sanitizer checkpoint
    # ------------------------------------------------------------------
    def check_consistency(self) -> list[str]:
        """Base audit plus a vectorized mirror-coherence audit."""
        problems = super().check_consistency()
        n = self._d_n
        if n != len(self._slot_of):
            problems.append(
                f"mirror holds {n} packed rows for {len(self._slot_of)} active slots"
            )
            return problems
        pos = np.asarray(self._d_pos, dtype=np.int64)
        if int((pos >= 0).sum()) != n:
            problems.append("mirror position map marks a freed slot as packed")
        if n == 0:
            return problems
        slots = np.asarray(self._d_slots[:n], dtype=np.int64)
        if not np.array_equal(pos[slots], np.arange(n, dtype=np.int64)):
            problems.append("mirror slot/position maps are not inverse")
        if not np.array_equal(self._d_ids[:n], self._atom_ids[slots]):
            problems.append("mirror atom-id column diverges from slot labels")
        if not np.array_equal(self._d_counts[:n], self._counts[slots]):
            problems.append("mirror count column diverges from slot counts")
        if not np.array_equal(self._d_oldest[:n], self._oldest[slots]):
            problems.append("mirror oldest column diverges from slot ages")
        if not np.array_equal(self._d_cached[:n], self._cached[slots]):
            problems.append("mirror cached column diverges from slot phi flags")
        expected_ut = workload_throughput(
            self._d_counts[:n], self._d_cached[:n], self._cost
        )
        if not np.array_equal(self._d_ut[:n], expected_ut):
            problems.append("mirror u_t column diverges from Eq. 1 recomputation")
        if len(np.unique(self._d_seq[:n])) != n:
            problems.append("mirror activation sequence numbers are not unique")
        return problems
