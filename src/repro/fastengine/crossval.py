"""Exact-vs-fast cross-validation: the fast engine's equivalence gate.

The exact simulator is the bit-identity oracle.  For a given (trace,
scheduler, engine, faults) configuration this harness runs both
engines, then checks three things:

1. **Result identity** — the two :class:`~repro.engine.results.
   RunResult` summaries are equal field-by-field after
   :func:`~repro.fuzz.oracles.normalize_result` (which strips only
   wall-clock instrumentation, exactly the quantity the fast engine
   stops measuring).
2. **Completion-time bit identity** — per-query response times compare
   equal as ``float.hex`` strings, so even sign-of-zero differences
   (invisible to ``==``) fail the gate.
3. **Decision-sequence identity** — every non-empty scheduling
   decision (node index, decision clock as ``float.hex``, drained atom
   ids with their sub-query counts, in order) feeds a SHA-256 digest
   on both engines; the digests must match.  Empty/None decisions are
   excluded: they carry no schedulable work and their count is an
   artifact of idle-loop shape, not of scheduling behaviour.

``python -m repro.fastengine.crossval`` runs the full scheduler ×
faults matrix on a deterministic trace and exits non-zero on the first
divergence — this is the ``fastengine-crossval`` CI job.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import sys
from dataclasses import dataclass
from typing import Callable, Optional

from repro.config import EngineConfig, FaultConfig, SchedulerConfig
from repro.core.base import Batch, Scheduler
from repro.engine.results import RunResult
from repro.engine.runner import SCHEDULER_NAMES, make_scheduler
from repro.engine.simulator import Simulator
from repro.fastengine.engine import FastSimulator
from repro.fastengine.schedulers import make_fast_scheduler
from repro.fuzz.oracles import results_equivalent
from repro.workload.trace import Trace

__all__ = ["CrossValOutcome", "crossval_pair", "crossval_matrix", "main"]


@dataclass(frozen=True)
class CrossValOutcome:
    """One configuration's verdict."""

    scheduler: str
    faults: bool
    match: bool
    divergence: Optional[str]
    exact_digest: str
    fast_digest: str
    n_queries: int

    @property
    def label(self) -> str:
        return f"{self.scheduler}/{'faults' if self.faults else 'clean'}"


def _instrument_decisions(sim: Simulator) -> "hashlib._Hash":
    """Wrap every node scheduler's ``next_batch`` to hash the decision
    sequence; returns the (live) digest object."""
    digest = hashlib.sha256()
    for idx, node in enumerate(sim.nodes):
        scheduler = node.scheduler
        inner = scheduler.next_batch

        def wrapper(
            now: float,
            _inner: Callable[[float], Optional[Batch]] = inner,
            _idx: int = idx,
        ) -> Optional[Batch]:
            batch = _inner(now)
            if batch is not None and batch.n_atoms != 0:
                atoms = ",".join(f"{a}:{len(subs)}" for a, subs in batch.atoms)
                digest.update(f"{_idx}|{now.hex()}|{atoms}\n".encode())
            return batch

        setattr(scheduler, "next_batch", wrapper)
    return digest


def _run_instrumented(
    sim: Simulator,
) -> tuple[RunResult, str]:
    digest = _instrument_decisions(sim)
    result = sim.run()
    return result, digest.hexdigest()


def crossval_pair(
    trace: Trace,
    scheduler: str,
    engine: Optional[EngineConfig] = None,
    config: Optional[SchedulerConfig] = None,
    faults: Optional[FaultConfig] = None,
) -> CrossValOutcome:
    """Run ``scheduler`` over ``trace`` on both engines and compare."""
    engine = engine or EngineConfig()
    if faults is not None:
        engine = engine.with_(faults=faults)

    exact_sched: Scheduler = make_scheduler(scheduler, trace, engine, config)
    exact_result, exact_digest = _run_instrumented(
        Simulator(trace, [exact_sched], engine)
    )
    fast_sched: Scheduler = make_fast_scheduler(scheduler, trace, engine, config)
    fast_result, fast_digest = _run_instrumented(
        FastSimulator(trace, [fast_sched], engine)
    )

    divergence = results_equivalent(exact_result, fast_result)
    if divergence is None:
        exact_hex = [float(t).hex() for t in exact_result.response_times]
        fast_hex = [float(t).hex() for t in fast_result.response_times]
        if exact_hex != fast_hex:
            first = next(
                i for i, (a, b) in enumerate(zip(exact_hex, fast_hex)) if a != b
            )
            divergence = (
                f"response_times[{first}] differs in float.hex: "
                f"{exact_hex[first]} != {fast_hex[first]}"
            )
    if divergence is None and exact_digest != fast_digest:
        divergence = (
            f"scheduler decision digests differ: {exact_digest[:16]} != "
            f"{fast_digest[:16]}"
        )
    return CrossValOutcome(
        scheduler=scheduler,
        faults=engine.faults.enabled,
        match=divergence is None,
        divergence=divergence,
        exact_digest=exact_digest,
        fast_digest=fast_digest,
        n_queries=exact_result.n_queries,
    )


def crossval_faults(seed: int = 3) -> FaultConfig:
    """The standard fault mix of the cross-validation matrix: transient
    errors, permanent losses (cancellations on one node), slow reads."""
    return FaultConfig(
        seed=seed,
        transient_fault_rate=0.05,
        permanent_loss_rate=0.002,
        slow_read_rate=0.1,
        slow_read_factor=4.0,
    )


def crossval_matrix(
    trace: Trace,
    engine: Optional[EngineConfig] = None,
    schedulers: tuple[str, ...] = SCHEDULER_NAMES,
    fault_seed: int = 3,
) -> list[CrossValOutcome]:
    """The full scheduler × {clean, faults} matrix."""
    outcomes: list[CrossValOutcome] = []
    for name in schedulers:
        outcomes.append(crossval_pair(trace, name, engine))
        outcomes.append(
            crossval_pair(trace, name, engine, faults=crossval_faults(fault_seed))
        )
    return outcomes


def main(argv: Optional[list[str]] = None) -> int:
    from repro.experiments.common import (
        ExperimentScale,
        standard_engine,
        standard_params,
        standard_spec,
    )
    from repro.workload.cache import cached_generate_trace

    parser = argparse.ArgumentParser(
        prog="repro-fastengine-crossval",
        description="Cross-validate the fast engine against the exact oracle.",
    )
    parser.add_argument("--jobs", type=int, default=30, help="workload jobs")
    parser.add_argument("--span", type=float, default=550.0, help="workload span (s)")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument("--fault-seed", type=int, default=3, help="fault RNG seed")
    parser.add_argument(
        "--scheduler",
        action="append",
        choices=SCHEDULER_NAMES,
        help="restrict to specific scheduler(s); default all five",
    )
    args = parser.parse_args(argv)

    params = dataclasses.replace(
        standard_params(ExperimentScale.SMALL, seed=args.seed),
        n_jobs=args.jobs,
        span=args.span,
    )
    trace = cached_generate_trace(standard_spec(), params, speedup=8.0)
    engine = standard_engine()
    schedulers = tuple(args.scheduler) if args.scheduler else SCHEDULER_NAMES

    outcomes = crossval_matrix(
        trace, engine, schedulers=schedulers, fault_seed=args.fault_seed
    )
    failures = 0
    for out in outcomes:
        status = "OK  " if out.match else "FAIL"
        print(
            f"{status} {out.label:<18} queries={out.n_queries:<5} "
            f"digest={out.fast_digest[:16]}"
        )
        if not out.match:
            failures += 1
            print(f"     divergence: {out.divergence}")
    total = len(outcomes)
    print(f"{total - failures}/{total} configurations bit-identical")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
