"""The vectorized fast engine (DESIGN.md §15).

A second execution engine for the same traces, schedulers and
configurations as the exact simulator, built struct-of-arrays:
columnar workload queues with packed metric columns
(:class:`~repro.fastengine.columnar.ColumnarQueues`), reduced bit-exact
metric evaluation for the LifeRaft hot loop
(:mod:`repro.fastengine.schedulers`), timer-free storage components
(:mod:`repro.fastengine.storage`), and an inline quiet-stretch event
loop (:class:`~repro.fastengine.engine.FastSimulator`).

The exact engine remains the oracle: every configuration the fast
engine accepts must produce a bit-identical
:class:`~repro.engine.results.RunResult` (modulo wall-clock
instrumentation), enforced by :mod:`repro.fastengine.crossval` in CI.
"""

from repro.fastengine.columnar import ColumnarQueues
from repro.fastengine.engine import FastSimulator, validate_fast_supported
from repro.fastengine.schedulers import (
    FastJAWSScheduler,
    FastLifeRaftScheduler,
    make_fast_scheduler,
)
from repro.fastengine.storage import FastBufferCache, FastDiskModel

__all__ = [
    "ColumnarQueues",
    "FastBufferCache",
    "FastDiskModel",
    "FastJAWSScheduler",
    "FastLifeRaftScheduler",
    "FastSimulator",
    "make_fast_scheduler",
    "validate_fast_supported",
]
