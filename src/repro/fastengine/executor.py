"""Batch executor specialized for the fast engine.

:class:`FastBatchExecutor` replays :meth:`~repro.engine.executor.
BatchExecutor.execute` with the identical float-accumulation order
(``duration`` is a sequential IEEE-754 sum, so its term order is part
of the bit-identity contract) and the identical cache/disk call
sequence, but restructures the Python around it:

* **Per-query overshoot screening** — a query whose stencil keys are
  all 13 (no halo overshoot anywhere) can never expand a neighbor
  read; its sub-queries skip the per-sub-query key gather entirely.
  Measured on the fig10 SMALL workload, ~75% of all sub-query neighbor
  lookups return empty, most of them from such queries.
* **Inlined fault-free reads** — with no injector attached the
  ``_charge_read`` indirection collapses to ``disk.read_atom``
  (identical returned seconds).
* **Table-driven neighbor codes** — the shared
  :func:`~repro.grid.interpolation.neighbor_atoms_from_keys` memo-miss
  path runs half a dozen vectorized Morton ops on one-element arrays
  (~100µs of NumPy dispatch per miss).  The fast executor precomputes
  the full per-timestep Morton encode/decode tables once (a few
  hundred entries for reproduction-scale grids) and resolves misses
  with pure-Python integer lookups.  The outputs are integers from the
  same arithmetic, so equivalence is exact by construction.
* Hoisted attribute lookups in the per-atom loop.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Batch
from repro.engine.executor import BatchExecutor, BatchOutcome
from repro.grid.dataset import DatasetSpec
from repro.grid.interpolation import _SUBCOMBO_TABLE, stencil_overshoot_keys
from repro.morton.codec import morton_decode, morton_encode_unchecked
from repro.workload.query import SubQuery

__all__ = ["FastBatchExecutor"]

_NO_NEIGHBORS: list[int] = []


class _MortonTables:
    """Full encode/decode tables for one grid's within-timestep codes."""

    def __init__(self, spec: DatasetSpec) -> None:
        self.n_axis = spec.atoms_per_axis
        self.atoms_per_timestep = spec.atoms_per_timestep
        codes = np.arange(spec.atoms_per_timestep, dtype=np.uint64)
        xs, ys, zs = morton_decode(codes)
        self.decode: list[tuple[int, int, int]] = list(
            zip(xs.tolist(), ys.tolist(), zs.tolist())
        )
        axis = np.arange(self.n_axis, dtype=np.int64)
        gx, gy, gz = np.meshgrid(axis, axis, axis, indexing="ij")
        self.encode: list[list[list[int]]] = (
            morton_encode_unchecked(gx, gy, gz).astype(np.int64).tolist()
        )


class FastBatchExecutor(BatchExecutor):
    """Bit-identical executor with a columnar-friendly hot loop."""

    _qkeys: dict[int, "np.ndarray | None"]
    _ncodes: dict[tuple[int, tuple[int, ...]], list[int]]
    _tables: _MortonTables

    def _neighbor_codes(
        self, primary_morton: int, key_tuple: tuple[int, ...]
    ) -> list[int]:
        """Within-timestep neighbor Morton codes, matching
        :func:`~repro.grid.interpolation.neighbor_atoms_from_keys`
        (sorted unique codes from the same floor-mod arithmetic)."""
        ncodes = getattr(self, "_ncodes", None)
        if ncodes is None:
            ncodes = self._ncodes = {}
            self._tables = _MortonTables(self.spec)
        memo_key = (primary_morton, key_tuple)
        codes = ncodes.get(memo_key)
        if codes is None:
            tables = self._tables
            deltas = {combo for key in key_tuple for combo in _SUBCOMBO_TABLE[key]}
            px, py, pz = tables.decode[primary_morton]
            n_axis = tables.n_axis
            encode = tables.encode
            codes = sorted(
                {
                    encode[(px + dx) % n_axis][(py + dy) % n_axis][(pz + dz) % n_axis]
                    for dx, dy, dz in deltas
                }
            )
            ncodes[memo_key] = codes
        return codes

    def _neighbors(self, sq: SubQuery) -> list[int]:
        """Exactly ``sq.neighbor_atoms(self.spec, self.interp)``, with a
        per-query screen for the no-overshoot common case."""
        query = sq.query
        if query.op != "interp":
            return _NO_NEIGHBORS
        spec = self.spec
        interp = self.interp
        if interp.half_width <= spec.halo:
            return _NO_NEIGHBORS
        qkeys = getattr(self, "_qkeys", None)
        if qkeys is None:
            qkeys = self._qkeys = {}
        qid = query.query_id
        if qid not in qkeys:
            cache_key = (interp.order, spec.halo, spec.atom_side, spec.grid_side)
            cached = query._stencil_keys
            if cached is None or cached[0] != cache_key:
                keys = stencil_overshoot_keys(spec, query.positions, interp)
                query._stencil_keys = (cache_key, keys)
            else:
                keys = cached[1]
            # None == the whole query never overshoots its halos.
            qkeys[qid] = keys if bool((keys != 13).any()) else None
        stored = qkeys[qid]
        if stored is None:
            return _NO_NEIGHBORS
        distinct = set(stored[sq.position_indices].tolist())
        distinct.discard(13)
        if not distinct:
            return _NO_NEIGHBORS
        atom_id = sq.atom_id
        apt = spec.atoms_per_timestep
        base = atom_id - atom_id % apt
        codes = self._neighbor_codes(atom_id % apt, tuple(sorted(distinct)))
        return [base + c for c in codes]

    def execute(self, batch: Batch, now: float) -> BatchOutcome:
        duration = self.cost.t_overhead
        failed: list[SubQuery] = []
        cache_access = self.cache.access
        disk_read = self.disk.read_atom
        stats = self.stats
        t_m = self.cost.t_m
        fault_free = self.injector is None
        neighbors = self._neighbors
        for atom_id, subqueries in batch.atoms:
            if not cache_access(atom_id, now):
                if fault_free:
                    duration += disk_read(atom_id)
                else:
                    seconds, ok = self._charge_read(atom_id)
                    duration += seconds
                    if not ok:
                        # The atom never materialized: undo the cache
                        # insert and hand its sub-queries back.
                        self.cache.drop([atom_id])
                        stats.failed_atoms += 1
                        failed.extend(subqueries)
                        continue
            stats.atoms_executed += 1
            for sq in subqueries:
                required_atoms = neighbors(sq)
                if required_atoms:
                    stats.neighbor_reads += len(required_atoms)
                    for required in required_atoms:
                        if not cache_access(required, now):
                            duration += disk_read(required)
                n_positions = sq.n_positions
                duration += t_m * n_positions
                stats.positions += n_positions
        stats.batches += 1
        stats.busy_seconds += duration
        outcome = BatchOutcome(duration, failed)
        if self.sanitizer is not None:
            self.sanitizer.check_batch(batch, outcome)
        return outcome
