"""Timer-free cache and identity-mapped disk for the fast engine.

Both classes are behaviourally bit-identical to their exact-engine
bases for everything that can reach a :class:`~repro.engine.results.
RunResult`:

* :class:`FastBufferCache` replays :meth:`~repro.storage.buffer.
  BufferCache.access` without the four ``perf_counter_ns`` reads per
  access — the Table I overhead instrumentation.  ``stats.overhead_ns``
  therefore stays 0, which is exactly the field every bit-identity
  comparison already strips
  (:func:`repro.fuzz.oracles.normalize_result`).
* :class:`FastDiskModel` exploits that the clustered B+-tree maps key
  ``k`` to block ``k`` (:meth:`~repro.storage.btree.BPlusTree.
  build_clustered` inserts ``(k, k)``), replacing the per-read tree
  descent with a bounds check.  Costs, sequential-streak accounting,
  degraded mode and the ``KeyError`` contract are replicated verbatim;
  the tree itself is still built so the ``tree`` diagnostic property
  keeps working.
"""

from __future__ import annotations

from repro.config import CostModel
from repro.storage.buffer import BufferCache
from repro.storage.disk import DiskModel

__all__ = ["FastBufferCache", "FastDiskModel"]


class FastBufferCache(BufferCache):
    """:class:`BufferCache` minus the wall-clock overhead profiling."""

    def access(self, atom_id: int, now: float) -> bool:
        if atom_id in self._resident:
            self.policy.on_access(atom_id, now)
            self.stats.hits += 1
            return True

        if len(self._resident) >= self.capacity:
            victim = self.policy.choose_victim()
            if victim not in self._resident:
                raise RuntimeError(f"policy chose non-resident victim {victim}")
            self._resident.remove(victim)
            self.policy.on_evict(victim)
            self.stats.evictions += 1
            for cb in self._on_evict:
                cb(victim)

        self._resident.add(atom_id)
        self.policy.on_insert(atom_id, now)
        self.policy.on_access(atom_id, now)
        self.stats.misses += 1
        for cb in self._on_insert:
            cb(atom_id)
        return False

    def run_boundary(self) -> None:
        self.policy.on_run_boundary()


class FastDiskModel(DiskModel):
    """:class:`DiskModel` with the identity block mapping inlined."""

    def __init__(self, cost: CostModel, n_atoms: int, tree_order: int = 64) -> None:
        super().__init__(cost, n_atoms, tree_order)
        self._n_atoms = n_atoms

    def read_atom(self, atom_id: int, cost_factor: float = 1.0) -> float:
        if not 0 <= atom_id < self._n_atoms:
            raise KeyError(f"atom {atom_id} not on this disk")
        last = self._last_block
        sequential = last is not None and atom_id == last + 1
        self._last_block = atom_id
        seconds = (
            self._cost.t_b
            * (self._cost.seq_discount if sequential else 1.0)
            * cost_factor
            * self._degrade_factor
        )
        stats = self.stats
        stats.reads += 1
        if sequential:
            stats.sequential_reads += 1
        stats.seconds += seconds
        return seconds

    def failed_read(self, atom_id: int) -> float:
        if not 0 <= atom_id < self._n_atoms:
            raise KeyError(f"atom {atom_id} not on this disk")
        seconds = self._cost.t_b * self._degrade_factor
        self.stats.failed_reads += 1
        self.stats.seconds += seconds
        self.reset_locality()
        return seconds
