"""Adversarial scenario fuzzer: randomized workload shapes, fault
schedules, overload bursts and adversarial clients composed from a
single seed, run under ``sanitize=True`` with end-of-run chaos oracles,
and shrunk to minimal JSON reproducers on failure.

See DESIGN.md §11 for the spec schema, oracle list, shrinking
algorithm and reproducer format; ``repro fuzz --help`` for the CLI.
"""

from repro.fuzz.build import MaterializedScenario, build_scenario, materialize
from repro.fuzz.campaign import (
    CampaignResult,
    load_reproducer,
    replay_file,
    run_campaign,
)
from repro.fuzz.oracles import ORACLE_NAMES, results_equivalent
from repro.fuzz.runner import FuzzFailure, ScenarioOutcome, execute_scenario
from repro.fuzz.shrink import shrink
from repro.fuzz.spec import ENTRY_KINDS, ScenarioEntry, ScenarioSpec

__all__ = [
    "ENTRY_KINDS",
    "ORACLE_NAMES",
    "CampaignResult",
    "FuzzFailure",
    "MaterializedScenario",
    "ScenarioEntry",
    "ScenarioOutcome",
    "ScenarioSpec",
    "build_scenario",
    "execute_scenario",
    "load_reproducer",
    "materialize",
    "replay_file",
    "run_campaign",
    "shrink",
]
