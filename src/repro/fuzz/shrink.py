"""Deterministic delta-debugging over typed scenario specs.

Given a failing :class:`~repro.fuzz.spec.ScenarioSpec` and a predicate
that re-runs a candidate and reports whether it still fails *with the
same typed signature*, :func:`shrink` searches for a smaller spec that
preserves the failure:

1. **Entry ddmin** — remove chunks of the entry list (halves, then
   quarters, down to single entries), restarting from the largest
   granularity after every successful reduction, exactly the classic
   ddmin schedule.
2. **Numeric reduction** — once no entry can be dropped, shrink scalar
   parameters: halve the base workload (``n_jobs`` to a floor of 4,
   ``span`` to a floor of 30s), halve burst amplitudes and wave sizes,
   halve fault rates, and narrow coordinator-crash windows, each
   accepted only when the failure signature survives.

The two passes alternate until a full round makes no progress or the
evaluation budget runs out.  The shrinker itself draws no randomness
and evaluates candidates in a fixed order, so the same failing spec
always shrinks to the same minimal reproducer — the property that makes
``repro fuzz repro <file>`` replays trustworthy.  Evaluated candidates
are memoized by canonical JSON, so restarts never pay twice.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.fuzz.spec import ScenarioEntry, ScenarioSpec

__all__ = ["shrink"]

#: Floors that keep a shrunk scenario materializable.
_MIN_JOBS = 4
_MIN_SPAN = 30.0

#: Per-kind numeric parameters the shrinker may halve, with their
#: floors.  A parameter already at (or below) its floor is left alone.
_HALVABLE: Dict[str, Tuple[Tuple[str, float], ...]] = {
    "flash_crowd": (("factor", 1.5),),
    "regime_shift": (("n_jobs", 1),),
    "morton_hostile": (("n_jobs", 1),),
    "quota_starvation": (("n_jobs", 1),),
    "gating_deadlock": (("n_campaigns", 1),),
    "disk_faults": (
        ("transient_rate", 0.0025),
        ("loss_rate", 0.0005),
        ("slow_rate", 0.0025),
    ),
    "overload": (),
    "retry_gaming": (("max_resubmits", 1),),
    "node_crash": (),
    "coordinator_crash": (),
    "query_class": (),
    # Materialization clamps crash counts to n_shards - 1, so halving
    # the shard count never produces an unbuildable schedule.
    "shard_crash_storm": (("n_shards", 2), ("n_crashes", 1)),
    "ownership_churn": (("n_shards", 2), ("n_crashes", 1)),
}


class _Budget:
    def __init__(self, max_evals: int) -> None:
        self.remaining = max_evals

    def spend(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


def _make_checker(
    still_fails: Callable[[ScenarioSpec], bool], budget: _Budget
) -> Callable[[ScenarioSpec], bool]:
    cache: Dict[str, bool] = {}

    def check(candidate: ScenarioSpec) -> bool:
        key = candidate.canonical()
        if key in cache:
            return cache[key]
        if not budget.spend():
            return False
        try:
            verdict = bool(still_fails(candidate))
        except Exception:  # noqa: BLE001 - a candidate the builder rejects
            verdict = False
        cache[key] = verdict
        return verdict

    return check


def _ddmin_entries(
    spec: ScenarioSpec, check: Callable[[ScenarioSpec], bool]
) -> ScenarioSpec:
    entries = list(spec.entries)
    n = 2
    while len(entries) >= 1 and n <= len(entries):
        chunk = max(1, len(entries) // n)
        reduced = False
        start = 0
        while start < len(entries):
            candidate_entries = entries[:start] + entries[start + chunk :]
            candidate = spec.with_(entries=tuple(candidate_entries))
            if check(candidate):
                entries = candidate_entries
                n = max(2, n - 1)  # restart coarse: classic ddmin
                reduced = True
                break
            start += chunk
        if not reduced:
            if chunk == 1:
                break
            n = min(len(entries), n * 2)
    return spec.with_(entries=tuple(entries))


def _numeric_candidates(spec: ScenarioSpec) -> List[ScenarioSpec]:
    """Every single-step numeric reduction, in a fixed order."""
    out: List[ScenarioSpec] = []
    if spec.n_jobs // 2 >= _MIN_JOBS:
        out.append(spec.with_(n_jobs=spec.n_jobs // 2))
    if spec.span / 2 >= _MIN_SPAN:
        out.append(spec.with_(span=spec.span / 2))
    for idx, entry in enumerate(spec.entries):
        for param, floor in _HALVABLE.get(entry.kind, ()):
            value = entry.get(param)
            if value is None:
                continue
            halved = value / 2 if isinstance(value, float) else value // 2
            if halved < floor or halved == value:
                continue
            new_entry = entry.with_params(**{param: halved})
            out.append(_replace_entry(spec, idx, new_entry))
        if entry.kind == "coordinator_crash":
            lo = float(entry.get("window_lo_frac", 0.2))
            hi = float(entry.get("window_hi_frac", 0.8))
            mid = round((lo + hi) / 2, 4)
            if mid > lo:
                out.append(
                    _replace_entry(
                        spec, idx, entry.with_params(window_hi_frac=mid)
                    )
                )
    return out


def _replace_entry(
    spec: ScenarioSpec, index: int, entry: ScenarioEntry
) -> ScenarioSpec:
    entries = list(spec.entries)
    entries[index] = entry
    return spec.with_(entries=tuple(entries))


def shrink(
    spec: ScenarioSpec,
    still_fails: Callable[[ScenarioSpec], bool],
    max_evals: int = 300,
) -> Tuple[ScenarioSpec, int]:
    """Minimize ``spec`` while ``still_fails`` keeps returning True.

    Returns the smallest spec found and the number of candidate
    evaluations spent.  ``still_fails`` must compare typed failure
    signatures, not just "something went wrong" — otherwise the shrink
    walks to a different bug.
    """
    budget = _Budget(max_evals)
    check = _make_checker(still_fails, budget)
    current = spec
    while True:
        before = current.canonical()
        current = _ddmin_entries(current, check)
        for candidate in _numeric_candidates(current):
            if check(candidate):
                current = candidate
                break  # restart both passes from the reduced spec
        if current.canonical() == before or budget.remaining <= 0:
            break
    return current, max_evals - budget.remaining
