"""Fuzz campaigns: seeded fan-out, shrinking, reproducers, coverage.

A campaign derives ``runs`` scenario seeds from one master seed,
builds a :class:`~repro.fuzz.spec.ScenarioSpec` per seed, and executes
them via :func:`repro.parallel.map_many` in **salvage mode** (``jobs >
1`` fans out over supervised worker processes with bit-identical
results — scenario execution is a pure function of the spec).  A
scenario whose *worker* dies, hangs past the watchdog deadline or
breaches the RSS ceiling costs one typed failure record instead of the
campaign: it surfaces in the summary as a ``harness``-kind failure
alongside the ordinary oracle/error kinds.  Failing scenarios are
shrunk serially — one :func:`repro.fuzz.shrink.shrink` per distinct
failure signature — and each minimal spec is written as a JSON
*reproducer* that ``repro fuzz repro <file>`` replays bit-identically.
(Harness failures are not shrunk: a worker crash is a property of the
real machine, not of the spec.)

The campaign summary is canonical JSON (sorted keys, fixed float
``repr``): running the same campaign twice produces byte-identical
summaries, which CI asserts.

**Crash-resumable campaigns** (``journal_path``): every settled
scenario is appended — keyed by its spec's content digest, CRC-guarded
— to a :class:`~repro.parallel.journal.CampaignJournal` the moment it
completes.  A driver killed at any point (SIGKILL included) resumes by
re-running with the same arguments and journal path: completed digests
are skipped, their recorded outcomes merged back in spec order, and
the resumed summary is byte-identical to an uninterrupted run's
(asserted by ``tests/test_fuzz_resume.py`` and the CI
``interrupt-soak`` job).

The **coverage ledger** counts, per (scenario feature × oracle) cell,
how many executed scenarios exercised that combination — the fuzz
analogue of branch coverage: an empty row means a stressor the oracles
never watched, an empty column an oracle no scenario armed.
"""

from __future__ import annotations

import functools
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.fuzz.build import build_scenario
from repro.fuzz.runner import FuzzFailure, ScenarioOutcome, execute_scenario
from repro.fuzz.shrink import shrink
from repro.fuzz.spec import SPEC_FORMAT_VERSION, ScenarioSpec
from repro.parallel import CampaignJournal, Outcome, SupervisorConfig, map_many

__all__ = ["CampaignResult", "load_reproducer", "replay_file", "run_campaign"]


@dataclass
class CampaignResult:
    """Everything one campaign produced."""

    seed: int
    runs: int
    quick: bool
    outcomes: List[ScenarioOutcome]
    reproducers: List[dict[str, Any]] = field(default_factory=list)
    reproducer_paths: List[Path] = field(default_factory=list)
    resumed_scenarios: int = 0  # outcomes replayed from the journal

    @property
    def failures(self) -> List[ScenarioOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def coverage(self) -> Dict[str, Dict[str, int]]:
        """feature -> oracle -> number of scenarios covering the pair."""
        ledger: Dict[str, Dict[str, int]] = {}
        for outcome in self.outcomes:
            for feature in outcome.features:
                row = ledger.setdefault(feature, {})
                for oracle in outcome.oracles_checked:
                    row[oracle] = row.get(oracle, 0) + 1
        return {f: dict(sorted(row.items())) for f, row in sorted(ledger.items())}

    def to_json(self) -> dict[str, Any]:
        return {
            "format": SPEC_FORMAT_VERSION,
            "seed": self.seed,
            "runs": self.runs,
            "quick": self.quick,
            "scenarios": [o.to_json() for o in self.outcomes],
            "n_failures": len(self.failures),
            "coverage": self.coverage(),
            "reproducers": [r["spec_digest"] for r in self.reproducers],
        }

    def summary_json(self) -> str:
        """Canonical text: byte-identical across repeat campaigns (and
        across interrupted-then-resumed campaigns — ``resumed_scenarios``
        is deliberately *not* part of the summary)."""
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))


def _scenario_seeds(seed: int, runs: int) -> List[int]:
    rng = random.Random(f"{seed}:campaign")
    return [rng.randrange(2**31) for _ in range(runs)]


def _harness_failure_outcome(spec: ScenarioSpec, outcome: Outcome) -> ScenarioOutcome:
    """Wrap a supervisor-level task failure as a scenario outcome.

    ``kind="harness"`` keeps these apart from oracle/engine failures:
    they describe the *execution environment* (a worker crash, a hang,
    an RSS breach), carry no oracle coverage, and are never shrunk.
    """
    assert outcome.failure is not None
    return ScenarioOutcome(
        spec=spec,
        features=tuple(sorted({e.kind for e in spec.entries})),
        oracles_checked=(),
        failure=FuzzFailure(
            kind="harness",
            name=outcome.failure.reason,
            stage="supervise",
            detail=outcome.failure.describe(),
        ),
    )


def run_campaign(
    seed: int,
    runs: int,
    jobs: int = 1,
    quick: bool = False,
    out_dir: Optional[Path] = None,
    shrink_budget: int = 200,
    journal_path: Optional[Path] = None,
    supervisor: Optional[SupervisorConfig] = None,
    engine_kind: str = "exact",
) -> CampaignResult:
    """Explore ``runs`` scenarios derived from ``seed``.

    ``jobs`` fans scenario execution out via
    :func:`repro.parallel.map_many` (salvage mode; ``supervisor`` arms
    the watchdog/resource guards); shrinking always runs serially in
    this process (each shrink is itself a chain of dependent runs).
    One reproducer is written per distinct failure signature to
    ``out_dir`` (created on demand; nothing is written when the
    campaign is clean or ``out_dir`` is None).

    ``journal_path`` makes the campaign crash-resumable: settled
    scenarios are journaled as they complete and skipped on re-run —
    see the module docstring.  The journal header pins ``(seed, runs,
    quick)``; resuming with different arguments raises
    :class:`~repro.errors.JournalError`.

    ``engine_kind`` selects the engine for each scenario's base stage
    (see :func:`~repro.fuzz.runner.execute_scenario`); a non-default
    kind is pinned in the journal header too, so an exact campaign's
    journal can never silently resume a fast one or vice versa.
    """
    from repro.engine.runner import ENGINE_KINDS

    if engine_kind not in ENGINE_KINDS:
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"unknown engine kind {engine_kind!r}; choose from {ENGINE_KINDS}"
        )
    # Exact campaigns keep the bare callable: binding the default kind
    # via partial would change the call signature seen by tests that
    # substitute execute_scenario with a (spec)-only wrapper.
    run_scenario: Callable[[ScenarioSpec], ScenarioOutcome] = (
        execute_scenario
        if engine_kind == "exact"
        else functools.partial(execute_scenario, engine_kind=engine_kind)
    )
    specs = [build_scenario(s, quick=quick) for s in _scenario_seeds(seed, runs)]
    digests = [spec.digest() for spec in specs]

    journal: Optional[CampaignJournal] = None
    recorded: Dict[str, Any] = {}
    if journal_path is not None:
        meta: Dict[str, Any] = {
            "kind": "fuzz-campaign",
            "format": SPEC_FORMAT_VERSION,
            "seed": seed,
            "runs": runs,
            "quick": quick,
        }
        if engine_kind != "exact":
            # Only when non-default, so pre-existing exact journals
            # keep matching their recorded headers.
            meta["engine_kind"] = engine_kind
        journal, recorded = CampaignJournal.open(Path(journal_path), meta=meta)

    by_digest: Dict[str, ScenarioOutcome] = {}
    resumed = 0
    for spec, digest in zip(specs, digests):
        if digest in by_digest:
            continue
        payload = recorded.get(digest)
        if payload is not None:
            by_digest[digest] = ScenarioOutcome.from_json(dict(payload), spec)
            resumed += 1

    todo = [spec for spec, digest in zip(specs, digests) if digest not in by_digest]
    try:
        if todo:
            todo_by_digest = {spec.digest(): spec for spec in todo}

            def on_outcome(task: Outcome) -> None:
                spec = todo_by_digest[task.digest]
                scenario_outcome = (
                    task.value
                    if task.ok
                    else _harness_failure_outcome(spec, task)
                )
                by_digest[task.digest] = scenario_outcome
                if journal is not None:
                    journal.append(task.digest, scenario_outcome.to_json())

            map_many(
                run_scenario,
                todo,
                jobs=jobs,
                salvage=True,
                supervisor=supervisor,
                on_outcome=on_outcome,
            )
    finally:
        if journal is not None:
            journal.close()

    outcomes = [by_digest[digest] for digest in digests]
    result = CampaignResult(
        seed=seed,
        runs=runs,
        quick=quick,
        outcomes=outcomes,
        resumed_scenarios=resumed,
    )
    shrunk_signatures: set[tuple[str, str]] = set()
    for outcome in result.failures:
        assert outcome.failure is not None
        signature = outcome.failure.signature
        if outcome.failure.kind == "harness":
            continue  # machine-level failure: nothing spec-shaped to shrink
        if signature in shrunk_signatures:
            continue  # one reproducer per distinct bug
        shrunk_signatures.add(signature)

        def still_fails(candidate: ScenarioSpec) -> bool:
            replayed = run_scenario(candidate)
            return (
                replayed.failure is not None
                and replayed.failure.signature == signature  # noqa: B023
            )

        minimal, evals = shrink(outcome.spec, still_fails, max_evals=shrink_budget)
        reproducer = {
            "format": SPEC_FORMAT_VERSION,
            "spec": minimal.to_json(),
            "spec_digest": minimal.digest(),
            "original_digest": outcome.spec.digest(),
            "original_entries": len(outcome.spec.entries),
            "shrunk_entries": len(minimal.entries),
            "shrink_evals": evals,
            "failure": outcome.failure.to_json(),
        }
        result.reproducers.append(reproducer)
        if out_dir is not None:
            out_dir.mkdir(parents=True, exist_ok=True)
            path = out_dir / f"repro-{minimal.digest()}.json"
            path.write_text(json.dumps(reproducer, sort_keys=True, indent=2) + "\n")
            result.reproducer_paths.append(path)
    return result


def load_reproducer(path: Path) -> tuple[ScenarioSpec, dict[str, Any]]:
    """Parse a reproducer file into (spec, recorded-failure dict)."""
    data = json.loads(Path(path).read_text())
    version = int(data.get("format", SPEC_FORMAT_VERSION))
    if version != SPEC_FORMAT_VERSION:
        raise ValueError(
            f"unsupported reproducer format {version} "
            f"(this build reads format {SPEC_FORMAT_VERSION})"
        )
    return ScenarioSpec.from_json(data["spec"]), dict(data.get("failure", {}))


def replay_file(path: Path) -> ScenarioOutcome:
    """Re-execute a reproducer's spec (determinism makes this replay
    the recorded failure bit-identically, or prove the bug fixed)."""
    spec, _recorded = load_reproducer(path)
    return execute_scenario(spec)
