"""Typed scenario specs: the unit the fuzzer generates, runs and shrinks.

A :class:`ScenarioSpec` is a small, JSON-serializable value object that
fully determines one adversarial scenario: the base workload shape, a
list of typed :class:`ScenarioEntry` stressors layered on top (flash
crowds, fault schedules, overload knobs, adversarial clients), and the
scheduler under test.  Everything downstream — trace materialization,
engine configuration, oracle selection — is a pure function of the
spec, which is what makes delta-debugging shrinking
(:mod:`repro.fuzz.shrink`) and reproducer replay
(``repro fuzz repro <file>``) bit-identical.

Entry kinds
-----------
========================  =================================================
kind                      stressor
========================  =================================================
``query_class``           include one base job class (``tracking`` /
                          ``batched`` / ``oneoff``) in the workload mix
``flash_crowd``           Fig.-9-style burst of one-off queries from
                          distinct new users over a short window
``regime_shift``          a second job wave with a different class mix
                          arriving partway through the trace
``morton_hostile``        one-off queries whose positions stride atom
                          boundaries — pathological Morton locality
``quota_starvation``      a flood of batch-class jobs from a handful of
                          users probing the weighted fair quotas
``gating_deadlock``       heavily-overlapping ordered tracking campaigns
                          sharing region and start step (gating stress)
``disk_faults``           transient / permanent-loss / slow-read rates
``node_crash``            node 0 down/up window (sub-queries defer)
``coordinator_crash``     seeded crash window + checkpoint/resume, with
                          the crash/resume bit-identity oracle armed
``overload``              admission control + brownout + quotas enabled
``retry_gaming``          adversarial client resubmitting rejected jobs
                          at exactly ``clock + retry_after``
``shard_crash_storm``     sharded replay with seeded shard crashes drawn
                          from a window (cross-shard conservation oracle)
``ownership_churn``       sharded replay with staggered explicit crashes
                          so surviving shards adopt ranges repeatedly
========================  =================================================
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Tuple

__all__ = ["ENTRY_KINDS", "ScenarioEntry", "ScenarioSpec"]

#: Every entry kind the builder can generate and the shrinker understands.
ENTRY_KINDS = (
    "query_class",
    "flash_crowd",
    "regime_shift",
    "morton_hostile",
    "quota_starvation",
    "gating_deadlock",
    "disk_faults",
    "node_crash",
    "coordinator_crash",
    "overload",
    "retry_gaming",
    "shard_crash_storm",
    "ownership_churn",
)

#: Reproducer/spec serialization format; bump on incompatible change.
SPEC_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ScenarioEntry:
    """One typed stressor: a kind plus its scalar parameters.

    ``params`` values are JSON scalars only (str/int/float/bool), so an
    entry round-trips losslessly through the reproducer format and the
    shrinker can transform parameters without understanding their
    semantics beyond kind-specific reduction rules.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ENTRY_KINDS:
            raise ValueError(f"unknown scenario entry kind {self.kind!r}")
        object.__setattr__(self, "params", dict(self.params))

    def get(self, key: str, default: Any = None) -> Any:
        return self.params.get(key, default)

    def with_params(self, **overrides: Any) -> "ScenarioEntry":
        """Copy with some parameters replaced (shrinker transforms)."""
        return ScenarioEntry(self.kind, {**self.params, **overrides})

    def to_json(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": dict(sorted(self.params.items()))}

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ScenarioEntry":
        return cls(kind=str(data["kind"]), params=dict(data.get("params", {})))


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete adversarial scenario.

    Attributes
    ----------
    seed:
        Master seed: base-trace generation and every entry's private
        stream derive from it (entries may carry their own sub-seeds).
    scheduler:
        Factory name from :data:`repro.engine.runner.SCHEDULER_NAMES`.
    n_jobs / span:
        Base workload size and submit-time spread (engine seconds).
    n_timesteps / atoms_per_axis:
        Dataset extent (``DatasetSpec.small`` parameters).
    entries:
        Ordered typed stressors; the shrinker's primary search space.
    """

    seed: int
    scheduler: str
    n_jobs: int = 12
    span: float = 120.0
    n_timesteps: int = 6
    atoms_per_axis: int = 4
    entries: Tuple[ScenarioEntry, ...] = ()

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if self.span <= 0:
            raise ValueError("span must be positive")
        object.__setattr__(self, "entries", tuple(self.entries))

    # -- queries over entries ------------------------------------------------
    def entries_of(self, kind: str) -> Tuple[ScenarioEntry, ...]:
        return tuple(e for e in self.entries if e.kind == kind)

    def has(self, kind: str) -> bool:
        return any(e.kind == kind for e in self.entries)

    def first(self, kind: str) -> ScenarioEntry | None:
        for entry in self.entries:
            if entry.kind == kind:
                return entry
        return None

    def with_(self, **kwargs: Any) -> "ScenarioSpec":
        return replace(self, **kwargs)

    # -- serialization -------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        return {
            "format": SPEC_FORMAT_VERSION,
            "seed": self.seed,
            "scheduler": self.scheduler,
            "n_jobs": self.n_jobs,
            "span": self.span,
            "n_timesteps": self.n_timesteps,
            "atoms_per_axis": self.atoms_per_axis,
            "entries": [e.to_json() for e in self.entries],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        version = int(data.get("format", SPEC_FORMAT_VERSION))
        if version != SPEC_FORMAT_VERSION:
            raise ValueError(
                f"unsupported scenario spec format {version} "
                f"(this build reads format {SPEC_FORMAT_VERSION})"
            )
        return cls(
            seed=int(data["seed"]),
            scheduler=str(data["scheduler"]),
            n_jobs=int(data.get("n_jobs", 12)),
            span=float(data.get("span", 120.0)),
            n_timesteps=int(data.get("n_timesteps", 6)),
            atoms_per_axis=int(data.get("atoms_per_axis", 4)),
            entries=tuple(
                ScenarioEntry.from_json(e) for e in data.get("entries", ())
            ),
        )

    def canonical(self) -> str:
        """Canonical JSON text: the digest/byte-identity basis."""
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """Short stable content hash (reproducer file names, summaries)."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()[:12]
