"""Execute one scenario through the engine and its chaos oracles.

:func:`execute_scenario` is the unit of work the campaign fans out via
:func:`repro.parallel.map_many` — a top-level pure function of its
:class:`~repro.fuzz.spec.ScenarioSpec`, so the pool path is
bit-identical to the inline path.  A scenario runs in up to three
stages:

``base``
    Materialize the spec and replay it with ``sanitize=True``; run the
    ``conservation`` and ``metric_sanity`` oracles on the result
    (``no_starvation`` passes by construction when the run returns).
``gaming``
    When the spec carries a ``retry_gaming`` entry: an adversarial
    client takes the typed rejections from the previous run and
    resubmits each rejected job at exactly ``clock + retry_after`` —
    probing the admission controller at the precise instant its token
    bucket refills — for up to ``max_resubmits`` rounds.  All oracles
    re-run against the augmented trace.
``crash_resume``
    When the spec carries a ``coordinator_crash`` entry: re-run the
    base scenario with the crash window armed and checkpointing into a
    temporary directory, require the crash to actually fire
    (``crash_effective``), restore from the latest snapshot, resume,
    and require the resumed result to be bit-identical to the
    uninterrupted base result (``crash_resume``).
``shard``
    When the spec carries a ``shard_crash_storm`` or
    ``ownership_churn`` entry: replay the trace through the sharded
    control plane (:func:`repro.shard.run_sharded`) with the armed
    shard-crash plan, overload admission and the single-coordinator
    sanitizer stripped (the sharded path models neither), then run the
    terminal-state ``conservation`` oracle on the merged result and
    the cross-shard ``shard_conservation`` oracle on the control
    plane's cluster-wide counters.  A
    :class:`~repro.errors.ShardProtocolError` raised mid-run becomes
    its own typed failure.

Any violated oracle or unexpected engine exception becomes a typed
failure ``(kind, name)`` — the signature the shrinker preserves while
minimizing the spec.

A planted test-only bug (for exercising the shrinker end-to-end) hides
behind the ``REPRO_FUZZ_PLANT_BUG`` environment variable: when set, any
scenario combining a ``flash_crowd`` with ``disk_faults`` fails the
synthetic ``planted_bug`` oracle.  Never set outside the test suite.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.config import CheckpointConfig, OverloadConfig
from repro.engine.results import RunResult
from repro.engine.runner import make_scheduler, run_trace
from repro.engine.simulator import Simulator
from repro.errors import (
    CoordinatorCrash,
    InvariantViolation,
    LivelockError,
    SimTimeExceededError,
)
from repro.fuzz.build import MaterializedScenario, materialize
from repro.fuzz.oracles import (
    check_conservation,
    check_metric_sanity,
    check_shard_conservation,
    results_equivalent,
)
from repro.fuzz.spec import ScenarioSpec
from repro.workload.job import Job
from repro.workload.trace import Trace

__all__ = ["FuzzFailure", "ScenarioOutcome", "execute_scenario"]

#: Environment switch for the synthetic shrinker-exercise bug.
PLANT_BUG_ENV = "REPRO_FUZZ_PLANT_BUG"

_CHECKPOINT_EVERY = 16


@dataclass(frozen=True)
class FuzzFailure:
    """One typed failure: the unit of shrinking and deduplication.

    ``kind`` is ``"oracle"`` (an end-of-run oracle reported a
    violation) or ``"error"`` (the engine raised).  ``name`` identifies
    the oracle or exception type; ``signature`` — the pair — is what a
    shrunk scenario must preserve to count as "the same bug".
    """

    kind: str
    name: str
    stage: str
    detail: str

    @property
    def signature(self) -> Tuple[str, str]:
        return (self.kind, self.name)

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "stage": self.stage,
            "detail": self.detail,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "FuzzFailure":
        return cls(
            kind=str(data["kind"]),
            name=str(data["name"]),
            stage=str(data["stage"]),
            detail=str(data["detail"]),
        )


@dataclass
class ScenarioOutcome:
    """Everything the campaign records about one executed scenario."""

    spec: ScenarioSpec
    features: Tuple[str, ...]
    oracles_checked: Tuple[str, ...] = ()
    failure: Optional[FuzzFailure] = None
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.failure is None

    def to_json(self) -> dict[str, Any]:
        return {
            "digest": self.spec.digest(),
            "seed": self.spec.seed,
            "scheduler": self.spec.scheduler,
            "features": list(self.features),
            "oracles_checked": list(self.oracles_checked),
            "failure": self.failure.to_json() if self.failure else None,
            "stats": dict(sorted(self.stats.items())),
        }

    @classmethod
    def from_json(cls, data: dict[str, Any], spec: ScenarioSpec) -> "ScenarioOutcome":
        """Rebuild an outcome recorded in a campaign journal.

        ``to_json``/``from_json`` round-trip exactly — same features,
        oracles, failure and stats — which is what makes a resumed
        campaign's summary byte-identical to an uninterrupted run's.
        The spec is supplied by the caller (campaign specs regenerate
        deterministically from the master seed) and must match the
        recorded digest.
        """
        if str(data.get("digest")) != spec.digest():
            raise ValueError(
                f"journaled outcome digest {data.get('digest')!r} does not "
                f"match spec digest {spec.digest()!r}"
            )
        failure = data.get("failure")
        return cls(
            spec=spec,
            features=tuple(str(f) for f in data.get("features", ())),
            oracles_checked=tuple(str(o) for o in data.get("oracles_checked", ())),
            failure=FuzzFailure.from_json(failure) if failure else None,
            stats=dict(data.get("stats", {})),
        )


def _classify(exc: Exception, stage: str) -> FuzzFailure:
    """Map an engine exception to its typed failure."""
    if isinstance(exc, (LivelockError, SimTimeExceededError)):
        # Permanent starvation is an oracle outcome, not a crash: the
        # engine's watchdogs are the detection mechanism.
        return FuzzFailure("oracle", "no_starvation", stage, str(exc))
    if isinstance(exc, InvariantViolation):
        return FuzzFailure(
            "error", f"InvariantViolation:{exc.invariant}", stage, str(exc)
        )
    return FuzzFailure("error", type(exc).__name__, stage, str(exc))


def _base_engine_kind(scenario: MaterializedScenario, engine_kind: str) -> str:
    """The engine the base stage actually runs on.

    ``"fast"`` downgrades per-scenario to ``"exact"`` when the fuzzer
    generated a configuration the fast engine rejects (checkpointing) —
    a campaign probes the configuration space, and an unsupported
    combination is the campaign's problem to route, not a finding.
    """
    if engine_kind == "fast":
        from repro.errors import ConfigurationError
        from repro.fastengine import validate_fast_supported

        try:
            validate_fast_supported(scenario.engine)
        except ConfigurationError:
            return "exact"
    return engine_kind


def _run(
    trace: Trace,
    scenario: MaterializedScenario,
    spec: ScenarioSpec,
    engine_kind: str = "exact",
) -> RunResult:
    return run_trace(
        trace, spec.scheduler, engine=scenario.engine, engine_kind=engine_kind
    )


def _check_result(
    trace: Trace, result: RunResult, scenario: MaterializedScenario, stage: str
) -> Optional[FuzzFailure]:
    detail = check_conservation(trace, result)
    if detail is not None:
        return FuzzFailure("oracle", "conservation", stage, detail)
    detail = check_metric_sanity(result, scenario.engine)
    if detail is not None:
        return FuzzFailure("oracle", "metric_sanity", stage, detail)
    return None


# ---------------------------------------------------------------------------
# Retry-gaming adversary
# ---------------------------------------------------------------------------
def _resubmit_rejected(trace: Trace, result: RunResult) -> Optional[Trace]:
    """Clone each sampled rejected job back into the trace at exactly
    ``clock + retry_after`` — the admission controller's own hint, taken
    literally.  Returns ``None`` when there is nothing to resubmit."""
    samples = [
        s
        for s in result.overload.get("rejection_samples", ())
        if s.get("retry_after") is not None
    ]
    if not samples:
        return None
    by_id = {job.job_id: job for job in trace.jobs}
    next_job = max(by_id) + 1
    next_query = max(q.query_id for j in trace.jobs for q in j.queries) + 1
    clones: List[Job] = []
    for sample in samples:
        original = by_id.get(int(sample["job_id"]))
        if original is None:
            continue  # a clone from an earlier round; resubmit once only
        at = float(sample["clock"]) + float(sample["retry_after"])
        queries = [
            dataclasses.replace(q, query_id=next_query + i, job_id=next_job)
            for i, q in enumerate(original.queries)
        ]
        next_query += len(queries)
        clones.append(
            dataclasses.replace(
                original, job_id=next_job, submit_time=at, queries=queries
            )
        )
        next_job += 1
    if not clones:
        return None
    jobs = sorted(trace.jobs + clones, key=lambda j: (j.submit_time, j.job_id))
    return Trace(trace.spec, jobs)


def _gaming_stage(
    scenario: MaterializedScenario,
    spec: ScenarioSpec,
    base_result: RunResult,
) -> Tuple[Optional[FuzzFailure], dict[str, Any]]:
    assert scenario.retry_gaming is not None
    rounds = max(1, int(scenario.retry_gaming.get("max_resubmits", 1)))
    trace, result = scenario.trace, base_result
    resubmitted = 0
    for _ in range(min(rounds, 3)):  # cap the adversary's patience
        augmented = _resubmit_rejected(trace, result)
        if augmented is None:
            break
        resubmitted += len(augmented.jobs) - len(trace.jobs)
        trace = augmented
        try:
            result = _run(trace, scenario, spec)
        except Exception as exc:  # noqa: BLE001 - every failure is data
            return _classify(exc, "gaming"), {"resubmitted_jobs": resubmitted}
        failure = _check_result(trace, result, scenario, "gaming")
        if failure is not None:
            return failure, {"resubmitted_jobs": resubmitted}
    return None, {"resubmitted_jobs": resubmitted}


# ---------------------------------------------------------------------------
# Crash/resume stage
# ---------------------------------------------------------------------------
def _crash_stage(
    scenario: MaterializedScenario,
    spec: ScenarioSpec,
    base_result: RunResult,
) -> Optional[FuzzFailure]:
    assert scenario.crash_window is not None
    stage = "crash_resume"
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-ck-") as ckdir:
        engine = scenario.engine.with_(
            faults=scenario.engine.faults.with_(
                coordinator_crash_window=scenario.crash_window
            ),
            checkpoint=CheckpointConfig(
                directory=ckdir, every_events=_CHECKPOINT_EVERY
            ),
        )
        scheduler = make_scheduler(spec.scheduler, scenario.trace, engine)
        sim = Simulator(scenario.trace, [scheduler], engine)
        try:
            sim.run()
        except CoordinatorCrash:
            pass
        except Exception as exc:  # noqa: BLE001 - every failure is data
            return _classify(exc, stage)
        else:
            return FuzzFailure(
                "oracle",
                "crash_effective",
                stage,
                f"crash window {scenario.crash_window} armed but the run "
                "completed without crashing (clamp regression?)",
            )
        try:
            resumed = Simulator.restore(ckdir).run()
        except Exception as exc:  # noqa: BLE001 - every failure is data
            return _classify(exc, stage)
    if not resumed.faults.get("crash_effective", False):
        return FuzzFailure(
            "oracle",
            "crash_effective",
            stage,
            "resumed run does not report crash_effective=True",
        )
    detail = results_equivalent(base_result, resumed)
    if detail is not None:
        return FuzzFailure(
            "oracle",
            "crash_resume",
            stage,
            f"resumed run diverges from uninterrupted baseline at {detail}",
        )
    return None


# ---------------------------------------------------------------------------
# Sharded-replay stage
# ---------------------------------------------------------------------------
def _shard_stage(
    scenario: MaterializedScenario, spec: ScenarioSpec
) -> Tuple[Optional[FuzzFailure], dict[str, Any]]:
    assert scenario.shards is not None
    stage = "shard"
    from repro.shard import run_sharded  # deferred: pulls in the cluster stack

    # run_sharded refuses overload admission and the single-coordinator
    # sanitizer by design — strip both; the cross-shard conservation
    # counters are the sharded run's audit mechanism.
    engine = scenario.engine.with_(overload=OverloadConfig(), sanitize=False)
    n_nodes = 2 * scenario.shards.n_shards
    try:
        out = run_sharded(
            scenario.trace,
            spec.scheduler,
            n_nodes,
            shards=scenario.shards,
            engine=engine,
        )
    except Exception as exc:  # noqa: BLE001 - every failure is data
        return _classify(exc, stage), {}
    stats = {
        "shard_crashes": int(out.shard_stats.get("shard_crashes", 0)),
        "shard_epoch_bumps": int(out.shard_stats.get("epoch_bumps", 0)),
        "shard_stale_retries": int(out.shard_stats.get("stale_retries", 0)),
        "shard_messages": int(out.shard_stats.get("messages_delivered", 0)),
    }
    detail = check_conservation(scenario.trace, out.result)
    if detail is not None:
        return FuzzFailure("oracle", "conservation", stage, detail), stats
    detail = check_shard_conservation(
        out.shard_stats, expected_crashes=scenario.planned_shard_crashes
    )
    if detail is not None:
        return FuzzFailure("oracle", "shard_conservation", stage, detail), stats
    return None, stats


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------
def execute_scenario(spec: ScenarioSpec, engine_kind: str = "exact") -> ScenarioOutcome:
    """Run one scenario through every applicable stage and oracle.

    Top-level and pure (all randomness seeded from the spec) so
    :func:`repro.parallel.map_many` can fan scenarios out across worker
    processes bit-identically.

    ``engine_kind`` selects the engine for the **base** stage only
    (``"fast"`` falls back per-scenario when unsupported, see
    :func:`_base_engine_kind`); the gaming, crash-resume and shard
    stages always run exact — they exercise machinery (admission
    rejection replay, checkpoint restore, the sharded control plane)
    that is exact-engine-specific by design.
    """
    features = tuple(sorted({e.kind for e in spec.entries}))
    outcome = ScenarioOutcome(spec=spec, features=features)
    checked: List[str] = []

    try:
        scenario = materialize(spec)
    except Exception as exc:  # noqa: BLE001 - a spec the builder rejects
        outcome.failure = FuzzFailure("error", type(exc).__name__, "build", str(exc))
        return outcome
    outcome.stats["trace_queries"] = scenario.trace.n_queries
    outcome.stats["trace_jobs"] = len(scenario.trace.jobs)

    try:
        base_result = _run(
            scenario.trace, scenario, spec, _base_engine_kind(scenario, engine_kind)
        )
    except Exception as exc:  # noqa: BLE001 - every failure is data
        outcome.failure = _classify(exc, "base")
        outcome.oracles_checked = ("no_starvation",)
        return outcome
    checked += ["no_starvation", "conservation", "metric_sanity"]
    outcome.stats.update(
        completed=base_result.n_queries,
        cancelled=base_result.cancelled_queries,
        shed=base_result.shed_queries,
        rejected=base_result.rejected_queries,
    )
    outcome.failure = _check_result(scenario.trace, base_result, scenario, "base")

    if outcome.failure is None and os.environ.get(PLANT_BUG_ENV):
        if spec.has("flash_crowd") and spec.has("disk_faults"):
            outcome.failure = FuzzFailure(
                "oracle",
                "planted_bug",
                "base",
                "synthetic failure: flash_crowd combined with disk_faults "
                f"(enabled via {PLANT_BUG_ENV})",
            )

    if outcome.failure is None and scenario.retry_gaming is not None:
        outcome.failure, gaming_stats = _gaming_stage(scenario, spec, base_result)
        outcome.stats.update(gaming_stats)

    if outcome.failure is None and scenario.crash_window is not None:
        checked += ["crash_effective", "crash_resume"]
        outcome.failure = _crash_stage(scenario, spec, base_result)

    if outcome.failure is None and scenario.shards is not None:
        checked += ["shard_conservation"]
        outcome.failure, shard_stats = _shard_stage(scenario, spec)
        outcome.stats.update(shard_stats)

    outcome.oracles_checked = tuple(checked)
    return outcome
