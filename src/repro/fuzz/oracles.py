"""End-of-run chaos oracles: what "survived the scenario" means.

Each oracle inspects a finished :class:`~repro.engine.results.RunResult`
(the runtime invariants already ran every event via ``sanitize=True``)
and returns ``None`` on pass or a human-readable detail string on
violation.  The runner turns a violated oracle into a typed failure
``("oracle", <name>)`` — the unit of shrinking and deduplication.

Oracles
-------
``conservation``
    Every query in the trace reaches exactly one terminal state:
    ``trace.n_queries == completed + cancelled + shed + rejected +
    aborted_unarrived``.
``metric_sanity``
    Reported metrics are physically possible: response times finite,
    non-negative and bounded by the makespan; throughput bounded by the
    cost model's per-position floor (no node completes more than
    ``1/t_m`` queries per engine second); α, cache hit ratio,
    availability and admission rate all in [0, 1].
``no_starvation``
    The run terminated without tripping the engine's livelock or
    sim-time watchdogs.  (The watchdog errors themselves are the
    failure signal; a run that returns a result passed by
    construction, so the runner records this oracle from the exception
    path.)
``crash_resume``
    A run resumed from a mid-flight coordinator crash is bit-identical
    to the same scenario run uninterrupted (:func:`results_equivalent`).
``crash_effective``
    A scenario that armed a coordinator-crash window actually crashed:
    the clamp guarantees the drawn crash point lies inside the live
    event range, so "armed but never fired" is a regression.
``shard_conservation``
    A sharded replay (``shard_crash_storm`` / ``ownership_churn``)
    conserved every cross-shard sub-query across epoch changes: the
    control plane's cluster-wide counters satisfy ``created ==
    applied + residual_cancelled`` and ``executed == applied +
    exec_dropped + late_done_dropped`` (nothing lost, nothing
    double-counted), and every armed shard crash actually fired.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Optional

import numpy as np

from repro.config import EngineConfig
from repro.engine.results import RunResult
from repro.workload.trace import Trace

__all__ = [
    "ORACLE_NAMES",
    "check_conservation",
    "check_metric_sanity",
    "check_shard_conservation",
    "normalize_result",
    "results_equivalent",
]

#: Every oracle the campaign's coverage ledger tracks.
ORACLE_NAMES = (
    "conservation",
    "metric_sanity",
    "no_starvation",
    "crash_resume",
    "crash_effective",
    "shard_conservation",
)

#: RunResult fields measuring host wall-clock time, not simulation
#: output (same exclusion set as tests/test_determinism.py).
_WALL_CLOCK_FIELDS = ("gating_overhead_ns", "cache_overhead_ns")

#: Fault-accounting keys the simulator always reports; the injector
#: adds the rest only when fault injection is enabled.
_INJECTOR_KEYS = (
    "transient_faults",
    "permanent_losses",
    "slow_reads",
    "retries",
    "retries_exhausted",
    "degraded_nodes",
    "lost_atom_copies",
)


def check_conservation(trace: Trace, result: RunResult) -> Optional[str]:
    """Every trace query lands in exactly one terminal bucket."""
    aborted = int(result.faults.get("aborted_unarrived_queries", 0))
    accounted = (
        result.n_queries
        + result.cancelled_queries
        + result.shed_queries
        + result.rejected_queries
        + aborted
    )
    if accounted != trace.n_queries:
        return (
            f"trace has {trace.n_queries} queries but terminal states "
            f"account for {accounted} (completed={result.n_queries}, "
            f"cancelled={result.cancelled_queries}, shed={result.shed_queries}, "
            f"rejected={result.rejected_queries}, aborted_unarrived={aborted})"
        )
    return None


def check_metric_sanity(result: RunResult, engine: EngineConfig) -> Optional[str]:
    """Reported metrics stay inside physically possible bounds."""
    if not math.isfinite(result.makespan) or result.makespan < 0:
        return f"makespan {result.makespan} is not finite and non-negative"
    rts = np.asarray(result.response_times, dtype=np.float64)
    if rts.size and not np.all(np.isfinite(rts)):
        return "non-finite response time reported"
    if rts.size and float(rts.min()) < 0:
        return f"negative response time {float(rts.min())}"
    # An individual response (arrival -> completion) can never exceed
    # the whole-trace makespan (first arrival -> last completion).
    if rts.size and float(rts.max()) > result.makespan * (1 + 1e-9) + 1e-9:
        return (
            f"response time {float(rts.max())} exceeds makespan {result.makespan}"
        )
    # Each completed query costs at least one position's t_m of serial
    # compute on some node, so sustained throughput is bounded by
    # n_nodes / t_m (single-node runs: 1/t_m).
    qps_bound = 1.0 / engine.cost.t_m * (1 + 1e-9)
    if result.throughput_qps > qps_bound:
        return f"throughput {result.throughput_qps} qps exceeds 1/t_m bound"
    for obs in result.runs:
        if not math.isfinite(obs.mean_response_time) or obs.mean_response_time < 0:
            return f"run {obs.run_index} mean response {obs.mean_response_time}"
        if not math.isfinite(obs.throughput) or obs.throughput < 0:
            return f"run {obs.run_index} throughput {obs.throughput}"
        if obs.throughput > qps_bound:
            return f"run {obs.run_index} throughput {obs.throughput} exceeds 1/t_m"
    for history in result.alpha_histories or [result.alpha_history]:
        for alpha in history:
            if not 0.0 <= alpha <= 1.0:
                return f"alpha {alpha} outside [0, 1]"
    for name, value in (
        ("availability", result.availability),
        ("admission_rate", result.admission_rate),
        ("cache_hit_ratio", result.cache_hit_ratio),
    ):
        if not 0.0 <= value <= 1.0:
            return f"{name} {value} outside [0, 1]"
    return None


def check_shard_conservation(
    shard_stats: Mapping[str, Any], expected_crashes: int = 0
) -> Optional[str]:
    """Cross-shard sub-query conservation across epoch changes.

    ``shard_stats`` is :attr:`~repro.shard.control.ShardRunResult.shard_stats`;
    the control plane already raises :class:`~repro.errors.ShardProtocolError`
    on a per-run violation, so this oracle re-derives the identities from
    the reported totals — a result whose counters were merged or
    serialized wrongly fails here even though the run completed.
    """
    totals = dict(shard_stats.get("conservation", {}))
    created = int(totals.get("created", 0))
    applied = int(totals.get("applied", 0))
    residual = int(totals.get("residual_cancelled", 0))
    executed = int(totals.get("executed", 0))
    exec_dropped = int(totals.get("exec_dropped", 0))
    late_dropped = int(totals.get("late_done_dropped", 0))
    if created != applied + residual:
        return (
            f"sub-queries lost or duplicated across shards: created={created} "
            f"!= applied={applied} + residual_cancelled={residual}"
        )
    if executed != applied + exec_dropped + late_dropped:
        return (
            f"execution accounting broken: executed={executed} != "
            f"applied={applied} + exec_dropped={exec_dropped} + "
            f"late_done_dropped={late_dropped}"
        )
    fired = int(shard_stats.get("shard_crashes", 0))
    if fired != expected_crashes:
        return (
            f"armed {expected_crashes} shard crash(es) but {fired} fired "
            "(crash schedule regression?)"
        )
    return None


def normalize_result(result: RunResult) -> dict[str, Any]:
    """RunResult as a comparable dict, minus run-lifecycle artifacts.

    Strips the wall-clock overhead counters, the ``crash_effective``
    lifecycle flag (True on a resumed run, False on its uninterrupted
    baseline — by design), and zero-fills injector accounting keys so a
    baseline run whose fault config is entirely disabled compares equal
    to a crash-stage run that armed only the coordinator crash.
    """
    out = result.to_dict()
    for fld in _WALL_CLOCK_FIELDS:
        out.pop(fld, None)
    out["cache"] = {k: v for k, v in out["cache"].items() if k != "overhead_ns"}
    faults = {k: v for k, v in out["faults"].items() if k != "crash_effective"}
    for key in _INJECTOR_KEYS:
        faults.setdefault(key, 0)
    out["faults"] = faults
    return out


def results_equivalent(baseline: RunResult, resumed: RunResult) -> Optional[str]:
    """Crash/resume bit-identity: ``None`` when equivalent, else the
    first divergent field path."""
    a, b = normalize_result(baseline), normalize_result(resumed)
    return _first_divergence(a, b, path="result")


def _first_divergence(a: Any, b: Any, path: str) -> Optional[str]:
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                return f"{path}.{key} present in only one result"
            diff = _first_divergence(a[key], b[key], f"{path}.{key}")
            if diff is not None:
                return diff
        return None
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return f"{path} length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            diff = _first_divergence(x, y, f"{path}[{i}]")
            if diff is not None:
                return diff
        return None
    # Exact comparison, floats included: the determinism contract is
    # bit-identity, not approximate equality.
    if a != b or type(a) is not type(b):
        return f"{path}: {a!r} != {b!r}"
    return None
