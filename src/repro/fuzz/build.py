"""Scenario generation and materialization.

:func:`build_scenario` draws a randomized :class:`ScenarioSpec` from a
single seed — which job classes are in the mix, which stressors are
layered on, every stressor's parameters.  All randomness flows through
one ``random.Random(f"{seed}:scenario")`` stream (jawslint D007
enforces the seeding), so the same seed always builds the same spec.

:func:`materialize` turns a spec into concrete engine inputs: the
merged workload trace (base mix + adversarial waves + flash crowd) and
the :class:`~repro.config.EngineConfig` (``sanitize=True`` always —
every fuzz run sweeps the full runtime invariant set after every
event).  Coordinator-crash materialization is deferred to the runner,
which owns the checkpoint directory lifecycle.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.config import (
    CacheConfig,
    CostModel,
    EngineConfig,
    FaultConfig,
    OverloadConfig,
    ShardConfig,
)
from repro.engine.runner import SCHEDULER_NAMES
from repro.fuzz.spec import ScenarioEntry, ScenarioSpec
from repro.grid.dataset import DatasetSpec
from repro.workload.generator import (
    FlashCrowdParams,
    WorkloadParams,
    generate_trace,
    inject_flash_crowd,
)
from repro.workload.job import Job, JobKind
from repro.workload.query import Query
from repro.workload.trace import Trace

__all__ = ["MaterializedScenario", "build_scenario", "materialize"]


# ---------------------------------------------------------------------------
# Scenario generation
# ---------------------------------------------------------------------------
_CLASS_NAMES = ("tracking", "batched", "oneoff")

#: Inclusion probability per optional stressor kind (build order fixed).
_STRESSOR_PROB = (
    ("flash_crowd", 0.40),
    ("regime_shift", 0.30),
    ("morton_hostile", 0.30),
    ("quota_starvation", 0.25),
    ("gating_deadlock", 0.25),
    ("disk_faults", 0.45),
    ("node_crash", 0.30),
    ("coordinator_crash", 0.35),
    ("overload", 0.45),
    ("shard_crash_storm", 0.30),
    ("ownership_churn", 0.20),
)


def build_scenario(seed: int, quick: bool = False) -> ScenarioSpec:
    """Compose one randomized adversarial scenario from ``seed``.

    ``quick`` bounds the workload so a scenario runs in well under a
    second (the CI ``fuzz-smoke`` budget); the full mode draws larger
    traces and longer spans for nightly campaigns.
    """
    rng = random.Random(f"{seed}:scenario")
    scheduler = rng.choice(SCHEDULER_NAMES)
    if quick:
        n_jobs = rng.randrange(8, 15)
        span = float(rng.randrange(60, 121))
        n_timesteps = 6
    else:
        n_jobs = rng.randrange(12, 31)
        span = float(rng.randrange(90, 301))
        n_timesteps = rng.choice((6, 8, 10))

    entries: List[ScenarioEntry] = []
    # At least one base job class is always present.
    included = [name for name in _CLASS_NAMES if rng.random() < 0.6]
    if not included:
        included = [rng.choice(_CLASS_NAMES)]
    for name in included:
        entries.append(ScenarioEntry("query_class", {"name": name}))

    picked = {kind for kind, prob in _STRESSOR_PROB if rng.random() < prob}
    # Deterministic parameter draws happen in fixed kind order so that
    # adding/removing one stressor never perturbs another's parameters.
    if "flash_crowd" in picked:
        entries.append(
            ScenarioEntry(
                "flash_crowd",
                {
                    "factor": round(rng.uniform(3.0, 12.0), 3),
                    "start_frac": round(rng.uniform(0.05, 0.6), 3),
                    "duration_frac": round(rng.uniform(0.05, 0.2), 3),
                    "seed": rng.randrange(1 << 16),
                },
            )
        )
    if "regime_shift" in picked:
        entries.append(
            ScenarioEntry(
                "regime_shift",
                {
                    "at_frac": round(rng.uniform(0.3, 0.7), 3),
                    "n_jobs": rng.randrange(4, max(5, n_jobs // 2 + 1)),
                    "frac_tracking": round(rng.uniform(0.0, 0.8), 3),
                    "seed": rng.randrange(1 << 16),
                },
            )
        )
    if "morton_hostile" in picked:
        entries.append(
            ScenarioEntry(
                "morton_hostile",
                {
                    "n_jobs": rng.randrange(3, 9),
                    "stride_atoms": rng.choice((1, 2, 3)),
                    "seed": rng.randrange(1 << 16),
                },
            )
        )
    if "quota_starvation" in picked:
        entries.append(
            ScenarioEntry(
                "quota_starvation",
                {
                    "n_jobs": rng.randrange(4, 13),
                    "n_users": rng.randrange(1, 3),
                    "seed": rng.randrange(1 << 16),
                },
            )
        )
    if "gating_deadlock" in picked:
        entries.append(
            ScenarioEntry(
                "gating_deadlock",
                {
                    "n_campaigns": rng.randrange(2, 5),
                    "length": rng.randrange(2, max(3, n_timesteps)),
                    "seed": rng.randrange(1 << 16),
                },
            )
        )
    if "disk_faults" in picked:
        entries.append(
            ScenarioEntry(
                "disk_faults",
                {
                    "transient_rate": round(rng.uniform(0.01, 0.15), 4),
                    "loss_rate": round(rng.uniform(0.0, 0.02), 4),
                    "slow_rate": round(rng.uniform(0.0, 0.1), 4),
                    "seed": rng.randrange(1 << 16),
                },
            )
        )
    if "node_crash" in picked:
        down = round(rng.uniform(0.1, 0.6), 3)
        entries.append(
            ScenarioEntry(
                "node_crash",
                {"down_frac": down, "up_frac": round(down + rng.uniform(0.05, 0.3), 3)},
            )
        )
    if "coordinator_crash" in picked:
        lo = round(rng.uniform(0.05, 0.8), 3)
        entries.append(
            ScenarioEntry(
                "coordinator_crash",
                {
                    # Windows may intentionally reach past the
                    # guaranteed event floor: the injector clamps them
                    # (the satellite-1 fix this fuzzer regression-tests).
                    # The crash point itself is drawn from the fault
                    # config's dedicated seeded stream, so no extra seed
                    # lives here.
                    "window_lo_frac": lo,
                    "window_hi_frac": round(lo + rng.uniform(0.1, 0.8), 3),
                },
            )
        )
    if "overload" in picked:
        entries.append(
            ScenarioEntry(
                "overload",
                {
                    "max_queue_depth": rng.randrange(8, 41),
                    "client_rate": round(rng.uniform(0.5, 4.0), 3),
                    "client_burst": float(rng.randrange(1, 6)),
                    "shed_policy": rng.choice(("reject-newest", "low-density", "deadline")),
                    "t_b": round(rng.uniform(0.05, 0.5), 3),
                },
            )
        )
        if rng.random() < 0.5:
            # Adversarial client: only meaningful with admission control.
            entries.append(
                ScenarioEntry("retry_gaming", {"max_resubmits": rng.randrange(1, 9)})
            )
    if "shard_crash_storm" in picked:
        n_shards = rng.choice((2, 4))
        lo = round(rng.uniform(0.1, 0.5), 3)
        entries.append(
            ScenarioEntry(
                "shard_crash_storm",
                {
                    "n_shards": n_shards,
                    "n_crashes": rng.randrange(1, n_shards),
                    "window_lo_frac": lo,
                    "window_hi_frac": round(lo + rng.uniform(0.1, 0.4), 3),
                    "seed": rng.randrange(1 << 16),
                },
            )
        )
    if "ownership_churn" in picked:
        # Staggered explicit crashes: successive operators die, so the
        # same range is re-adopted under successive epoch bumps.
        entries.append(
            ScenarioEntry(
                "ownership_churn",
                {
                    "n_shards": 4,
                    "n_crashes": rng.randrange(2, 4),
                    "start_frac": round(rng.uniform(0.1, 0.4), 3),
                    "spacing_frac": round(rng.uniform(0.05, 0.2), 3),
                },
            )
        )
    return ScenarioSpec(
        seed=seed,
        scheduler=scheduler,
        n_jobs=n_jobs,
        span=span,
        n_timesteps=n_timesteps,
        atoms_per_axis=4,
        entries=tuple(entries),
    )


# ---------------------------------------------------------------------------
# Materialization
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MaterializedScenario:
    """Concrete engine inputs derived from one spec.

    ``crash_window`` is the resolved (lo, hi) event window when the
    spec carries a ``coordinator_crash`` entry; the runner arms it on a
    copy of ``engine`` together with a temporary checkpoint directory
    (the crash point is drawn inside the injector from the fault
    config's dedicated seeded stream).

    ``shards`` is the resolved sharded-replay plan when the spec
    carries a ``shard_crash_storm`` or ``ownership_churn`` entry
    (churn wins when both are present — its staggered schedule
    subsumes the storm); ``planned_shard_crashes`` is how many shard
    crashes that plan arms, so the shard stage can require every one
    of them to actually fire.  The runner replays the trace under this
    plan with overload admission and the single-coordinator sanitizer
    stripped (``run_sharded`` models neither) and audits the
    cross-shard conservation counters instead.
    """

    trace: Trace
    engine: EngineConfig
    crash_window: Optional[Tuple[int, int]] = None
    retry_gaming: Optional[ScenarioEntry] = None
    shards: Optional[ShardConfig] = None
    planned_shard_crashes: int = 0


def _id_ceilings(jobs: List[Job]) -> Tuple[int, int, int]:
    next_job = max((j.job_id for j in jobs), default=-1) + 1
    next_query = max((q.query_id for j in jobs for q in j.queries), default=-1) + 1
    next_user = max((j.user_id for j in jobs), default=-1) + 1
    return next_job, next_query, next_user


def _renumber(
    wave: List[Job], next_job: int, next_query: int, user_offset: int
) -> Tuple[List[Job], int, int]:
    """Renumber a generated wave to continue past existing id maxima.

    User ids are offset (not renumbered) so a wave designed around few
    users — e.g. a quota-starvation probe — keeps its user structure.
    """
    out: List[Job] = []
    for job in wave:
        queries = [
            dataclasses.replace(
                q, query_id=next_query + i, job_id=next_job, user_id=job.user_id + user_offset
            )
            for i, q in enumerate(job.queries)
        ]
        next_query += len(queries)
        out.append(
            dataclasses.replace(
                job, job_id=next_job, user_id=job.user_id + user_offset, queries=queries
            )
        )
        next_job += 1
    return out, next_job, next_query


def _shift_times(jobs: List[Job], offset: float) -> List[Job]:
    return [
        dataclasses.replace(job, submit_time=job.submit_time + offset) for job in jobs
    ]


def _morton_hostile_jobs(
    spec: DatasetSpec, entry: ScenarioEntry, span: float
) -> List[Job]:
    """One-off interp queries striding atom boundaries: consecutive
    positions land in different atoms along one axis, defeating Morton
    locality in the batch picker and maximizing stencil boundary
    crossings."""
    rng = np.random.default_rng(int(entry.get("seed", 0)))
    n_jobs = int(entry.get("n_jobs", 4))
    stride = max(1, int(entry.get("stride_atoms", 1))) * spec.atom_side
    jobs: List[Job] = []
    submit_times = np.sort(rng.uniform(0.0, span, n_jobs))
    for i in range(n_jobs):
        n_pos = 12
        base = float(rng.uniform(0, spec.grid_side))
        # Positions sit just past atom faces so wide stencils read both
        # neighbors; x strides a (possibly prime) multiple of atom_side.
        xs = np.mod(base + stride * np.arange(n_pos) + 1.0, spec.grid_side)
        yz = np.full((n_pos, 2), float(rng.uniform(0, spec.grid_side)))
        positions = np.column_stack([xs, yz])
        query = Query(
            query_id=i,
            job_id=i,
            seq=0,
            user_id=0,
            op="interp",
            timestep=int(rng.integers(0, spec.n_timesteps)),
            positions=positions,
        )
        jobs.append(
            Job(
                job_id=i,
                kind=JobKind.ORDERED,
                user_id=0,
                submit_time=float(submit_times[i]),
                think_time=0.0,
                queries=[query],
            )
        )
    return jobs


def _shard_plan(spec: ScenarioSpec) -> Tuple[Optional[ShardConfig], int]:
    """Resolve the sharded-replay plan: ``(config, planned crashes)``.

    ``ownership_churn`` builds an explicit staggered schedule where the
    shard that just adopted a range is the next to die, so the same
    Morton ranges fail over through successive epoch bumps;
    ``shard_crash_storm`` arms the seeded crash-window draw instead.
    Crash counts clamp to ``n_shards - 1`` (at least one survivor), so
    shrinker-halved shard counts always stay materializable.
    """
    churn = spec.first("ownership_churn")
    if churn is not None:
        n_shards = max(2, int(churn.get("n_shards", 4)))
        n_crashes = min(max(1, int(churn.get("n_crashes", 2))), n_shards - 1)
        start = max(0.0, float(churn.get("start_frac", 0.2))) * spec.span
        spacing = max(1.0, float(churn.get("spacing_frac", 0.1)) * spec.span)
        # Victims ascend from shard 1: shard 1 dies and shard 2 adopts
        # its ranges, then shard 2 dies and shard 3 adopts both — every
        # earlier victim's ranges churn again on each later crash.
        crashes = tuple(
            (1 + i, round(start + i * spacing, 6)) for i in range(n_crashes)
        )
        return ShardConfig(n_shards=n_shards, crashes=crashes), n_crashes
    storm = spec.first("shard_crash_storm")
    if storm is not None:
        n_shards = max(2, int(storm.get("n_shards", 2)))
        n_crashes = min(max(1, int(storm.get("n_crashes", 1))), n_shards - 1)
        lo = max(0.0, float(storm.get("window_lo_frac", 0.2))) * spec.span
        hi = max(lo + 1.0, float(storm.get("window_hi_frac", 0.6)) * spec.span)
        plan = ShardConfig(
            n_shards=n_shards,
            crash_window=(lo, hi),
            n_window_crashes=n_crashes,
            seed=int(storm.get("seed", spec.seed)),
        )
        return plan, n_crashes
    return None, 0


def _base_params(spec: ScenarioSpec) -> WorkloadParams:
    classes = {e.get("name") for e in spec.entries_of("query_class")}
    frac_tracking = 0.3 if "tracking" in classes else 0.0
    frac_batched = 0.45 if "batched" in classes else 0.0
    if "oneoff" not in classes:
        # No one-off share: split the remainder between the present
        # classes (fractions must stay <= 1 combined).
        if frac_tracking and frac_batched:
            frac_tracking, frac_batched = 0.4, 0.6
        elif frac_tracking:
            frac_tracking = 1.0
        elif frac_batched:
            frac_batched = 1.0
    return WorkloadParams(
        n_jobs=spec.n_jobs,
        span=spec.span,
        frac_tracking=frac_tracking,
        frac_batched=frac_batched,
        burstiness=0.6,
        n_users=8,
        seed=spec.seed,
    )


def materialize(spec: ScenarioSpec) -> MaterializedScenario:
    """Turn a spec into a merged trace + engine configuration."""
    dataset = DatasetSpec.small(
        n_timesteps=spec.n_timesteps, atoms_per_axis=spec.atoms_per_axis
    )
    trace = generate_trace(dataset, _base_params(spec))
    jobs = list(trace.jobs)

    for entry in spec.entries:
        wave: List[Job] = []
        user_offset = 0
        next_job, next_query, next_user = _id_ceilings(jobs)
        if entry.kind == "regime_shift":
            at = float(entry.get("at_frac", 0.5)) * spec.span
            params = WorkloadParams(
                n_jobs=int(entry.get("n_jobs", 6)),
                span=max(spec.span - at, 1.0),
                frac_tracking=float(entry.get("frac_tracking", 0.5)),
                frac_batched=max(0.0, 0.9 - float(entry.get("frac_tracking", 0.5))),
                burstiness=0.8,
                n_users=4,
                seed=int(entry.get("seed", 0)) + 1,
            )
            wave = _shift_times(list(generate_trace(dataset, params).jobs), at)
            user_offset = next_user
        elif entry.kind == "quota_starvation":
            params = WorkloadParams(
                n_jobs=int(entry.get("n_jobs", 8)),
                span=max(spec.span * 0.5, 1.0),
                frac_tracking=0.0,
                frac_batched=1.0,
                n_users=max(1, int(entry.get("n_users", 1))),
                seed=int(entry.get("seed", 0)) + 2,
            )
            wave = list(generate_trace(dataset, params).jobs)
            user_offset = next_user
        elif entry.kind == "gating_deadlock":
            params = WorkloadParams(
                n_jobs=int(entry.get("n_campaigns", 3)),
                span=max(spec.span * 0.6, 1.0),
                frac_tracking=1.0,
                frac_batched=0.0,
                campaign_prob=0.95,
                campaign_size_mean=3.0,
                tracking_len_mean=float(entry.get("length", 3)),
                n_users=2,
                seed=int(entry.get("seed", 0)) + 3,
            )
            wave = list(generate_trace(dataset, params).jobs)
            user_offset = next_user
        elif entry.kind == "morton_hostile":
            wave = _morton_hostile_jobs(dataset, entry, spec.span)
            user_offset = next_user
        else:
            continue
        renumbered, _, _ = _renumber(wave, next_job, next_query, user_offset)
        jobs.extend(renumbered)

    jobs.sort(key=lambda j: (j.submit_time, j.job_id))
    trace = Trace(dataset, jobs)

    flash = spec.first("flash_crowd")
    if flash is not None:
        trace = inject_flash_crowd(
            trace,
            FlashCrowdParams(
                factor=max(1.001, float(flash.get("factor", 5.0))),
                start=float(flash.get("start_frac", 0.2)) * spec.span,
                duration=max(1.0, float(flash.get("duration_frac", 0.1)) * spec.span),
                seed=int(flash.get("seed", 7)),
            ),
        )

    # Fault plan (crash window handled by the runner).
    faults = FaultConfig(seed=spec.seed)
    disk = spec.first("disk_faults")
    if disk is not None:
        faults = faults.with_(
            seed=int(disk.get("seed", spec.seed)),
            transient_fault_rate=min(1.0, float(disk.get("transient_rate", 0.05))),
            permanent_loss_rate=min(1.0, float(disk.get("loss_rate", 0.0))),
            slow_read_rate=min(1.0, float(disk.get("slow_rate", 0.0))),
        )
    node = spec.first("node_crash")
    if node is not None:
        down = max(0.0, float(node.get("down_frac", 0.3))) * spec.span
        up = max(down + 1.0, float(node.get("up_frac", 0.5)) * spec.span)
        faults = faults.with_(node_crashes=((0, down, up),))

    overload = OverloadConfig()
    cost = CostModel(t_b=0.02, t_m=1e-5)
    ov = spec.first("overload")
    if ov is not None:
        overload = OverloadConfig(
            enabled=True,
            max_queue_depth=max(1, int(ov.get("max_queue_depth", 20))),
            client_rate=max(0.01, float(ov.get("client_rate", 2.0))),
            client_burst=max(1.0, float(ov.get("client_burst", 4.0))),
            shed_policy=str(ov.get("shed_policy", "deadline")),
            control_interval=1.0,
        )
        # Overload scenarios need real pressure: slow the disk down.
        cost = CostModel(t_b=max(0.02, float(ov.get("t_b", 0.2))), t_m=1e-5)

    engine = EngineConfig(
        cost=cost,
        cache=CacheConfig(capacity_atoms=32),
        run_length=10,
        faults=faults,
        overload=overload,
        sanitize=True,
    )

    crash_window: Optional[Tuple[int, int]] = None
    crash = spec.first("coordinator_crash")
    if crash is not None:
        # Resolve window fracs against the guaranteed event floor; the
        # injector clamps window draws that still land past the end.
        floor = len(trace.jobs) + 2 * len(faults.node_crashes)
        lo = max(1, int(float(crash.get("window_lo_frac", 0.2)) * floor))
        hi = max(lo + 1, int(float(crash.get("window_hi_frac", 0.8)) * floor))
        crash_window = (lo, hi)

    shards, planned_shard_crashes = _shard_plan(spec)
    return MaterializedScenario(
        trace=trace,
        engine=engine,
        crash_window=crash_window,
        retry_gaming=spec.first("retry_gaming") if ov is not None else None,
        shards=shards,
        planned_shard_crashes=planned_shard_crashes,
    )
