"""Crash-consistent checkpointing and deterministic recovery (DESIGN.md §8).

A coordinator crash must not lose a multi-hour exploration run.  This
package persists the engine's complete state — virtual clock, event
heap, per-node workload queues and slot maps, gating graph + gating
numbers, adaptive-α tuner state, cache-policy contents, the fault
injector's ``random.Random`` stream, circuit-breaker state, and
in-flight batches — as versioned snapshots, with an event-sourced
write-ahead log of everything dispatched between snapshots.

Three modules:

``repro.recovery.codec``
    The versioned snapshot container: magic + format version + JSON
    header + CRC-guarded payload.  Refuses (``RecoveryError``) any file
    whose version, length, or checksum disagrees.
``repro.recovery.wal``
    The write-ahead log: one CRC-guarded record per dispatched event
    (index, virtual time, kind, payload fingerprint).  Replayed —
    record by record, each verified against the deterministic re-run —
    when a restored simulator resumes.
``repro.recovery.checkpoint``
    The :class:`CheckpointManager` driving both, under the
    ``EngineConfig.checkpoint`` policy (every N events and/or T virtual
    seconds), plus the restored-state consistency audit.

Because the engine is bit-for-bit deterministic under a seed (§7), a
resumed run is *verifiably* equivalent to an uninterrupted one: the WAL
replay must reproduce the pre-crash event sequence exactly, and the
final :class:`~repro.engine.results.RunResult` is bit-identical.
"""

from repro.recovery.checkpoint import CheckpointManager, verify_restored_state
from repro.recovery.codec import SNAPSHOT_FORMAT_VERSION, decode_snapshot, encode_snapshot
from repro.recovery.wal import WalRecord, event_fingerprint, read_wal

__all__ = [
    "CheckpointManager",
    "verify_restored_state",
    "SNAPSHOT_FORMAT_VERSION",
    "encode_snapshot",
    "decode_snapshot",
    "WalRecord",
    "event_fingerprint",
    "read_wal",
]
