"""Checkpoint orchestration: snapshot policy, WAL rotation, recovery.

One :class:`CheckpointManager` is attached to a
:class:`~repro.engine.simulator.Simulator` when
``EngineConfig.checkpoint`` is enabled.  Lifecycle:

* ``start`` — writes the *genesis* snapshot (event 0) so recovery is
  possible from any crash point, however early;
* ``log_event`` — called before every event handler (write-ahead):
  appends a CRC-guarded record to the current WAL segment, or, on a
  resumed run, verifies the re-dispatched event against the next
  pre-crash record;
* ``maybe_snapshot`` — called after every event handler: when the
  policy fires (every N events and/or T virtual seconds) it writes a
  new snapshot, rotates the WAL, and prunes old generations.

``load_latest`` + :func:`verify_restored_state` implement the resume
side used by ``Simulator.restore``: pick the newest snapshot, decode it
(version + CRC checked by the codec), read its WAL segment, and — once
the simulator object is rebuilt — re-run the workload-queue and
gating-graph consistency audits from the simulation sanitizer before a
single new event executes.  Recovery refuses
(:class:`~repro.errors.RecoveryError`) rather than resume from state it
cannot prove consistent.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.config import CheckpointConfig
from repro.engine.events import Event
from repro.errors import RecoveryError
from repro.recovery.codec import SNAPSHOT_FORMAT_VERSION, decode_snapshot, encode_snapshot
from repro.recovery.wal import WalRecord, WalWriter, make_record, read_wal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.engine.simulator import Simulator

__all__ = ["CheckpointManager", "verify_restored_state"]

#: Simulator attributes every restorable snapshot must contain; a
#: snapshot missing any of them predates the current engine layout.
_REQUIRED_STATE_KEYS = (
    "trace",
    "config",
    "nodes",
    "injector",
    "sanitizer",
    "clock",
    "event_index",
    "_heap",
    "_seq",
    "_remaining",
    "_arrival",
    "_response_times",
)


def _snapshot_name(event_index: int) -> str:
    return f"snapshot-{event_index:09d}.ckpt"


def _wal_name(event_index: int) -> str:
    return f"wal-{event_index:09d}.log"


def _capture_state(sim: "Simulator") -> Dict[str, Any]:
    """The simulator's complete mutable state, minus the manager itself
    (it holds open file handles and is rebuilt on restore).  Captured
    as ONE mapping pickled in one pass, so shared references — the
    in-flight batch held by both a node and its pending ``BATCH_DONE``
    event, sub-queries shared between heap payloads and queues — keep
    their identity through the round trip."""
    return {key: value for key, value in vars(sim).items() if key != "_checkpointer"}


def _snapshot_meta(sim: "Simulator") -> Dict[str, Any]:
    injector = sim.injector
    return {
        "format": SNAPSHOT_FORMAT_VERSION,
        "event_index": sim.event_index,
        "clock": sim.clock,
        "clock_hex": float(sim.clock).hex(),
        "scheduler": sim.nodes[0].scheduler.name,
        "n_nodes": len(sim.nodes),
        "completed_queries": sim._completed,
        "rng_digest": injector.rng_digest() if injector is not None else None,
    }


def verify_restored_state(sim: "Simulator") -> None:
    """Audit a freshly restored simulator before it resumes.

    Re-runs the simulation sanitizer's structural checks wholesale:
    :meth:`~repro.core.queues.WorkloadQueues.check_consistency` on
    every node's workload queues, and the precedence graph's
    :meth:`~repro.core.gating.PrecedenceGraph.validate` (which includes
    the gating-number fixed-point check) plus acyclicity.  Raises
    :class:`~repro.errors.RecoveryError` listing every problem found.
    """
    problems: List[str] = []
    for idx, node in enumerate(sim.nodes):
        queues = getattr(node.scheduler, "queues", None)
        if queues is not None:
            problems.extend(f"node {idx}: {p}" for p in queues.check_consistency())
        gating = getattr(node.scheduler, "_gating", None)
        if gating is not None:
            graph = gating.graph
            problems.extend(f"node {idx}: {p}" for p in graph.validate())
            if not graph.is_acyclic():
                problems.append(f"node {idx}: contracted gating-group graph has a cycle")
    if problems:
        raise RecoveryError(
            "restored state failed the consistency audit: " + "; ".join(problems),
            clock=sim.clock,
            event_index=sim.event_index,
            rng_digest=sim.injector.rng_digest() if sim.injector is not None else None,
            pending_queries=sorted(sim._remaining),
        )


class CheckpointManager:
    """Drives snapshots and the WAL for one simulator."""

    def __init__(self, config: CheckpointConfig) -> None:
        if not config.enabled:
            raise ValueError("CheckpointConfig is not enabled (directory + policy required)")
        assert config.directory is not None
        self.config = config
        self.directory = Path(config.directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._last_snapshot_event = 0
        self._last_snapshot_clock = 0.0
        self._has_snapshot = False
        self._wal_path: Optional[Path] = None
        self._writer: Optional[WalWriter] = None
        # Resume-mode replay queue: pre-crash records still to verify.
        self._replay: List[WalRecord] = []
        self._replay_pos = 0

    # ------------------------------------------------------------------
    # Forward path (fresh and resumed runs)
    # ------------------------------------------------------------------
    @property
    def replaying(self) -> bool:
        """True while pre-crash WAL records remain to be verified."""
        return self._replay_pos < len(self._replay)

    @property
    def wal_events_replayed(self) -> int:
        """Pre-crash events re-verified so far (diagnostics)."""
        return self._replay_pos

    def start(self, sim: "Simulator") -> None:
        """Write the genesis snapshot on a fresh run (no-op on resume)."""
        if not self._has_snapshot:
            self._snapshot(sim)

    def log_event(self, sim: "Simulator", ev: Event) -> None:
        """Write-ahead hook: called immediately before dispatching."""
        self.log_event_at(sim, sim.event_index, ev)

    def log_event_at(self, sim: "Simulator", index: int, ev: Event) -> None:
        """Write-ahead (or replay-verify) one event at an explicit index.

        The sharded control plane (:mod:`repro.shard`) records events
        as ``(index, event)`` pairs during a superstep window — the
        window may have executed in a worker process without file
        handles — and flushes them here afterwards; the plain engine's
        :meth:`log_event` is the ``index == sim.event_index`` case.
        """
        record = make_record(index, ev)
        if self.replaying:
            expected = self._replay[self._replay_pos]
            if record != expected:
                raise RecoveryError(
                    f"replay diverged from the WAL at {expected.describe()}: "
                    f"the deterministic re-run produced {record.describe()} "
                    f"(fingerprint {record.fingerprint} != {expected.fingerprint})",
                    clock=sim.clock,
                    event_index=sim.event_index,
                )
            self._replay_pos += 1
            return
        self._append(record)

    def maybe_snapshot(self, sim: "Simulator") -> None:
        """Policy hook: called after every dispatched event."""
        if self.replaying:
            # Snapshot points inside the replayed span were already
            # persisted pre-crash; rewriting them mid-replay would
            # rotate the WAL segment out from under the verification.
            return
        cfg = self.config
        due = False
        if cfg.every_events is not None:
            due = sim.event_index - self._last_snapshot_event >= cfg.every_events
        if not due and cfg.every_seconds is not None:
            due = sim.clock - self._last_snapshot_clock >= cfg.every_seconds
        if due:
            self._snapshot(sim)

    def force_snapshot(self, sim: "Simulator") -> None:
        """Take a snapshot now, regardless of policy.

        The cluster-consistent barrier of :mod:`repro.shard` drives
        per-shard snapshots explicitly (the per-shard policy never
        self-fires, so every shard's cut lands at the same barrier).
        Skipped while replaying, exactly like :meth:`maybe_snapshot` —
        the pre-crash snapshot files already exist.
        """
        if not self.replaying:
            self._snapshot(sim)

    def flush(self) -> None:
        if self._writer is not None:
            self._writer.flush()

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    # ------------------------------------------------------------------
    def _append(self, record: WalRecord) -> None:
        if self._writer is None:
            # Resumed run past the end of the replayed records: continue
            # appending to the same pre-crash segment.
            if self._wal_path is None:  # pragma: no cover - defensive
                raise RecoveryError("WAL segment unknown; manager not started")
            self._writer = WalWriter(self._wal_path, append=True)
        self._writer.append(record)

    def _snapshot(self, sim: "Simulator") -> None:
        path = self.directory / _snapshot_name(sim.event_index)
        blob = encode_snapshot(_snapshot_meta(sim), _capture_state(sim))
        tmp = path.with_suffix(".ckpt.tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        # Rotate the WAL: records before this snapshot are superseded.
        if self._writer is not None:
            self._writer.close()
        self._wal_path = self.directory / _wal_name(sim.event_index)
        self._writer = WalWriter(self._wal_path, append=False)
        self._last_snapshot_event = sim.event_index
        self._last_snapshot_clock = sim.clock
        self._has_snapshot = True
        self._prune()

    def _prune(self) -> None:
        snapshots = sorted(self.directory.glob("snapshot-*.ckpt"))
        for stale in snapshots[: -self.config.keep]:
            index_text = stale.stem.rpartition("-")[2]
            stale.unlink(missing_ok=True)
            (self.directory / f"wal-{index_text}.log").unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Recovery path
    # ------------------------------------------------------------------
    @classmethod
    def load_latest(
        cls, directory: str | Path
    ) -> Tuple[Dict[str, Any], Dict[str, Any], "CheckpointManager"]:
        """Load the newest snapshot and its WAL from ``directory``.

        Returns ``(meta, state, manager)`` where ``manager`` is primed
        in resume mode (replay queue loaded, WAL segment selected).
        Raises :class:`~repro.errors.RecoveryError` when no snapshot
        exists or any artifact fails validation.
        """
        directory = Path(directory)
        snapshots = sorted(directory.glob("snapshot-*.ckpt"))
        if not snapshots:
            raise RecoveryError(f"no snapshots found in {directory}")
        latest = snapshots[-1]
        meta, state = decode_snapshot(latest.read_bytes())
        missing = [key for key in _REQUIRED_STATE_KEYS if key not in state]
        if missing:
            raise RecoveryError(
                f"snapshot {latest.name} lacks required state keys: {missing}"
            )
        event_index = int(meta.get("event_index", -1))
        if event_index != int(state["event_index"]):
            raise RecoveryError(
                f"snapshot {latest.name}: header event index {event_index} "
                f"disagrees with state {state['event_index']}"
            )
        wal_path = directory / _wal_name(event_index)
        replay = read_wal(wal_path, event_index)
        config = state["config"].checkpoint
        if not config.enabled:  # pragma: no cover - snapshots imply enabled
            raise RecoveryError("snapshot was written without checkpointing enabled")
        manager = cls(config)
        manager.directory = directory  # resume where the files live
        manager._last_snapshot_event = event_index
        manager._last_snapshot_clock = float(state["clock"])
        manager._has_snapshot = True
        manager._wal_path = wal_path
        manager._replay = replay
        manager._replay_pos = 0
        return meta, state, manager
