"""Versioned snapshot container for engine state.

Layout of a ``.ckpt`` file (all integers big-endian)::

    offset  size  field
    ------  ----  -----------------------------------------------
    0       8     magic ``b"JAWSCKPT"``
    8       4     format version (u32) — must equal
                  :data:`SNAPSHOT_FORMAT_VERSION`
    12      4     header length H (u32)
    16      H     header: UTF-8 JSON metadata (event index, virtual
                  clock, RNG digest, scheduler name, node count)
    16+H    8     payload length P (u64)
    24+H    4     CRC-32 of the payload (u32)
    28+H    P     payload: pickled engine-state mapping

The header is deliberately plain JSON so operators can inspect a
snapshot (``repro resume`` prints it) without unpickling anything.  The
payload is a single pickle of the complete state mapping — one pickle,
so shared object identity (e.g. the in-flight :class:`Batch` referenced
by both a node and its pending ``BATCH_DONE`` event) survives the round
trip.

Every decode failure — wrong magic, version mismatch, truncated file,
checksum mismatch, unpicklable payload — raises
:class:`~repro.errors.RecoveryError`; a snapshot is either bit-perfect
or rejected.
"""

from __future__ import annotations

import io
import json
import pickle
import struct
import zlib
from typing import Any, Mapping, Tuple

from repro.errors import RecoveryError

__all__ = ["SNAPSHOT_FORMAT_VERSION", "SNAPSHOT_MAGIC", "encode_snapshot", "decode_snapshot"]

#: Bump whenever the snapshot state layout changes incompatibly.
SNAPSHOT_FORMAT_VERSION = 1

SNAPSHOT_MAGIC = b"JAWSCKPT"

_FIXED = struct.Struct(">II")  # version, header length
_PAYLOAD = struct.Struct(">QI")  # payload length, payload crc32


def encode_snapshot(meta: Mapping[str, Any], state: Mapping[str, Any]) -> bytes:
    """Serialize ``state`` (the engine-state mapping) with ``meta``
    (JSON-safe descriptive metadata) into the container format."""
    header = json.dumps(dict(meta), sort_keys=True).encode("utf-8")
    payload = pickle.dumps(dict(state), protocol=pickle.HIGHEST_PROTOCOL)
    out = io.BytesIO()
    out.write(SNAPSHOT_MAGIC)
    out.write(_FIXED.pack(SNAPSHOT_FORMAT_VERSION, len(header)))
    out.write(header)
    out.write(_PAYLOAD.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF))
    out.write(payload)
    return out.getvalue()


def _take(buf: bytes, offset: int, size: int, what: str) -> bytes:
    if offset + size > len(buf):
        raise RecoveryError(
            f"truncated snapshot: {what} needs {size} bytes at offset {offset}, "
            f"file has {len(buf)}"
        )
    return buf[offset : offset + size]


def decode_snapshot(data: bytes) -> Tuple[dict[str, Any], dict[str, Any]]:
    """Parse container bytes back into ``(meta, state)``.

    Raises :class:`~repro.errors.RecoveryError` on any corruption or
    version mismatch.
    """
    magic = _take(data, 0, len(SNAPSHOT_MAGIC), "magic")
    if magic != SNAPSHOT_MAGIC:
        raise RecoveryError(f"not a JAWS snapshot (magic {magic!r})")
    offset = len(SNAPSHOT_MAGIC)
    version, header_len = _FIXED.unpack(_take(data, offset, _FIXED.size, "fixed header"))
    if version != SNAPSHOT_FORMAT_VERSION:
        raise RecoveryError(
            f"snapshot format version mismatch: file has v{version}, "
            f"this build reads v{SNAPSHOT_FORMAT_VERSION}"
        )
    offset += _FIXED.size
    header = _take(data, offset, header_len, "JSON header")
    offset += header_len
    try:
        meta = json.loads(header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RecoveryError(f"corrupt snapshot header: {exc}") from exc
    if not isinstance(meta, dict):
        raise RecoveryError("corrupt snapshot header: not a JSON object")
    payload_len, crc = _PAYLOAD.unpack(_take(data, offset, _PAYLOAD.size, "payload header"))
    offset += _PAYLOAD.size
    payload = _take(data, offset, payload_len, "payload")
    if offset + payload_len != len(data):
        raise RecoveryError(
            f"snapshot has {len(data) - offset - payload_len} trailing bytes"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise RecoveryError("snapshot payload CRC mismatch (corrupt or tampered)")
    try:
        state = pickle.loads(payload)
    except Exception as exc:  # pickle raises a menagerie of types
        raise RecoveryError(f"snapshot payload failed to unpickle: {exc}") from exc
    if not isinstance(state, dict):
        raise RecoveryError("snapshot payload is not a state mapping")
    return meta, state
