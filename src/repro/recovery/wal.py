"""Event-sourced write-ahead log between snapshots.

Every event the engine dispatches is appended to the current WAL
segment *before* its handler runs (write-ahead), as one line::

    {"i": <event index>, "t": "<virtual time, float.hex>",
     "k": <EventKind value>, "f": "<payload fingerprint>"}\t<crc32>\n

The fingerprint is a short digest of the payload's *semantic identity*
(job / query / atom ids, batch composition, failure sets) — stable
across processes, never ``id()``- or ``hash()``-based.  Virtual times
travel as ``float.hex()`` strings so the round trip is bit-exact and no
float-equality comparison is ever needed.

On recovery the restored engine re-executes deterministically from the
snapshot; :class:`~repro.recovery.checkpoint.CheckpointManager` checks
each re-dispatched event against the next WAL record.  Any divergence
— and any corrupt or truncated record — raises
:class:`~repro.errors.RecoveryError`: recovery either reproduces the
pre-crash timeline exactly or refuses.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import IO, List, Optional

from repro.engine.events import Event, EventKind
from repro.errors import RecoveryError
from repro.workload.job import Job
from repro.workload.query import Query, SubQuery

__all__ = ["WalRecord", "WalWriter", "event_fingerprint", "format_record", "read_wal"]


@dataclass(frozen=True)
class WalRecord:
    """One logged event: replay position, time, kind, payload digest."""

    index: int
    time_hex: str
    kind: int
    fingerprint: str

    @property
    def time(self) -> float:
        return float.fromhex(self.time_hex)

    def describe(self) -> str:
        return f"event {self.index} ({EventKind(self.kind).name} @ {self.time:.6g}s)"


def _digest(parts: tuple) -> str:
    return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()[:16]


def event_fingerprint(ev: Event) -> str:
    """Stable digest of an event's semantic payload."""
    payload = ev.payload
    if ev.kind is EventKind.JOB_SUBMIT and isinstance(payload, Job):
        parts: tuple = ("job", payload.job_id)
    elif ev.kind is EventKind.QUERY_ARRIVAL and isinstance(payload, Query):
        parts = ("query", payload.query_id, payload.job_id, payload.seq)
    elif ev.kind is EventKind.BATCH_DONE:
        node_idx, epoch, batch, failed = payload
        parts = (
            "batch",
            node_idx,
            epoch,
            tuple(batch.atom_ids()),
            tuple(sorted((sq.query.query_id, sq.atom_id) for sq in failed)),
        )
    elif ev.kind in (EventKind.NODE_DOWN, EventKind.NODE_UP):
        parts = ("node", int(payload))
    elif ev.kind is EventKind.REROUTE:
        sq, arrival = payload
        assert isinstance(sq, SubQuery)
        parts = ("reroute", sq.query.query_id, sq.atom_id, float(arrival).hex())
    elif ev.kind is EventKind.QUERY_DEADLINE:
        parts = ("deadline", int(payload))
    elif ev.kind is EventKind.OVERLOAD_TICK:
        # The tick carries no payload: its identity is its position in
        # the deterministic event order, which the record's index and
        # time already pin down.
        parts = ("tick",)
    elif ev.kind is EventKind.SHARD_MSG:
        # Cross-shard message (repro.shard): the payload exposes its
        # own semantic identity tuple (kind tag, endpoints, epoch,
        # sender sequence, times as float.hex) — duck-typed so the
        # recovery layer stays import-independent of the shard package.
        parts = ("shard_msg", *payload.fingerprint_parts())
    else:  # pragma: no cover - future event kinds degrade to kind-only
        parts = ("opaque", int(ev.kind))
    return _digest(parts)


def make_record(index: int, ev: Event) -> WalRecord:
    """Build the WAL record for dispatching ``ev`` as event ``index``."""
    return WalRecord(
        index=index,
        time_hex=float(ev.time).hex(),
        kind=int(ev.kind),
        fingerprint=event_fingerprint(ev),
    )


def format_record(record: WalRecord) -> str:
    """Render one CRC-guarded WAL line (with trailing newline)."""
    body = json.dumps(
        {"i": record.index, "t": record.time_hex, "k": record.kind, "f": record.fingerprint},
        sort_keys=True,
    )
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{body}\t{crc:08x}\n"


def _parse_line(line: str, lineno: int, path: Path) -> WalRecord:
    body, sep, crc_text = line.rpartition("\t")
    if not sep:
        raise RecoveryError(f"corrupt WAL {path.name}:{lineno}: missing CRC field")
    try:
        crc = int(crc_text, 16)
    except ValueError:
        raise RecoveryError(
            f"corrupt WAL {path.name}:{lineno}: unparsable CRC {crc_text!r}"
        ) from None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != crc:
        raise RecoveryError(f"corrupt WAL {path.name}:{lineno}: CRC mismatch")
    try:
        fields = json.loads(body)
        return WalRecord(
            index=int(fields["i"]),
            time_hex=str(fields["t"]),
            kind=int(fields["k"]),
            fingerprint=str(fields["f"]),
        )
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise RecoveryError(f"corrupt WAL {path.name}:{lineno}: {exc}") from exc


def read_wal(path: Path, start_index: int) -> List[WalRecord]:
    """Read and validate one WAL segment.

    ``start_index`` is the event index of the owning snapshot; records
    must run consecutively from it.  A missing file, a torn final line
    (no newline), a CRC failure, or a gap in the index sequence raises
    :class:`~repro.errors.RecoveryError`.
    """
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise RecoveryError(f"WAL segment {path.name} is missing") from None
    if not text:
        return []
    if not text.endswith("\n"):
        raise RecoveryError(
            f"truncated WAL {path.name}: final record torn (no trailing newline)"
        )
    records: List[WalRecord] = []
    expected = start_index
    for lineno, line in enumerate(text.splitlines(), start=1):
        record = _parse_line(line, lineno, path)
        if record.index != expected:
            raise RecoveryError(
                f"corrupt WAL {path.name}:{lineno}: expected event index "
                f"{expected}, found {record.index}"
            )
        records.append(record)
        expected += 1
    return records


class WalWriter:
    """Append-only writer for one WAL segment.

    Each record is flushed as written, so the log is durable up to the
    instant of a coordinator crash.
    """

    def __init__(self, path: Path, append: bool = False) -> None:
        self.path = path
        self._fh: Optional[IO[str]] = path.open(
            "a" if append else "w", encoding="utf-8", newline=""
        )

    def append(self, record: WalRecord) -> None:
        if self._fh is None:  # pragma: no cover - defensive
            raise RecoveryError(f"WAL segment {self.path.name} is closed")
        self._fh.write(format_record(record))
        self._fh.flush()

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
