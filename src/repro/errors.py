"""Typed exception hierarchy for the simulation engine.

Every failure mode the engine can hit deliberately is a subclass of
:class:`SimulationError`, which itself subclasses ``RuntimeError`` so
existing ``except RuntimeError`` call sites keep working.  Each error
carries a diagnostics snapshot (virtual clock, pending query ids,
per-node queue depths and busy flags) so a failing run can be triaged
without re-running under a debugger.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

__all__ = [
    "SimulationError",
    "LivelockError",
    "SimTimeExceededError",
    "InvariantViolation",
]

#: How many pending query ids to embed in the rendered message.
_MAX_IDS_SHOWN = 20


class SimulationError(RuntimeError):
    """Base class for engine failures.

    Attributes
    ----------
    clock:
        Virtual time at which the error was raised.
    pending_queries:
        Ids of queries that had arrived but not completed/cancelled.
    queue_depths:
        Per-node scheduler queue depths (queued + held sub-queries).
    busy_flags:
        Per-node executor busy flags at the time of the error.
    """

    def __init__(
        self,
        message: str,
        *,
        clock: float = 0.0,
        pending_queries: Sequence[int] = (),
        queue_depths: Sequence[int] = (),
        busy_flags: Sequence[bool] = (),
    ) -> None:
        self.clock = clock
        self.pending_queries = list(pending_queries)
        self.queue_depths = list(queue_depths)
        self.busy_flags = list(busy_flags)
        shown = self.pending_queries[:_MAX_IDS_SHOWN]
        more = len(self.pending_queries) - len(shown)
        suffix = f" (+{more} more)" if more > 0 else ""
        super().__init__(
            f"{message} [clock={clock:.6g}s, pending_queries={shown}{suffix}, "
            f"queue_depths={self.queue_depths}, busy={self.busy_flags}]"
        )


class LivelockError(SimulationError):
    """Incomplete queries remain but no node can make progress."""


class SimTimeExceededError(SimulationError):
    """The virtual clock overran ``EngineConfig.max_sim_time``."""


class InvariantViolation(SimulationError):
    """The runtime simulation sanitizer found broken engine state.

    Raised only when ``EngineConfig(sanitize=True)`` enables the
    :class:`~repro.analysis.sanitizer.SimulationSanitizer`.  Carries
    the name of the broken invariant and a free-form detail mapping on
    top of the base diagnostics snapshot, so a violating run can be
    triaged from the exception alone.

    Attributes
    ----------
    invariant:
        Machine-readable invariant name (e.g. ``"subquery_conservation"``,
        ``"clock_monotonicity"``, ``"gating_acyclicity"``,
        ``"queue_coherence"``).
    details:
        Invariant-specific evidence (expected/actual counts, offending
        ids, …).
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        clock: float = 0.0,
        pending_queries: Sequence[int] = (),
        queue_depths: Sequence[int] = (),
        busy_flags: Sequence[bool] = (),
        details: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.invariant = invariant
        self.details: dict[str, object] = dict(details or {})
        detail_str = f", details={self.details}" if self.details else ""
        super().__init__(
            f"invariant {invariant!r} violated: {message}{detail_str}",
            clock=clock,
            pending_queries=pending_queries,
            queue_depths=queue_depths,
            busy_flags=busy_flags,
        )
