"""Typed exception hierarchy for the simulation engine.

Every failure mode the engine can hit deliberately is a subclass of
:class:`SimulationError`, which itself subclasses ``RuntimeError`` so
existing ``except RuntimeError`` call sites keep working.  Each error
carries a diagnostics snapshot (virtual clock, dispatched-event count,
fault-injector RNG digest, pending query ids, per-node queue depths
and busy flags) so a failing run can be triaged — and its replay
position pinpointed — without re-running under a debugger.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

__all__ = [
    "SimulationError",
    "LivelockError",
    "SimTimeExceededError",
    "InvariantViolation",
    "CoordinatorCrash",
    "RecoveryError",
    "JournalError",
    "QueryRejected",
    "ConfigurationError",
    "PartitionError",
    "ShardProtocolError",
    "WorkerCrashError",
    "SupervisorDegradedWarning",
]


class ConfigurationError(ValueError):
    """A configuration value is invalid or inconsistent.

    Subclasses ``ValueError`` so existing ``except ValueError`` call
    sites (CLI argument handling, config round-trip tests) keep
    working, while letting callers catch configuration mistakes
    specifically.
    """


class PartitionError(ConfigurationError):
    """A data or coordinator partition violates a placement invariant.

    Raised by :class:`~repro.cluster.partition.MortonRangePartitioner`
    and the shard topology (:mod:`repro.shard`) when a partitioning
    decision would silently under-replicate data: an atom range left
    with fewer available replicas than configured, a coordinator shard
    assigned an empty node slice, or a failover transfer whose target
    assignment cannot serve every range it acquires.  Subclasses
    :class:`ConfigurationError` (and therefore ``ValueError``) so
    existing partitioner validation call sites keep working.

    Attributes
    ----------
    ranges:
        Offending ``(node, lo, hi)`` Morton-range triples (possibly
        truncated for display), empty when the violation is not
        range-specific.
    """

    def __init__(self, message: str, *, ranges: Sequence[tuple] = ()) -> None:
        self.ranges = [tuple(r) for r in ranges]
        shown = self.ranges[:_MAX_IDS_SHOWN] if self.ranges else []
        suffix = f" [ranges={shown}]" if shown else ""
        super().__init__(f"{message}{suffix}")

#: How many pending query ids to embed in the rendered message.
_MAX_IDS_SHOWN = 20


class SimulationError(RuntimeError):
    """Base class for engine failures.

    Attributes
    ----------
    clock:
        Virtual time at which the error was raised.
    event_index:
        Number of events the engine had dispatched when the error was
        raised — the exact replay position of the failure (a
        deterministic re-run reaches the same state after the same
        count).
    rng_digest:
        Short digest of the fault injector's RNG state at the time of
        the error (``None`` when fault injection is off).  Two runs
        that diverge show different digests at the first divergent
        event, which localizes nondeterminism bugs.
    pending_queries:
        Ids of queries that had arrived but not completed/cancelled.
    queue_depths:
        Per-node scheduler queue depths (queued + held sub-queries).
    busy_flags:
        Per-node executor busy flags at the time of the error.
    """

    def __init__(
        self,
        message: str,
        *,
        clock: float = 0.0,
        event_index: int = 0,
        rng_digest: Optional[str] = None,
        pending_queries: Sequence[int] = (),
        queue_depths: Sequence[int] = (),
        busy_flags: Sequence[bool] = (),
    ) -> None:
        self.clock = clock
        self.event_index = event_index
        self.rng_digest = rng_digest
        self.pending_queries = list(pending_queries)
        self.queue_depths = list(queue_depths)
        self.busy_flags = list(busy_flags)
        shown = self.pending_queries[:_MAX_IDS_SHOWN]
        more = len(self.pending_queries) - len(shown)
        suffix = f" (+{more} more)" if more > 0 else ""
        rng = f", rng={rng_digest}" if rng_digest is not None else ""
        super().__init__(
            f"{message} [clock={clock:.6g}s, event={event_index}{rng}, "
            f"pending_queries={shown}{suffix}, "
            f"queue_depths={self.queue_depths}, busy={self.busy_flags}]"
        )


class LivelockError(SimulationError):
    """Incomplete queries remain but no node can make progress."""


class SimTimeExceededError(SimulationError):
    """The virtual clock overran ``EngineConfig.max_sim_time``."""


class CoordinatorCrash(SimulationError):
    """An injected ``coordinator_crash`` fault aborted the run.

    Raised by the engine immediately before dispatching the event whose
    index matches the armed crash point
    (``FaultConfig.coordinator_crash_at`` /
    ``coordinator_crash_window``), modeling the coordinator process
    dying mid-run.  State persisted by the checkpoint subsystem up to
    this point is intact; ``Simulator.restore`` resumes from it.
    """


class ShardProtocolError(SimulationError):
    """The sharded control plane observed a protocol violation.

    Raised by :mod:`repro.shard` when the lease-based ownership
    protocol is broken in a way retry cannot fix: a completion notice
    over-delivering sub-query work (more DONE counts than the query has
    outstanding — double execution), a message addressed to a domain no
    shard owns, or a deposed shard's output surviving past its lease.
    Stale-epoch messages are *not* errors — they are re-addressed with
    a typed retry in virtual time and counted; this error means the
    epoch fencing itself failed.

    Attributes
    ----------
    domain:
        The Morton-range domain index the violating message addressed.
    epoch:
        The epoch the message carried.
    """

    def __init__(
        self,
        message: str,
        *,
        domain: int = -1,
        epoch: int = -1,
        clock: float = 0.0,
        event_index: int = 0,
        rng_digest: Optional[str] = None,
        pending_queries: Sequence[int] = (),
        queue_depths: Sequence[int] = (),
        busy_flags: Sequence[bool] = (),
    ) -> None:
        self.domain = domain
        self.epoch = epoch
        super().__init__(
            f"{message} (domain={domain}, epoch={epoch})",
            clock=clock,
            event_index=event_index,
            rng_digest=rng_digest,
            pending_queries=pending_queries,
            queue_depths=queue_depths,
            busy_flags=busy_flags,
        )


class RecoveryError(SimulationError):
    """Checkpoint recovery failed.

    Raised by the recovery subsystem (:mod:`repro.recovery`) when a
    snapshot cannot be trusted: unknown or mismatched snapshot format
    version, corrupt or truncated snapshot payload (CRC failure),
    corrupt or truncated write-ahead log, a replayed event diverging
    from its WAL record, or restored engine state failing the
    consistency audits re-run before resuming.
    """


class QueryRejected(SimulationError):
    """Admission control refused work (overload protection, DESIGN.md §9).

    Built by the :class:`~repro.overload.admission.AdmissionController`
    for every rejected job.  Inside the discrete-event engine the
    rejection is *recorded* (counters + per-reason accounting in
    :class:`~repro.engine.results.RunResult`) rather than raised — the
    simulation models a service that keeps running while turning
    clients away; a front-end serving real clients would raise or
    serialize this error back to the caller.

    Attributes
    ----------
    job_id / user_id / client_class:
        The rejected job, its submitting client, and the client class
        the admission decision was made under.
    reason:
        Machine-readable rejection reason: ``"rate_limit"`` (the
        client's token bucket is empty), ``"queue_full"`` (bounded
        workload queues are at capacity), ``"throttled"`` (brownout
        mode refuses this client class), or ``"quota"`` (the class is
        over its weighted fair share).
    retry_after:
        Deterministic *virtual-time* hint, seconds from the rejection
        instant, after which a retry could plausibly be admitted (token
        refill time, or the next brownout control tick).
    """

    def __init__(
        self,
        message: str,
        *,
        job_id: int,
        user_id: int,
        client_class: str,
        reason: str,
        retry_after: float,
        clock: float = 0.0,
        event_index: int = 0,
        rng_digest: Optional[str] = None,
        pending_queries: Sequence[int] = (),
        queue_depths: Sequence[int] = (),
        busy_flags: Sequence[bool] = (),
    ) -> None:
        self.job_id = job_id
        self.user_id = user_id
        self.client_class = client_class
        self.reason = reason
        self.retry_after = retry_after
        super().__init__(
            f"{message} (job={job_id}, client={user_id}, class={client_class}, "
            f"reason={reason}, retry_after={retry_after:.6g}s)",
            clock=clock,
            event_index=event_index,
            rng_digest=rng_digest,
            pending_queries=pending_queries,
            queue_depths=queue_depths,
            busy_flags=busy_flags,
        )


class WorkerCrashError(SimulationError):
    """A parallel-evaluation task was quarantined and salvage is off.

    Raised by :func:`repro.parallel.run_many` /
    :func:`repro.parallel.map_many` when a task's worker process
    terminated abnormally (OOM kill, segfault, interpreter abort), hung
    past its watchdog deadline, or breached the RSS ceiling more times
    than the retry budget allows.  Deterministic *simulation* failures
    inside a worker are never wrapped in this error — they propagate as
    their own typed exception, because re-running a deterministic
    failure cannot succeed.  With ``salvage=True`` nothing is raised at
    all; the same information travels as a typed
    :class:`~repro.parallel.supervisor.TaskFailure` record instead.

    Attributes
    ----------
    task_index:
        Position of the failed task in the submitted spec list.
    attempts:
        Number of times the task was attempted before giving up.
    label:
        The failing spec's free-form label (``RunSpec.label``), stable
        across sweep reorderings where ``task_index`` is not.
    digest:
        Content digest of the failing spec
        (:func:`repro.parallel.supervisor.task_digest`) — the journal
        key, usable to pinpoint or skip the poison task on a re-run.
    reason:
        Machine-readable failure mode: ``"worker-crash"``,
        ``"timeout"`` (watchdog kill) or ``"rss-limit"`` (resource
        guard kill).
    """

    def __init__(
        self,
        message: str,
        *,
        task_index: int,
        attempts: int,
        label: str = "",
        digest: str = "",
        reason: str = "worker-crash",
    ) -> None:
        self.task_index = task_index
        self.attempts = attempts
        self.label = label
        self.digest = digest
        self.reason = reason
        tagged = f", label={label!r}" if label else ""
        hashed = f", digest={digest}" if digest else ""
        super().__init__(
            f"{message} (task={task_index}{tagged}{hashed}, "
            f"reason={reason}, attempts={attempts})"
        )


class JournalError(RuntimeError):
    """A campaign journal cannot be trusted or does not match.

    Raised by :class:`repro.parallel.journal.CampaignJournal` when a
    journal file is corrupt beyond its (expected, crash-tolerated) torn
    final record — a CRC failure on an interior line, an unreadable
    header — or when its header identifies a *different* campaign than
    the one being resumed (other seed, run count or scale), in which
    case resuming would silently merge unrelated results.
    """


class SupervisorDegradedWarning(RuntimeWarning):
    """The supervised pool degraded to serial execution.

    Issued by :func:`repro.parallel.supervisor.supervise` when a
    campaign-level resource guard trips (runaway wall-clock deadline)
    and the remaining tasks are executed serially in the driver process
    so the campaign still completes.  Results are unaffected — the
    serial path is the bit-identity reference — but per-task watchdog
    protection is unavailable for the remainder of the run.
    """


class InvariantViolation(SimulationError):
    """The runtime simulation sanitizer found broken engine state.

    Raised only when ``EngineConfig(sanitize=True)`` enables the
    :class:`~repro.analysis.sanitizer.SimulationSanitizer`.  Carries
    the name of the broken invariant and a free-form detail mapping on
    top of the base diagnostics snapshot, so a violating run can be
    triaged from the exception alone.

    Attributes
    ----------
    invariant:
        Machine-readable invariant name (e.g. ``"subquery_conservation"``,
        ``"clock_monotonicity"``, ``"gating_acyclicity"``,
        ``"queue_coherence"``).
    details:
        Invariant-specific evidence (expected/actual counts, offending
        ids, …).
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        clock: float = 0.0,
        event_index: int = 0,
        rng_digest: Optional[str] = None,
        pending_queries: Sequence[int] = (),
        queue_depths: Sequence[int] = (),
        busy_flags: Sequence[bool] = (),
        details: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.invariant = invariant
        self.details: dict[str, object] = dict(details or {})
        detail_str = f", details={self.details}" if self.details else ""
        super().__init__(
            f"invariant {invariant!r} violated: {message}{detail_str}",
            clock=clock,
            event_index=event_index,
            rng_digest=rng_digest,
            pending_queries=pending_queries,
            queue_depths=queue_depths,
            busy_flags=busy_flags,
        )
