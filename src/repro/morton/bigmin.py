"""BIGMIN skip-scanning for Z-order range queries (Tropf & Herzog 1981).

The clustered B+-tree stores atoms in Morton order, so an axis-aligned
box query scans a code interval ``[encode(lo), encode(hi)]`` — but the
Z-curve repeatedly leaves and re-enters the box inside that interval.
``BIGMIN(z, zmin, zmax)`` is the smallest code **greater than z** that
lies back inside the box: a range scan that hits an out-of-box code can
seek directly to BIGMIN instead of stepping through the gap.

This is the classical alternative to the octree decomposition in
:meth:`repro.morton.index.MortonIndex.box_to_ranges`; property tests
assert both enumerate identical code sets.  Generalized here to three
dimensions over the 63-bit codec.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.morton.codec import MAX_COORD_BITS, morton_decode_scalar

__all__ = ["bigmin", "in_box", "zrange_scan"]

_NBITS = 3 * MAX_COORD_BITS  # total interleaved bits
_DIM_MASK = 0x1249249249249249  # bits of dimension 0 (x); shift for y/z


def _dim_lower_mask(pos: int) -> int:
    """Bits of ``pos``'s dimension strictly below ``pos``."""
    return (_DIM_MASK << (pos % 3)) & ((1 << pos) - 1)


def _load_1000(value: int, pos: int) -> int:
    """Within ``pos``'s dimension: set bit ``pos``, clear lower bits."""
    return (value & ~((1 << pos) | _dim_lower_mask(pos))) | (1 << pos)


def _load_0111(value: int, pos: int) -> int:
    """Within ``pos``'s dimension: clear bit ``pos``, set lower bits."""
    return (value & ~(1 << pos)) | _dim_lower_mask(pos)


def in_box(code: int, zmin: int, zmax: int) -> bool:
    """Is ``code`` inside the box spanned by corner codes zmin/zmax?"""
    x, y, z = morton_decode_scalar(code)
    x0, y0, z0 = morton_decode_scalar(zmin)
    x1, y1, z1 = morton_decode_scalar(zmax)
    return x0 <= x <= x1 and y0 <= y <= y1 and z0 <= z <= z1


def bigmin(z: int, zmin: int, zmax: int) -> Optional[int]:
    """Smallest Morton code > ``z`` inside the box ``[zmin, zmax]``.

    ``zmin``/``zmax`` are the codes of the box's min/max corners.
    Returns ``None`` when no box code exceeds ``z``.
    """
    if z >= zmax:
        return None
    result: Optional[int] = None
    lo, hi = zmin, zmax
    for pos in range(_NBITS - 1, -1, -1):
        bit = 1 << pos
        zb, nb, xb = bool(z & bit), bool(lo & bit), bool(hi & bit)
        if not zb and not nb and not xb:
            continue
        if not zb and not nb and xb:
            # z could still fall below this split: remember the best
            # code of the upper half, continue searching the lower.
            result = _load_1000(lo, pos)
            hi = _load_0111(hi, pos)
        elif not zb and nb and xb:
            # Every box code at this branch exceeds z.
            return lo
        elif zb and not nb and not xb:
            # z has outgrown the box on this branch.
            return result
        elif zb and not nb and xb:
            # z sits in the upper half: restrict the box to it.
            lo = _load_1000(lo, pos)
        elif zb and nb and xb:
            continue
        else:
            raise ValueError("zmin exceeds zmax within a dimension")
    # All bits consumed: z itself lies in the box; the next in-box code
    # strictly greater than z is the saved upper-half candidate.
    return result


def zrange_scan(zmin: int, zmax: int) -> Iterator[int]:
    """Yield every in-box code from ``zmin`` to ``zmax`` in Morton
    order, using BIGMIN to leap over out-of-box gaps.

    The scan performs O(gaps) BIGMIN computations instead of stepping
    through every code of the interval — the access-path win a
    Z-ordered clustered index gets for box queries.
    """
    code = zmin
    while code is not None and code <= zmax:
        if in_box(code, zmin, zmax):
            yield code
            code += 1
        else:
            code = bigmin(code - 1, zmin, zmax)
