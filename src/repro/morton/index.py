"""Hierarchical Morton index over a cubic atom grid.

The paper (§III-A) describes a hierarchical spatial index that logically
partitions space into cubes of side :math:`2^k` for ``k = 0..log(n)``.
Because a Morton curve visits each such cube as one contiguous code
range, every octree cube maps to a half-open interval of Morton codes —
which is what makes range and containment queries efficient with
respect to I/O.

:class:`MortonIndex` exposes:

* coordinate <-> code mapping for an ``n x n x n`` atom grid,
* octree-cube code ranges (``cube_range``),
* axis-aligned box queries decomposed into maximal octree cubes
  (``box_to_ranges``) or enumerated directly (``box_codes``),
* face-neighbor lookup used by interpolation stencils.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.morton.codec import morton_decode, morton_encode

__all__ = ["MortonIndex"]


@dataclass(frozen=True)
class MortonIndex:
    """Morton index for a cubic grid of ``side`` atoms per axis.

    Parameters
    ----------
    side:
        Number of atoms along each axis.  Must be a power of two (the
        Turbulence cluster uses 16 = 1024/64 atoms per axis).
    """

    side: int

    def __post_init__(self) -> None:
        if self.side < 1 or (self.side & (self.side - 1)) != 0:
            raise ValueError(f"side must be a positive power of two, got {self.side}")

    @property
    def levels(self) -> int:
        """Number of octree levels (``log2(side)``)."""
        return int(self.side).bit_length() - 1

    @property
    def n_atoms(self) -> int:
        """Total number of atoms in the grid (``side**3``)."""
        return self.side**3

    # ------------------------------------------------------------------
    # Coordinate <-> code
    # ------------------------------------------------------------------
    def encode(self, x: "npt.ArrayLike", y: "npt.ArrayLike", z: "npt.ArrayLike") -> np.ndarray:
        """Morton codes for atom coordinates; validates grid bounds."""
        x = np.asarray(x)
        y = np.asarray(y)
        z = np.asarray(z)
        for axis in (x, y, z):
            if np.any(axis < 0) or np.any(axis >= self.side):
                raise ValueError("atom coordinate out of grid bounds")
        return morton_encode(x, y, z)

    def decode(self, codes: "npt.ArrayLike") -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Atom coordinates for Morton codes; validates code bounds."""
        codes = np.asarray(codes, dtype=np.uint64)
        if np.any(codes >= self.n_atoms):
            raise ValueError("Morton code out of grid bounds")
        return morton_decode(codes)

    # ------------------------------------------------------------------
    # Octree cubes
    # ------------------------------------------------------------------
    def cube_range(self, x: int, y: int, z: int, level: int) -> tuple[int, int]:
        """Half-open Morton code range of the level-``level`` octree cube
        whose minimum corner is ``(x, y, z)``.

        ``level`` is the cube's side exponent: a cube of side ``2**level``
        atoms.  The corner must be aligned to the cube side.
        """
        size = 1 << level
        if size > self.side:
            raise ValueError("cube larger than grid")
        if (x % size, y % size, z % size) != (0, 0, 0):
            raise ValueError("cube corner not aligned to cube side")
        lo = int(self.encode(np.array([x]), np.array([y]), np.array([z]))[0])
        return lo, lo + size**3

    def box_to_ranges(self, lo: tuple[int, int, int], hi: tuple[int, int, int]) -> list[tuple[int, int]]:
        """Decompose an axis-aligned atom box into maximal octree cubes.

        Parameters
        ----------
        lo, hi:
            Inclusive minimum and maximum atom coordinates of the box.

        Returns
        -------
        list of (start, stop)
            Sorted, disjoint, coalesced half-open Morton code ranges that
            exactly cover the box.  Scanning these ranges in order visits
            the box's atoms in Morton (disk) order.
        """
        for a, b in zip(lo, hi):
            if a < 0 or b >= self.side or a > b:
                raise ValueError(f"invalid box bounds: {lo}..{hi}")

        ranges: list[tuple[int, int]] = []

        def recurse(cx: int, cy: int, cz: int, level: int) -> None:
            size = 1 << level
            # Cube fully outside the box?
            if (
                cx + size <= lo[0]
                or cx > hi[0]
                or cy + size <= lo[1]
                or cy > hi[1]
                or cz + size <= lo[2]
                or cz > hi[2]
            ):
                return
            # Cube fully inside the box -> emit its whole Morton range.
            if (
                cx >= lo[0]
                and cx + size - 1 <= hi[0]
                and cy >= lo[1]
                and cy + size - 1 <= hi[1]
                and cz >= lo[2]
                and cz + size - 1 <= hi[2]
            ):
                ranges.append(self.cube_range(cx, cy, cz, level))
                return
            half = size // 2
            for dz in (0, half):
                for dy in (0, half):
                    for dx in (0, half):
                        recurse(cx + dx, cy + dy, cz + dz, level - 1)

        recurse(0, 0, 0, self.levels)
        ranges.sort()
        # Coalesce adjacent ranges (octree decomposition can emit touching
        # sibling cubes).
        merged: list[tuple[int, int]] = []
        for start, stop in ranges:
            if merged and merged[-1][1] == start:
                merged[-1] = (merged[-1][0], stop)
            else:
                merged.append((start, stop))
        return [(int(a), int(b)) for a, b in merged]

    def box_codes(self, lo: tuple[int, int, int], hi: tuple[int, int, int]) -> np.ndarray:
        """All Morton codes inside an inclusive atom box, in Morton order."""
        parts = [np.arange(a, b, dtype=np.uint64) for a, b in self.box_to_ranges(lo, hi)]
        if not parts:
            return np.empty(0, dtype=np.uint64)
        return np.concatenate(parts)

    # ------------------------------------------------------------------
    # Neighbors
    # ------------------------------------------------------------------
    def neighbors(self, code: int, radius: int = 1, periodic: bool = True) -> np.ndarray:
        """Morton codes of the cube of atoms within ``radius`` of ``code``.

        Interpolation kernels near an atom boundary read adjacent atoms
        (paper §III-A: atoms carry 4 voxels of replication precisely to
        reduce such reads; §V: batching k nearby atoms exploits the
        stencil overlap).  ``periodic`` wraps at the grid boundary, which
        matches the periodic DNS domain.

        The returned array excludes ``code`` itself and is sorted.
        """
        x, y, z = self.decode(np.array([code], dtype=np.uint64))
        offsets = np.arange(-radius, radius + 1)
        dx, dy, dz = np.meshgrid(offsets, offsets, offsets, indexing="ij")
        nx = int(x[0]) + dx.ravel()
        ny = int(y[0]) + dy.ravel()
        nz = int(z[0]) + dz.ravel()
        if periodic:
            nx %= self.side
            ny %= self.side
            nz %= self.side
        else:
            keep = (
                (nx >= 0)
                & (nx < self.side)
                & (ny >= 0)
                & (ny < self.side)
                & (nz >= 0)
                & (nz < self.side)
            )
            nx, ny, nz = nx[keep], ny[keep], nz[keep]
        codes = self.encode(nx, ny, nz)
        codes = np.unique(codes)
        return codes[codes != np.uint64(code)]
