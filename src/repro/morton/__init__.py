"""Morton (Z-order) spatial indexing substrate.

The Turbulence cluster linearizes its atom grid along a Morton
space-filling curve and indexes it with a hierarchy of power-of-two
cubes (paper §III-A).  This subpackage provides the vectorized codec and
the hierarchical index used by the storage and scheduling layers.
"""

from repro.morton.bigmin import bigmin, in_box, zrange_scan
from repro.morton.codec import (
    MAX_COORD_BITS,
    morton_decode,
    morton_decode_scalar,
    morton_encode,
    morton_encode_scalar,
)
from repro.morton.index import MortonIndex

__all__ = [
    "MAX_COORD_BITS",
    "morton_encode",
    "morton_decode",
    "morton_encode_scalar",
    "morton_decode_scalar",
    "MortonIndex",
    "bigmin",
    "in_box",
    "zrange_scan",
]
