"""Vectorized 3-D Morton (Z-order) encoding and decoding.

The Turbulence Database Cluster partitions its :math:`1024^3` grid into
atoms of :math:`64^3` voxels and linearizes the atoms on disk along a
Morton space-filling curve (paper §III-A).  Atoms that are close in
Morton order are close in voxel space, so range and containment queries
touch contiguous runs of disk blocks and batched execution in Morton
order amortizes seeks.

This module provides branch-free, NumPy-vectorized encode/decode for
21-bit coordinates (sufficient for grids up to :math:`2^{21}` atoms per
axis, far beyond the :math:`16^3` .. :math:`64^3` atom grids used in the
reproduction experiments).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

__all__ = [
    "MAX_COORD_BITS",
    "morton_encode",
    "morton_decode",
    "morton_encode_scalar",
    "morton_decode_scalar",
]

#: Maximum number of bits per coordinate supported by the 63-bit codec.
MAX_COORD_BITS = 21

# Magic-number bit spreading for 3-D interleave (each constant spreads the
# bits of a 21-bit integer so that two zero bits separate consecutive
# payload bits).  These are the standard 64-bit "part-by-2" constants.
_SPREAD_MASKS = (
    (0x1F00000000FFFF, 32),
    (0x1F0000FF0000FF, 16),
    (0x100F00F00F00F00F, 8),
    (0x10C30C30C30C30C3, 4),
    (0x1249249249249249, 2),
)


def _spread_bits(values: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each value so bits land 3 apart."""
    x = values.astype(np.uint64)
    x &= np.uint64((1 << MAX_COORD_BITS) - 1)
    for mask, shift in _SPREAD_MASKS:
        x = (x | (x << np.uint64(shift))) & np.uint64(mask)
    return x


def _compact_bits(codes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread_bits`: gather every third bit."""
    x = codes.astype(np.uint64) & np.uint64(0x1249249249249249)
    x = (x ^ (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x ^ (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x ^ (x >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    x = (x ^ (x >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    x = (x ^ (x >> np.uint64(32))) & np.uint64((1 << MAX_COORD_BITS) - 1)
    return x


def morton_encode_unchecked(
    x: "npt.ArrayLike", y: "npt.ArrayLike", z: "npt.ArrayLike"
) -> np.ndarray:
    """:func:`morton_encode` without bounds validation.

    For internal hot paths whose inputs are already grid-clamped; the
    public API should use :func:`morton_encode`.
    """
    return (
        _spread_bits(np.asarray(x))
        | (_spread_bits(np.asarray(y)) << np.uint64(1))
        | (_spread_bits(np.asarray(z)) << np.uint64(2))
    )


def morton_encode(x: "npt.ArrayLike", y: "npt.ArrayLike", z: "npt.ArrayLike") -> np.ndarray:
    """Interleave three coordinate arrays into Morton codes.

    Parameters
    ----------
    x, y, z:
        Integer array-likes of equal shape.  Each coordinate must be in
        ``[0, 2**21)``.  ``x`` occupies the least-significant bit of each
        interleaved triple (bit order ``..z1 y1 x1 z0 y0 x0``).

    Returns
    -------
    numpy.ndarray
        ``uint64`` array of Morton codes with the broadcast shape of the
        inputs.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    z = np.asarray(z)
    if np.any(x < 0) or np.any(y < 0) or np.any(z < 0):
        raise ValueError("Morton coordinates must be non-negative")
    limit = 1 << MAX_COORD_BITS
    if np.any(x >= limit) or np.any(y >= limit) or np.any(z >= limit):
        raise ValueError(f"Morton coordinates must be < 2**{MAX_COORD_BITS}")
    return morton_encode_unchecked(x, y, z)


def morton_decode(codes: "npt.ArrayLike") -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Recover ``(x, y, z)`` coordinate arrays from Morton codes."""
    codes = np.asarray(codes, dtype=np.uint64)
    x = _compact_bits(codes)
    y = _compact_bits(codes >> np.uint64(1))
    z = _compact_bits(codes >> np.uint64(2))
    return x, y, z


def morton_encode_scalar(x: int, y: int, z: int) -> int:
    """Scalar convenience wrapper around :func:`morton_encode`."""
    return int(morton_encode(np.array([x]), np.array([y]), np.array([z]))[0])


def morton_decode_scalar(code: int) -> tuple[int, int, int]:
    """Scalar convenience wrapper around :func:`morton_decode`."""
    x, y, z = morton_decode(np.array([code], dtype=np.uint64))
    return int(x[0]), int(y[0]), int(z[0])
