"""Cluster-level simulation: one scheduler instance per node.

Queries fan out to the nodes owning their atoms; a query completes when
every node has finished its share (the engine tracks the global
outstanding count), and an ordered job's next query arrives only after
the global completion plus think time — so a slow node gates the whole
job, just as in the real cluster.

Boundary stencils: a node evaluating interpolation sub-queries near its
partition edge reads the neighboring region through its *own* disk and
cache — modeling the replicated boundary data the production cluster
keeps so interpolation never blocks on a remote node (§III-A's halo
idea, lifted to the partition level).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import EngineConfig, FaultConfig, SchedulerConfig
from repro.engine.results import RunResult
from repro.engine.runner import make_scheduler
from repro.engine.simulator import Simulator
from repro.cluster.partition import MortonRangePartitioner
from repro.workload.trace import Trace

__all__ = ["ClusterResult", "run_cluster"]


@dataclass
class ClusterResult:
    """Cluster run outcome: the merged engine result plus per-node
    load-balance diagnostics."""

    result: RunResult
    n_nodes: int
    node_atoms_executed: list[int]
    node_busy_seconds: list[float]

    @property
    def load_imbalance(self) -> float:
        """max/mean busy time across nodes (1.0 = perfectly balanced)."""
        busy = self.node_busy_seconds
        mean = sum(busy) / len(busy) if busy else 0.0
        return max(busy) / mean if mean > 0 else 0.0


def run_cluster(
    trace: Trace,
    scheduler_name: str,
    n_nodes: int,
    engine: EngineConfig | None = None,
    config: SchedulerConfig | None = None,
    faults: FaultConfig | None = None,
    replication: int | None = None,
) -> ClusterResult:
    """Replay ``trace`` on an ``n_nodes`` cluster of ``scheduler_name``
    instances with Morton-range spatial partitioning.

    ``faults`` overrides ``engine.faults``; ``replication`` overrides
    the fault config's replication factor (each atom gets that many
    ring-wise owners, the failover targets when its primary is down).
    """
    engine = engine or EngineConfig()
    if faults is not None:
        engine = engine.with_(faults=faults)
    if replication is None:
        replication = engine.faults.replication
    partitioner = MortonRangePartitioner(trace.spec, n_nodes, replication=replication)
    schedulers = [make_scheduler(scheduler_name, trace, engine, config) for _ in range(n_nodes)]
    sim = Simulator(
        trace,
        schedulers,
        engine,
        node_of=partitioner.node_of,
        replicas_of=partitioner.replicas_of,
    )
    result = sim.run()
    return ClusterResult(
        result=result,
        n_nodes=n_nodes,
        node_atoms_executed=[n.executor.stats.atoms_executed for n in sim.nodes],
        node_busy_seconds=[n.executor.stats.busy_seconds for n in sim.nodes],
    )
