"""Spatial partitioning of atoms across cluster nodes.

The Turbulence cluster partitions data spatially across nodes
(Fig. 7).  Splitting the Morton curve into contiguous ranges gives
each node a compact spatial region (Morton ranges are unions of octree
cubes), preserving intra-node locality — the property the per-node
schedulers' Morton-ordered batches rely on.  Every time step is split
the same way, so a node owns the full time history of its region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Optional

from repro.errors import PartitionError
from repro.grid.dataset import DatasetSpec

__all__ = ["MortonRangePartitioner"]


@dataclass(frozen=True)
class MortonRangePartitioner:
    """Contiguous equal Morton ranges, one per node.

    ``replication > 1`` gives every atom backup owners — the next
    ``replication - 1`` nodes ring-wise after its primary, mirroring
    chained declustering.  Replicas are failover targets only: routing
    prefers the primary and falls through :meth:`replicas_of` in order
    when the primary is down or has lost the atom.
    """

    spec: DatasetSpec
    n_nodes: int
    replication: int = 1

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise PartitionError("n_nodes must be >= 1")
        if self.n_nodes > self.spec.atoms_per_timestep:
            raise PartitionError("more nodes than atoms per time step")
        if not 1 <= self.replication <= self.n_nodes:
            raise PartitionError(
                f"replication must be in [1, n_nodes]: got {self.replication} "
                f"with {self.n_nodes} nodes"
            )

    def node_of(self, atom_id: int) -> int:
        """Owning node of a packed atom id.

        Inverse of :meth:`atoms_of_node`'s ``[i*per//n, (i+1)*per//n)``
        ranges: the owner of morton ``m`` is the largest ``i`` with
        ``i*per//n <= m``, i.e. ``((m+1)*n - 1) // per``.
        """
        morton = atom_id % self.spec.atoms_per_timestep
        return ((morton + 1) * self.n_nodes - 1) // self.spec.atoms_per_timestep

    def replicas_of(self, atom_id: int) -> tuple[int, ...]:
        """Owning nodes in failover preference order (primary first)."""
        primary = self.node_of(atom_id)
        return tuple((primary + i) % self.n_nodes for i in range(self.replication))

    def atoms_of_node(self, node: int) -> range:
        """Within-step Morton code range owned by ``node``."""
        per = self.spec.atoms_per_timestep
        lo = node * per // self.n_nodes
        hi = (node + 1) * per // self.n_nodes
        return range(lo, hi)

    def assert_replication(
        self,
        down_nodes: AbstractSet[int] = frozenset(),
        require: Optional[int] = None,
        context: str = "partition",
    ) -> None:
        """Check the replica-placement invariant and raise on breach.

        Every *non-empty* node range must keep at least ``require``
        (default: the configured :attr:`replication`) of its ring-wise
        owners outside ``down_nodes``.  Rebalancing and shard-failover
        paths call this before committing a new assignment, so a
        transfer that would leave a range silently under-replicated
        fails loudly with a typed
        :class:`~repro.errors.PartitionError` instead — the range-split
        edge case where a crashed node set swallows every copy of a
        small trailing range used to pass unnoticed until the first
        unroutable sub-query.
        """
        need = self.replication if require is None else require
        if need < 1:
            raise PartitionError(f"{context}: required replica count must be >= 1")
        bad: list[tuple[int, int, int]] = []
        for node in range(self.n_nodes):
            atoms = self.atoms_of_node(node)
            if len(atoms) == 0:
                continue  # an empty range has nothing to replicate
            owners = tuple((node + i) % self.n_nodes for i in range(self.replication))
            alive = sum(1 for owner in owners if owner not in down_nodes)
            if alive < need:
                bad.append((node, atoms.start, atoms.stop))
        if bad:
            raise PartitionError(
                f"{context}: {len(bad)} Morton range(s) would keep fewer than "
                f"{need} available replica(s) (replication={self.replication}, "
                f"down={sorted(down_nodes)})",
                ranges=bad,
            )
