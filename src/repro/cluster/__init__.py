"""Multi-node cluster substrate (paper Fig. 7): spatial partitioning of
atoms across nodes, each running its own scheduler instance."""

from repro.cluster.cluster import ClusterResult, run_cluster
from repro.cluster.partition import MortonRangePartitioner

__all__ = ["MortonRangePartitioner", "run_cluster", "ClusterResult"]
