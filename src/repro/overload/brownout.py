"""Brownout controller: graceful degradation via an explicit mode machine.

Brownout (Klein et al., ICSE'14 lineage) trades optional work for
responsiveness when a service saturates.  Here the controller watches
two EWMA-smoothed signals on the virtual clock —

* **queue pressure**: cluster pending slots over capacity, sampled at
  every overload tick;
* **response pressure**: completed-query response time over the
  configured target, updated at every completion —

and drives a three-state machine with hysteresis::

        enter >= throttle_enter          enter >= shed_enter
    NORMAL -----------------> THROTTLED -----------------> SHEDDING
       ^                        |  ^                          |
       +---- exit < throttle_exit  +------ exit < shed_exit --+

In THROTTLED mode, new *batch*-class jobs are refused at submit (with a
typed rejection and a retry hint) while interactive and tracking
traffic still flows — batch degrades first, per the QoS ordering.  In
SHEDDING mode, the manager additionally drains already-admitted pending
work down to ``shed_target x capacity`` each tick.

Hysteresis (enter threshold above exit threshold) prevents mode
flapping when the smoothed signal hovers near a boundary; the EWMA
itself (``ewma_beta`` history weight) rejects single-sample spikes.
All state is a handful of floats — picklable, deterministic, clock-pure.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.config import OverloadConfig

__all__ = ["Mode", "BrownoutController"]


class Mode(enum.IntEnum):
    """Degradation modes, in increasing severity."""

    NORMAL = 0
    THROTTLED = 1
    SHEDDING = 2


class BrownoutController:
    """EWMA + hysteresis mode machine over queue depth and response time."""

    def __init__(self, config: OverloadConfig) -> None:
        self.config = config
        self.mode = Mode.NORMAL
        #: EWMA of pending-slot utilization in [0, ~1].
        self.queue_signal = 0.0
        #: EWMA of response time over target (0 when no target is set).
        self.response_signal = 0.0
        self._mode_since = 0.0
        #: virtual seconds accumulated per mode name (finalized at run end)
        self.time_in_mode: Dict[str, float] = {m.name: 0.0 for m in Mode}
        #: number of mode transitions (diagnostics)
        self.transitions = 0

    # ------------------------------------------------------------------
    # Signal updates
    # ------------------------------------------------------------------
    def _ewma(self, prev: float, sample: float) -> float:
        beta = self.config.ewma_beta
        return beta * prev + (1.0 - beta) * sample

    def note_response(self, response_time: float) -> None:
        """Fold one completed query's response time into the response
        pressure signal (no-op without a configured target)."""
        target = self.config.target_response_time
        if target is None or target <= 0:
            return
        self.response_signal = self._ewma(self.response_signal, response_time / target)

    def signal(self) -> float:
        """Combined pressure: the worse of queue and response signals.

        The response signal is normalized so 1.0 means "at target";
        pressure-wise that corresponds to the shedding threshold, so it
        is scaled by ``shed_enter`` before being compared with the
        queue-utilization signal.
        """
        return max(self.queue_signal, self.response_signal * self.config.shed_enter)

    # ------------------------------------------------------------------
    # Mode machine
    # ------------------------------------------------------------------
    def on_tick(self, queue_fraction: float, now: float) -> Optional[Mode]:
        """Sample queue pressure and advance the mode machine.

        Returns the new mode if a transition happened, else ``None``.
        Transitions move one severity level per tick — the EWMA already
        smooths the input, and single-step transitions keep the
        time-in-mode accounting simple to reason about.
        """
        self.queue_signal = self._ewma(self.queue_signal, queue_fraction)
        s = self.signal()
        cfg = self.config
        new = self.mode
        if self.mode is Mode.NORMAL:
            if s >= cfg.throttle_enter:
                new = Mode.THROTTLED
        elif self.mode is Mode.THROTTLED:
            if s >= cfg.shed_enter:
                new = Mode.SHEDDING
            elif s < cfg.throttle_exit:
                new = Mode.NORMAL
        else:  # SHEDDING
            if s < cfg.shed_exit:
                new = Mode.THROTTLED
        if new is self.mode:
            return None
        self.time_in_mode[self.mode.name] += now - self._mode_since
        self._mode_since = now
        self.mode = new
        self.transitions += 1
        return new

    def throttles(self, client_class: str) -> bool:
        """Whether a new job of ``client_class`` is refused in the
        current mode.  THROTTLED refuses batch only; SHEDDING refuses
        batch and tracking (interactive always reaches the queue-bound
        check, which is the final arbiter)."""
        if self.mode is Mode.THROTTLED:
            return client_class == "batch"
        if self.mode is Mode.SHEDDING:
            return client_class in ("batch", "tracking")
        return False

    def finalize(self, now: float) -> Dict[str, float]:
        """Close the open mode interval at ``now`` and return the
        completed time-in-mode accounting."""
        self.time_in_mode[self.mode.name] += now - self._mode_since
        self._mode_since = now
        return dict(self.time_in_mode)
