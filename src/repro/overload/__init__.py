"""Overload protection: admission control, backpressure, graceful
degradation (DESIGN.md §9).

The ROADMAP north star is a service absorbing flash-crowd traffic from
millions of users; JAWS itself (§V, §V-A) only *orders* whatever is
queued.  This package adds the saturation layer in front of the
scheduler, in four cooperating pieces:

* :mod:`repro.overload.admission` — per-client token buckets and the
  bounded-queue admission decision, producing typed
  :class:`~repro.errors.QueryRejected` records with deterministic
  virtual-time ``retry_after`` hints;
* :mod:`repro.overload.shedding` — victim-selection policies over
  pending work (reject-newest, lowest-workload-density-first, and
  deadline-infeasible shedding reusing the QoS-JAWS service estimate);
* :mod:`repro.overload.brownout` — an EWMA-smoothed mode controller
  (NORMAL -> THROTTLED -> SHEDDING) with hysteresis that throttles
  batch traffic before interactive traffic;
* :mod:`repro.overload.fairness` — weighted fair quotas on pending
  sub-query slots per client class, so a heavy scan cannot starve
  point queries even below the shedding threshold.

:class:`~repro.overload.manager.OverloadManager` is the façade the
discrete-event engine talks to.  Every decision runs on the virtual
clock with no randomness, and the manager is plain picklable state, so
overload-protected runs — including crash+resume through the
checkpoint subsystem — stay bit-identical for the same seed.
"""

from repro.overload.admission import AdmissionController, TokenBucketLimiter
from repro.overload.brownout import BrownoutController, Mode
from repro.overload.fairness import FairShareController
from repro.overload.manager import OverloadManager
from repro.overload.shedding import (
    PendingWork,
    ShedPolicy,
    estimate_service,
    make_shed_policy,
)

__all__ = [
    "AdmissionController",
    "TokenBucketLimiter",
    "BrownoutController",
    "Mode",
    "FairShareController",
    "OverloadManager",
    "PendingWork",
    "ShedPolicy",
    "estimate_service",
    "make_shed_policy",
]
