"""Load-shedding policies: who to drop when the queues are full.

A policy ranks *pending* (admitted, incomplete) queries into shed
order.  All policies are class-aware: lighter-weighted client classes
(batch before tracking before interactive, under the default weights)
are shed first, so the brownout promise — batch degrades before
interactive — holds at every layer.  Within a class, the configured
policy decides:

``reject-newest``
    Drop the most recently arrived first.  The classic bounded-queue
    discipline: clients that just arrived lose the least invested
    service time, and the retry hint is honest.
``low-density``
    Drop the lowest *workload density* — positions per touched atom —
    first.  Density is the per-query analogue of the paper's workload
    throughput (Eq. 1): a low-density query buys the least sharing per
    unit of I/O, so shedding it costs the batch schedule the least.
``deadline``
    Drop queries whose proportional deadline (``arrival +
    slack_factor x estimated service``, reusing the QoS-JAWS service
    estimate) provably cannot be met: even if scheduled immediately at
    ``now``, the query would finish late.  Feasible queries are only
    shed after every infeasible one, least slack first.

Policies are pure functions of the candidate set and the virtual
clock — no randomness, no wall-clock — so shedding is deterministic
and bit-identical across same-seed runs and crash+resume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.config import CostModel, OverloadConfig, SHED_POLICIES
from repro.errors import ConfigurationError
from repro.workload.query import SubQuery

__all__ = ["PendingWork", "ShedPolicy", "estimate_service", "make_shed_policy"]


def estimate_service(subqueries: Sequence[SubQuery], cost: CostModel) -> float:
    """Standalone service estimate of one query's sub-queries: one atom
    read per sub-query plus per-position compute — the same formula as
    ``QoSJAWSScheduler.estimate_service``."""
    n_positions = sum(sq.n_positions for sq in subqueries)
    return len(subqueries) * cost.t_b + n_positions * cost.t_m


@dataclass
class PendingWork:
    """Shedding's view of one admitted, incomplete query.

    Registered by the engine at arrival and dropped at
    completion/cancellation; plain picklable data, so it travels in
    checkpoint snapshots.

    Attributes
    ----------
    query_id / job_id / client_class:
        Identity and admission class.
    arrival:
        Virtual arrival time (reject-newest key, deadline base).
    n_subqueries:
        Sub-queries (atoms touched) at admission — the slots the query
        occupies in the fair-share accounting.
    density:
        Positions per touched atom (low-density key).
    service_estimate:
        Standalone service estimate, virtual seconds.
    deadline:
        Proportional deadline ``arrival + slack_factor x estimate``.
    class_weight:
        Fair-share weight of the client class (shed order: lighter
        classes first).
    """

    query_id: int
    job_id: int
    client_class: str
    arrival: float
    n_subqueries: int
    density: float
    service_estimate: float
    deadline: float
    class_weight: float

    def infeasible(self, now: float) -> bool:
        """True when the deadline cannot be met even if the query were
        scheduled immediately at ``now``."""
        return now + self.service_estimate > self.deadline

    def slack(self, now: float) -> float:
        """Seconds to spare if scheduled immediately (negative =
        provably late)."""
        return self.deadline - now - self.service_estimate


class ShedPolicy:
    """Victim ranking over pending queries.

    ``rank`` returns candidates in shed order (first = first victim).
    The class weight is always the primary key — overload protection
    never sheds an interactive point query while a batch scan's work
    could be shed instead.
    """

    name: str = "policy"

    def __init__(self, key: Callable[[PendingWork, float], Tuple[float, ...]]) -> None:
        self._key = key

    def rank(self, candidates: Sequence[PendingWork], now: float) -> List[PendingWork]:
        return sorted(
            candidates,
            key=lambda p: (p.class_weight,) + self._key(p, now) + (p.query_id,),
        )

    def infeasible(
        self, candidates: Sequence[PendingWork], now: float
    ) -> List[PendingWork]:
        """Candidates whose deadline provably cannot be met, in shed
        order (used by the ``deadline`` policy's tick sweep)."""
        return self.rank([p for p in candidates if p.infeasible(now)], now)


def _newest_key(p: PendingWork, now: float) -> Tuple[float, ...]:
    return (-p.arrival,)


def _density_key(p: PendingWork, now: float) -> Tuple[float, ...]:
    return (p.density,)


def _deadline_key(p: PendingWork, now: float) -> Tuple[float, ...]:
    # Infeasible first (0 sorts before 1), then least slack.
    return (0.0 if p.infeasible(now) else 1.0, p.slack(now))


def make_shed_policy(name: str) -> ShedPolicy:
    """Instantiate a shed policy by its configured name."""
    keys: dict[str, Callable[[PendingWork, float], Tuple[float, ...]]] = {
        "reject-newest": _newest_key,
        "low-density": _density_key,
        "deadline": _deadline_key,
    }
    if name not in keys:
        raise ConfigurationError(
            f"unknown shed policy {name!r}; choose from {SHED_POLICIES}"
        )
    policy = ShedPolicy(keys[name])
    policy.name = name
    return policy


def shed_policy_for(config: OverloadConfig) -> ShedPolicy:
    """The policy selected by ``config.shed_policy``."""
    return make_shed_policy(config.shed_policy)
