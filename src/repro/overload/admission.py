"""Admission control: per-client token buckets + bounded queues.

Admission is *job*-granular: a job is admitted or rejected as a unit
at submit time, before any scheduler hears about it.  This is what
makes rejection safe under gated execution — a rejected job never
enters any node's precedence graph, so there are no half-admitted
ordered jobs to deadlock on (DESIGN.md §9).

Everything runs on the virtual clock: token refill is a closed-form
function of elapsed virtual time and the configured rate, so the same
arrival sequence always produces the same admission decisions and the
same ``retry_after`` hints — bit-identical across runs and across
crash+resume (the limiter state is plain picklable data captured by
checkpoint snapshots).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.config import OverloadConfig
from repro.errors import QueryRejected
from repro.workload.job import Job

__all__ = ["TokenBucketLimiter", "AdmissionController"]


class TokenBucketLimiter:
    """Deterministic virtual-time token bucket, one bucket per client.

    A bucket refills at ``rate`` tokens per virtual second up to
    ``burst`` banked tokens; each admission costs one token.  Buckets
    are created full on first sight of a client (a fresh client can
    burst immediately, like any rate limiter warming up).
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst < 1.0:
            raise ValueError("rate must be > 0 and burst >= 1")
        self.rate = rate
        self.burst = burst
        # client id -> (tokens, last refill virtual time)
        self._buckets: Dict[int, Tuple[float, float]] = {}

    def _refill(self, client: int, now: float) -> float:
        tokens, last = self._buckets.get(client, (self.burst, now))
        if now > last:
            tokens = min(self.burst, tokens + (now - last) * self.rate)
        return tokens

    def try_acquire(self, client: int, now: float) -> Optional[float]:
        """Spend one token for ``client`` at virtual time ``now``.

        Returns ``None`` on success, or the deterministic virtual-time
        ``retry_after`` (seconds until the bucket holds a full token)
        on refusal.  Refusals do not consume anything.
        """
        tokens = self._refill(client, now)
        if tokens >= 1.0:
            self._buckets[client] = (tokens - 1.0, now)
            return None
        self._buckets[client] = (tokens, now)
        return (1.0 - tokens) / self.rate

    def tokens(self, client: int, now: float) -> float:
        """Current balance (diagnostics; does not mutate state)."""
        return self._refill(client, now)


class AdmissionController:
    """Job-granular admission: rate limits and the hard queue bound.

    The controller produces a typed :class:`QueryRejected` (returned,
    not raised — the engine records it; a real front-end would
    propagate it to the client) or ``None`` to admit.  Brownout-mode
    and fair-quota refusals are decided by their own controllers and
    funneled through :meth:`reject` so every refusal carries the same
    typed, deterministic shape.
    """

    def __init__(self, config: OverloadConfig, capacity: int) -> None:
        self.config = config
        #: cluster-wide pending-slot capacity (nodes x max_queue_depth)
        self.capacity = capacity
        self.limiter = TokenBucketLimiter(config.client_rate, config.client_burst)

    # ------------------------------------------------------------------
    def reject(
        self, job: Job, reason: str, retry_after: float, now: float
    ) -> QueryRejected:
        """Build the typed rejection record for ``job``."""
        return QueryRejected(
            "admission refused",
            job_id=job.job_id,
            user_id=job.user_id,
            client_class=job.client_class,
            reason=reason,
            retry_after=retry_after,
            clock=now,
        )

    def admit_job(
        self, job: Job, global_depth: int, now: float
    ) -> Optional[QueryRejected]:
        """Admission checks owned by this controller: the hard cluster
        queue bound, then the client's token bucket.

        The queue bound is checked first so a saturated cluster refuses
        without charging the client a token (the client did nothing
        wrong; the service is full).
        """
        if global_depth >= self.capacity:
            return self.reject(job, "queue_full", self.config.control_interval, now)
        retry_after = self.limiter.try_acquire(job.user_id, now)
        if retry_after is not None:
            return self.reject(job, "rate_limit", retry_after, now)
        return None
