"""Weighted fair quotas on pending sub-query slots per client class.

Rate limits are per *client*; quotas are per *class*.  Without them, a
handful of batch scans — each under its own token budget — can fill
every pending slot and starve interactive point queries long before
the cluster is technically "full".  The fair-share controller divides
cluster pending capacity among client classes in proportion to their
configured weights (default interactive 6 : tracking 3 : batch 1) and
refuses a class's new jobs once the class exceeds its share.

Quotas are *work-conserving*: they only bind once global utilization
reaches ``quota_enforce_fraction`` of capacity.  Below that, an idle
cluster happily runs 100 % batch traffic; the quota exists to protect
latecomers when slots are scarce, not to waste capacity reserving
slots nobody wants.
"""

from __future__ import annotations

from typing import Dict

from repro.config import OverloadConfig

__all__ = ["FairShareController"]


class FairShareController:
    """Per-class pending-slot quotas derived from configured weights."""

    def __init__(self, config: OverloadConfig, capacity: int) -> None:
        self.config = config
        self.capacity = capacity
        weights = dict(config.class_weights)
        total = sum(weights.values())
        #: class -> absolute pending-slot quota (fractional; compared
        #: against integer slot counts)
        self.quota: Dict[str, float] = {
            name: capacity * w / total for name, w in weights.items()
        }
        # Classes absent from the config get the smallest configured
        # share — unknown traffic should not out-rank configured
        # traffic.
        self._fallback = min(self.quota.values())
        self.min_weight = min(weights.values())

    def weight(self, client_class: str) -> float:
        """Fair-share weight of ``client_class`` (fallback: the
        smallest configured weight)."""
        return dict(self.config.class_weights).get(client_class, self.min_weight)

    def quota_for(self, client_class: str) -> float:
        return self.quota.get(client_class, self._fallback)

    def over_quota(
        self, client_class: str, class_slots: int, global_slots: int
    ) -> bool:
        """Whether a new job of ``client_class`` must be refused.

        ``class_slots`` is the class's current pending sub-query slots,
        ``global_slots`` the cluster-wide total.  Quotas bind only once
        the cluster is at least ``quota_enforce_fraction`` full.
        """
        if global_slots < self.config.quota_enforce_fraction * self.capacity:
            return False
        return class_slots >= self.quota_for(client_class)
