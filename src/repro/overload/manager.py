"""OverloadManager: the façade the discrete-event engine talks to.

The manager composes the four overload pieces — admission (token
buckets + hard queue bound), brownout (mode machine), fairness (class
quotas), and shedding (victim ranking) — behind a handful of hooks the
engine calls at well-defined points:

* ``admit_job`` at JOB_SUBMIT, *before* any scheduler broadcast;
* ``register`` / ``on_subquery_done`` / ``on_query_removed`` as pending
  work is created, progresses, and retires;
* ``rank_victims`` when a node's queue exceeds its bound at arrival;
* ``on_tick`` at every OVERLOAD_TICK to advance the mode machine and
  (in SHEDDING mode) pick pending work to drain.

All decisions are pure functions of virtual time and registered state;
the manager holds only plain picklable data (dicts of floats and
dataclasses, a policy whose key is a module-level function), so the
checkpoint subsystem snapshots it like any other simulator attribute
and crash+resume reproduces every admission and shedding decision
bit-identically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.config import CostModel, OverloadConfig
from repro.errors import QueryRejected
from repro.overload.admission import AdmissionController
from repro.overload.brownout import BrownoutController, Mode
from repro.overload.fairness import FairShareController
from repro.overload.shedding import PendingWork, make_shed_policy
from repro.workload.job import Job

__all__ = ["OverloadManager"]

#: at most this many typed rejection records are kept verbatim in the
#: run result (counters cover the rest)
MAX_REJECTION_SAMPLES = 20


class OverloadManager:
    """Admission, fairness, brownout, and shedding behind one interface."""

    def __init__(self, config: OverloadConfig, cost: CostModel, n_nodes: int) -> None:
        self.config = config
        self.cost = cost
        self.capacity = max(1, n_nodes) * config.max_queue_depth
        self.admission = AdmissionController(config, self.capacity)
        self.brownout = BrownoutController(config)
        self.fairness = FairShareController(config, self.capacity)
        self.policy = make_shed_policy(config.shed_policy)
        #: live admitted-but-incomplete queries, by query id
        self.pending: Dict[int, PendingWork] = {}
        #: pending sub-query slots per client class
        self.class_slots: Dict[str, int] = {}
        # --- counters -------------------------------------------------
        self.rejected_jobs = 0
        self.rejected_queries = 0
        self.rejected_by_reason: Dict[str, int] = {}
        self.rejected_by_class: Dict[str, int] = {}
        self.shed_by_cause: Dict[str, int] = {}
        self.throttled_jobs = 0
        self.ticks = 0
        self.rejection_samples: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # Admission (JOB_SUBMIT)
    # ------------------------------------------------------------------
    def admit_job(
        self, job: Job, global_depth: int, now: float
    ) -> Optional[QueryRejected]:
        """Decide admission for ``job`` as a unit.  Returns ``None`` to
        admit, or the typed rejection to record.

        Check order: brownout mode (cheapest signal, protects the whole
        cluster), fair quota (protects other classes), then the
        admission controller's queue bound and per-client token bucket.
        """
        cfg = self.config
        rejection: Optional[QueryRejected] = None
        if self.brownout.throttles(job.client_class):
            rejection = self.admission.reject(
                job, "throttled", cfg.control_interval, now
            )
        elif self.fairness.over_quota(
            job.client_class, self.class_slots.get(job.client_class, 0), global_depth
        ):
            rejection = self.admission.reject(job, "quota", cfg.control_interval, now)
        else:
            rejection = self.admission.admit_job(job, global_depth, now)
        if rejection is not None:
            self._note_rejection(rejection, job)
        return rejection

    def _note_rejection(self, rejection: QueryRejected, job: Job) -> None:
        self.rejected_jobs += 1
        self.rejected_queries += job.n_queries
        reason = rejection.reason
        self.rejected_by_reason[reason] = self.rejected_by_reason.get(reason, 0) + 1
        cls = job.client_class
        self.rejected_by_class[cls] = self.rejected_by_class.get(cls, 0) + 1
        if reason == "throttled":
            self.throttled_jobs += 1
        if len(self.rejection_samples) < MAX_REJECTION_SAMPLES:
            self.rejection_samples.append(
                {
                    "job_id": rejection.job_id,
                    "user_id": rejection.user_id,
                    "client_class": rejection.client_class,
                    "reason": reason,
                    "retry_after": rejection.retry_after,
                    "clock": rejection.clock,
                }
            )

    # ------------------------------------------------------------------
    # Pending-work registry
    # ------------------------------------------------------------------
    def register(self, pending: PendingWork, n_slots: int) -> None:
        """Record an admitted query's pending work (called at arrival)."""
        self.pending[pending.query_id] = pending
        cls = pending.client_class
        self.class_slots[cls] = self.class_slots.get(cls, 0) + n_slots

    def on_subquery_done(self, query_id: int) -> None:
        """One sub-query slot of ``query_id`` freed by a batch completion."""
        pending = self.pending.get(query_id)
        if pending is not None:
            self.class_slots[pending.client_class] -= 1

    def on_query_removed(self, query_id: int, remaining_slots: int) -> None:
        """Query retired (completed or cancelled); release its remaining
        slots and forget its pending record."""
        pending = self.pending.pop(query_id, None)
        if pending is not None and remaining_slots:
            self.class_slots[pending.client_class] -= remaining_slots

    def note_response(self, response_time: float) -> None:
        """Feed one completed query's response time to the brownout
        response-pressure signal."""
        self.brownout.note_response(response_time)

    # ------------------------------------------------------------------
    # Shedding
    # ------------------------------------------------------------------
    def rank_victims(self, query_ids: Iterable[int], now: float) -> List[PendingWork]:
        """Rank the given pending queries into shed order (first = first
        victim) under the configured policy."""
        candidates = [self.pending[q] for q in query_ids if q in self.pending]
        return self.policy.rank(candidates, now)

    def note_shed(self, cause: str) -> None:
        self.shed_by_cause[cause] = self.shed_by_cause.get(cause, 0) + 1

    # ------------------------------------------------------------------
    # Control loop (OVERLOAD_TICK)
    # ------------------------------------------------------------------
    def on_tick(self, global_depth: int, now: float) -> List[int]:
        """Advance the mode machine; in SHEDDING mode, return query ids
        to drain (shed order) until pending load is back at
        ``shed_target x capacity``."""
        self.ticks += 1
        self.brownout.on_tick(global_depth / self.capacity, now)
        if self.brownout.mode is not Mode.SHEDDING:
            return []
        target = self.config.shed_target * self.capacity
        excess = global_depth - target
        if excess <= 0:
            return []
        victims: List[int] = []
        for p in self.policy.rank(list(self.pending.values()), now):
            if excess <= 0:
                break
            # A query's shed frees its remaining slots; approximate with
            # its full sub-query count (remaining <= that, so the drain
            # may undershoot slightly and finish next tick — never
            # over-sheds past the target by more than one query).
            victims.append(p.query_id)
            excess -= max(1, p.n_subqueries)
        return victims

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def snapshot(self, now: float) -> Dict[str, object]:
        """JSON-safe summary for :class:`~repro.engine.results.RunResult`."""
        return {
            "mode": self.brownout.mode.name,
            "time_in_mode": self.brownout.finalize(now),
            "mode_transitions": self.brownout.transitions,
            "ticks": self.ticks,
            "capacity": self.capacity,
            "rejected_jobs": self.rejected_jobs,
            "rejected_queries": self.rejected_queries,
            "rejected_by_reason": dict(sorted(self.rejected_by_reason.items())),
            "rejected_by_class": dict(sorted(self.rejected_by_class.items())),
            "shed_by_cause": dict(sorted(self.shed_by_cause.items())),
            "throttled_jobs": self.throttled_jobs,
            "shed_policy": self.config.shed_policy,
            "rejection_samples": list(self.rejection_samples),
        }
