"""LRU-K replacement (O'Neil, O'Neil & Weikum, SIGMOD '93).

SQL Server's page replacement is "a variant of LRU-K" (paper §II/§V-B);
the paper uses it as the workload-oblivious baseline in Table I.

The policy evicts the resident atom with the maximum *backward
K-distance*: the atom whose K-th most recent reference is oldest.
Atoms with fewer than K references are preferred victims (their
K-distance is infinite), broken by least-recent last access — the
property that makes LRU-K scan-resistant.  A bounded retained-history
map remembers reference times of recently evicted atoms so a quickly
re-fetched atom keeps its history, as the original algorithm specifies.

Victim selection uses a lazily-invalidated min-heap: each access pushes
a fresh versioned entry and eviction pops until it finds a current one,
giving amortized O(log n) instead of an O(n) scan per miss.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict, deque

from repro.cache.base import CachePolicy, register_policy

__all__ = ["LRUKPolicy"]

_NEG_INF = float("-inf")


@register_policy("lruk")
class LRUKPolicy(CachePolicy):
    """LRU-K victim selection over resident atoms.

    Parameters
    ----------
    k:
        History depth (2 in the classical configuration).
    retained_history:
        Number of evicted atoms whose reference history is retained.
    """

    def __init__(self, k: int = 2, retained_history: int = 1024) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self._k = k
        self._resident: dict[int, deque] = {}
        self._retained: OrderedDict[int, deque] = OrderedDict()
        self._retained_cap = retained_history
        # Lazy heap of (kth_ref_time, last_ref_time, version, atom).
        self._heap: list[tuple[float, float, int, int]] = []
        self._version: dict[int, int] = {}

    def _push(self, atom_id: int) -> None:
        history = self._resident[atom_id]
        kth = history[0] if len(history) == self._k else _NEG_INF
        last = history[-1] if history else _NEG_INF
        version = self._version.get(atom_id, 0) + 1
        self._version[atom_id] = version
        heapq.heappush(self._heap, (kth, last, version, atom_id))

    def on_insert(self, atom_id: int, now: float) -> None:
        history = self._retained.pop(atom_id, None)
        if history is None:
            history = deque(maxlen=self._k)
        self._resident[atom_id] = history
        self._push(atom_id)

    def on_evict(self, atom_id: int) -> None:
        history = self._resident.pop(atom_id, None)
        self._version.pop(atom_id, None)
        if history is not None and self._retained_cap > 0:
            self._retained[atom_id] = history
            self._retained.move_to_end(atom_id)
            while len(self._retained) > self._retained_cap:
                self._retained.popitem(last=False)

    def on_access(self, atom_id: int, now: float) -> None:
        self._resident[atom_id].append(now)
        self._push(atom_id)

    def choose_victim(self) -> int:
        while self._heap:
            kth, last, version, atom_id = self._heap[0]
            if atom_id in self._resident and self._version.get(atom_id) == version:
                return atom_id
            heapq.heappop(self._heap)  # stale entry
        raise RuntimeError("choose_victim called on empty cache")
