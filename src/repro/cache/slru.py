"""Segmented LRU with per-run batch promotion (paper §V-B).

The paper's SLRU variant differs from classic SLRU (Karedla et al.):
instead of promoting on the second hit, it counts accesses during each
*run* of the workload and, at the run boundary, promotes the most
frequently accessed atoms into a small *protected* segment (5–10 % of
the cache).  Atoms squeezed out of the protected segment re-enter the
probationary segment at its MRU end.  Victims always come from the
probationary LRU end, so repeatedly queried regions of interest (e.g.
clustered inertial particles) survive full-time-step scans.

"Implementing this policy incurs almost no additional overhead"
(Table I: < 1 ms/query) — promotion work is O(residents·log) once per
run, amortized over the run's queries.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict

from repro.cache.base import CachePolicy, register_policy

__all__ = ["SLRUPolicy"]


@register_policy("slru")
class SLRUPolicy(CachePolicy):
    """Segmented LRU with batch promotion at run boundaries.

    Parameters
    ----------
    capacity:
        Total cache capacity in atoms (needed to size the protected
        segment).
    protected_fraction:
        Fraction of ``capacity`` reserved for the protected segment
        (the paper allocates 5 %).
    """

    def __init__(self, capacity: int = 256, protected_fraction: float = 0.05) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 < protected_fraction < 1.0:
            raise ValueError("protected_fraction must be in (0, 1)")
        self._protected_cap = max(1, int(round(capacity * protected_fraction)))
        self._probation: OrderedDict[int, None] = OrderedDict()
        self._protected: OrderedDict[int, None] = OrderedDict()
        self._run_counts: dict[int, int] = {}

    # -- residency ------------------------------------------------------
    def on_insert(self, atom_id: int, now: float) -> None:
        self._probation[atom_id] = None

    def on_evict(self, atom_id: int) -> None:
        self._probation.pop(atom_id, None)
        self._protected.pop(atom_id, None)
        self._run_counts.pop(atom_id, None)

    def on_access(self, atom_id: int, now: float) -> None:
        # Recency is tracked within the atom's current segment.
        if atom_id in self._protected:
            self._protected.move_to_end(atom_id)
        else:
            self._probation.move_to_end(atom_id)
        self._run_counts[atom_id] = self._run_counts.get(atom_id, 0) + 1

    def choose_victim(self) -> int:
        if self._probation:
            return next(iter(self._probation))
        return next(iter(self._protected))

    # -- run boundary: batch promotion -----------------------------------
    def on_run_boundary(self) -> None:
        if not self._run_counts:
            return
        resident = [
            (count, atom_id)
            for atom_id, count in self._run_counts.items()
            if atom_id in self._probation or atom_id in self._protected
        ]
        top = heapq.nlargest(self._protected_cap, resident)
        promote = {atom_id for _, atom_id in top}

        # Demote protected atoms that fell out of the top set to the MRU
        # end of the probationary segment (paper: evicted-from-protected
        # atoms are inserted at the probationary MRU end).
        for atom_id in [a for a in self._protected if a not in promote]:
            del self._protected[atom_id]
            self._probation[atom_id] = None

        for atom_id in promote:
            if atom_id in self._probation:
                del self._probation[atom_id]
                self._protected[atom_id] = None
            else:
                self._protected.move_to_end(atom_id)

        self._run_counts.clear()

    # -- diagnostics ------------------------------------------------------
    @property
    def protected_size(self) -> int:
        """Current number of atoms in the protected segment."""
        return len(self._protected)

    @property
    def probation_size(self) -> int:
        """Current number of atoms in the probationary segment."""
        return len(self._probation)
