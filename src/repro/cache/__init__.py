"""Cache replacement policies (paper §V-B, Table I).

* ``lru`` — plain LRU (reference policy).
* ``lruk`` — LRU-K, the stand-in for SQL Server's page replacement.
* ``slru`` — Segmented LRU with per-run batch promotion.
* ``urc`` — Utility-Ranked Caching coordinated with the scheduler.

Use :func:`repro.cache.make_policy` / ``CacheConfig.policy`` to select.
"""

from repro.cache.base import CachePolicy, available_policies, make_policy, register_policy
from repro.cache.lru import LRUPolicy
from repro.cache.lruk import LRUKPolicy
from repro.cache.slru import SLRUPolicy
from repro.cache.urc import URCPolicy

__all__ = [
    "CachePolicy",
    "make_policy",
    "register_policy",
    "available_policies",
    "LRUPolicy",
    "LRUKPolicy",
    "SLRUPolicy",
    "URCPolicy",
]
