"""Utility-Ranked Caching (paper §V-B).

URC coordinates eviction with the two-level scheduler: because JAWS
evaluates batches of ``k`` atoms from one time step together, atoms
that will be *scheduled together soon* must be *cached together*.  URC
therefore evicts

* atoms from the time step with the lowest mean workload throughput
  first, and
* within a time step, atoms in increasing workload-throughput order,

i.e. the resident atom least useful to the pending workload — a
workload-informed approximation of Belady's farthest-in-future rule.

The scheduler installs ``set_utility_fn`` (a key function returning
``(mean U of the atom's time step, U of the atom)``) and calls
``invalidate_utilities`` whenever queue state changes, mirroring the
paper's observation that URC "must update the ranks of all atoms in the
corresponding time step" after each query/time step — which is exactly
why its measured overhead (7 ms/query in Table I) exceeds SLRU's.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cache.base import CachePolicy, register_policy

__all__ = ["URCPolicy"]


@register_policy("urc")
class URCPolicy(CachePolicy):
    """Evict the resident atom with the lowest scheduler utility.

    Falls back to LRU order among utility ties (and to pure LRU until a
    utility function is installed), so the policy degrades gracefully
    when run without a coordinating scheduler.
    """

    def __init__(self) -> None:
        self._resident: dict[int, float] = {}  # atom -> last access time
        self._utility_fn: Optional[Callable[[int], tuple]] = None
        self._ranks: dict[int, tuple] = {}
        self._ranks_valid = False

    def set_utility_fn(self, fn: Callable[[int], tuple]) -> None:
        self._utility_fn = fn
        self._ranks_valid = False

    def invalidate_utilities(self) -> None:
        self._ranks_valid = False

    def on_insert(self, atom_id: int, now: float) -> None:
        self._resident[atom_id] = now
        self._ranks_valid = False

    def on_evict(self, atom_id: int) -> None:
        self._resident.pop(atom_id, None)
        self._ranks.pop(atom_id, None)

    def on_access(self, atom_id: int, now: float) -> None:
        self._resident[atom_id] = now

    def _refresh_ranks(self) -> None:
        fn = self._utility_fn
        assert fn is not None
        self._ranks = {atom_id: fn(atom_id) for atom_id in self._resident}
        self._ranks_valid = True

    def choose_victim(self) -> int:
        if not self._resident:
            raise RuntimeError("choose_victim called on empty cache")
        if self._utility_fn is None:
            return min(self._resident, key=self._resident.__getitem__)
        if not self._ranks_valid:
            self._refresh_ranks()
        # Lowest utility first; LRU tiebreak.
        return min(
            self._resident,
            key=lambda a: (self._ranks.get(a, ()), self._resident[a]),
        )
