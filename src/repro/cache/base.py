"""Cache replacement policy interface and registry.

The buffer cache (:mod:`repro.storage.buffer`) delegates victim
selection to a :class:`CachePolicy`.  Policies see every access and
insert/evict, plus the *run boundary* callback that drives SLRU's batch
promotion (paper §V-B) and, for URC, a utility function exported by the
scheduler.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Type

__all__ = ["CachePolicy", "register_policy", "make_policy", "available_policies"]


class CachePolicy(ABC):
    """Replacement policy for a fixed-capacity cache of atom ids.

    The owning :class:`~repro.storage.buffer.BufferCache` guarantees:

    * ``on_insert`` is called once per resident atom, and ``on_evict``
      exactly once when it leaves;
    * ``on_access`` is called for every lookup of a *resident* atom
      (hits) and immediately after ``on_insert`` for misses;
    * ``choose_victim`` is only called when the cache is full, and must
      return a currently resident atom id.
    """

    @abstractmethod
    def on_insert(self, atom_id: int, now: float) -> None:
        """An atom became resident."""

    @abstractmethod
    def on_evict(self, atom_id: int) -> None:
        """An atom left the cache (via ``choose_victim`` or explicit drop)."""

    @abstractmethod
    def on_access(self, atom_id: int, now: float) -> None:
        """A resident atom was referenced."""

    @abstractmethod
    def choose_victim(self) -> int:
        """Pick the resident atom to evict."""

    def on_run_boundary(self) -> None:
        """The engine completed one run of the workload (default: no-op)."""

    def set_utility_fn(self, fn: Callable[[int], tuple]) -> None:
        """Install the scheduler's utility ranking (URC only; default no-op).

        ``fn(atom_id)`` returns a sort key that is *lower* for atoms
        that should be evicted sooner.
        """

    def invalidate_utilities(self) -> None:
        """Scheduler state changed; cached utility ranks are stale
        (URC only; default no-op)."""


_REGISTRY: Dict[str, Type[CachePolicy]] = {}


def register_policy(name: str) -> Callable[[Type[CachePolicy]], Type[CachePolicy]]:
    """Class decorator registering a policy under ``name``."""

    def deco(cls: Type[CachePolicy]) -> Type[CachePolicy]:
        if name in _REGISTRY:
            raise ValueError(f"duplicate cache policy name: {name}")
        _REGISTRY[name] = cls
        return cls

    return deco


def make_policy(name: str, **kwargs: object) -> CachePolicy:
    """Instantiate a registered policy by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown cache policy {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def available_policies() -> list[str]:
    """Names of all registered policies."""
    return sorted(_REGISTRY)
