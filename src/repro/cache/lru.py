"""Plain least-recently-used replacement (reference policy)."""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import CachePolicy, register_policy

__all__ = ["LRUPolicy"]


@register_policy("lru")
class LRUPolicy(CachePolicy):
    """Evict the least recently used resident atom."""

    def __init__(self) -> None:
        self._recency: OrderedDict[int, None] = OrderedDict()

    def on_insert(self, atom_id: int, now: float) -> None:
        self._recency[atom_id] = None

    def on_evict(self, atom_id: int) -> None:
        self._recency.pop(atom_id, None)

    def on_access(self, atom_id: int, now: float) -> None:
        self._recency.move_to_end(atom_id)

    def choose_victim(self) -> int:
        return next(iter(self._recency))
