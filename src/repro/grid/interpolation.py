"""Interpolation stencils and the atoms they touch.

Turbulence queries evaluate Lagrangian interpolation kernels at
arbitrary positions (paper §III-A, §V).  A kernel of order ``2h`` needs
``h`` grid points on each side of the position; atoms carry a
replicated halo (4 voxels in production) so most stencils are satisfied
from the primary atom alone, but positions close to an atom face whose
stencil exceeds the halo must also read the adjacent atom(s).

Two-level scheduling exploits exactly this: co-scheduling a batch of
``k`` Morton-adjacent atoms means a neighbor touched as part of one
sub-query's stencil is likely the primary atom of another sub-query in
the same batch, so it is read once (paper §V).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.dataset import DatasetSpec
from repro.morton.codec import morton_decode_scalar, morton_encode_unchecked

__all__ = [
    "InterpolationSpec",
    "neighbor_atoms_from_keys",
    "stencil_atoms",
    "stencil_overshoot_keys",
    "subquery_neighbor_atoms",
]


@dataclass(frozen=True)
class InterpolationSpec:
    """Interpolation kernel description.

    Attributes
    ----------
    order:
        Lagrange polynomial order; the kernel needs ``order // 2`` grid
        points on each side of the target position (production supports
        4th, 6th and 8th order).
    """

    order: int = 8

    def __post_init__(self) -> None:
        if self.order < 2 or self.order % 2:
            raise ValueError("order must be an even integer >= 2")

    @property
    def half_width(self) -> int:
        """Grid points needed on each side of a position."""
        return self.order // 2


def stencil_atoms(
    spec: DatasetSpec,
    positions: np.ndarray,
    timestep: int,
    interp: InterpolationSpec,
) -> np.ndarray:
    """Unique packed atom ids a batch of stencils must read.

    For each position, the stencil spans
    ``[floor(p) - h + 1, floor(p) + h]`` per axis with
    ``h = interp.half_width``.  The primary atom's halo covers ``halo``
    voxels beyond each face, so a neighbor read is required on an axis
    side only when the stencil extends further than the halo.

    Returns the sorted unique atom ids (including primary atoms) needed
    to evaluate all positions; callers diff against the primary set to
    count extra neighbor I/O.
    """
    pos = np.mod(np.asarray(positions, dtype=np.float64), spec.grid_side)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError("positions must have shape (N, 3)")
    h = interp.half_width
    base = np.floor(pos).astype(np.int64)
    lo = base - h + 1  # first grid point used, per axis
    hi = base + h  # last grid point used, per axis

    side = spec.atom_side
    n_axis = spec.atoms_per_axis
    primary = base // side  # (N, 3) atom coords

    # Per-axis neighbor offset: -1 / +1 when the stencil exceeds the
    # halo on that face, else 0.  The stencil is narrower than an atom,
    # so a position never needs both sides of one axis.
    atom_lo = primary * side
    offset = (hi > atom_lo + side - 1 + spec.halo).astype(np.int64)
    offset -= lo < atom_lo - spec.halo

    primary_codes = morton_encode_unchecked(primary[:, 0], primary[:, 1], primary[:, 2])
    needs = offset.any(axis=1)
    if not needs.any():
        unique = np.unique(primary_codes.astype(np.int64))
        return timestep * spec.atoms_per_timestep + unique

    # Only boundary positions expand; enumerate the up-to-8 corner
    # combinations of their (possibly zero) per-axis offsets.
    sub_primary = primary[needs]
    sub_offset = offset[needs]
    pieces = [primary_codes.astype(np.int64)]
    for bits in range(1, 8):
        mask = np.array([(bits >> a) & 1 for a in range(3)], dtype=np.int64)
        delta = sub_offset * mask
        if not delta.any():
            continue
        coords = (sub_primary + delta) % n_axis
        pieces.append(
            morton_encode_unchecked(coords[:, 0], coords[:, 1], coords[:, 2]).astype(np.int64)
        )
    unique = np.unique(np.concatenate(pieces))
    return timestep * spec.atoms_per_timestep + unique


# Sub-key expansion table: offset key (base-3 digits of dx,dy,dz each
# +1) -> all axis-subset keys its stencil box overlaps.  A corner
# offset (1,1,1) needs every sub-combination of its nonzero axes.
def _subcombos(dx: int, dy: int, dz: int) -> list[tuple[int, int, int]]:
    out = []
    for bx in (0, dx) if dx else (0,):
        for by in (0, dy) if dy else (0,):
            for bz in (0, dz) if dz else (0,):
                if bx or by or bz:
                    out.append((bx, by, bz))
    return out


_SUBCOMBO_TABLE: dict[int, list[tuple[int, int, int]]] = {
    (dx + 1) * 9 + (dy + 1) * 3 + (dz + 1): _subcombos(dx, dy, dz)
    for dx in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dz in (-1, 0, 1)
}


def stencil_overshoot_keys(
    spec: DatasetSpec, positions: np.ndarray, interp: InterpolationSpec
) -> np.ndarray:
    """Per-position halo-overshoot key (base-3 encoded per-axis offset).

    Key 13 encodes (0, 0, 0): the stencil fits inside the primary
    atom's halo.  Computing the keys for a whole query's position array
    in one vectorized pass — instead of once per sub-query — is the
    executor's main hot-path saving; sub-queries then index into the
    cached result (:meth:`repro.workload.query.SubQuery.neighbor_atoms`).
    """
    pos = np.mod(np.asarray(positions, dtype=np.float64), spec.grid_side)
    h = interp.half_width
    side = spec.atom_side
    local = np.floor(pos).astype(np.int64) % side
    offset = (local + h > side - 1 + spec.halo).astype(np.int8)
    offset -= local - h + 1 < -spec.halo
    keys: np.ndarray = (offset[:, 0] + 1) * 9 + (offset[:, 1] + 1) * 3 + (offset[:, 2] + 1)
    return keys


# Memo of within-timestep neighbor Morton codes: they are a pure
# function of (grid resolution, primary atom position, overshoot key
# set), so the decode/encode arithmetic runs once per distinct
# combination instead of once per sub-query.  Bounded: at most
# atoms-per-timestep × the handful of key sets a workload produces;
# the cap below is a safety valve for enormous grids.
_NEIGHBOR_MEMO: dict[tuple[int, int, tuple[int, ...]], tuple[int, ...]] = {}
_NEIGHBOR_MEMO_MAX = 1 << 20


def neighbor_atoms_from_keys(
    spec: DatasetSpec, keys: np.ndarray, primary_atom_id: int
) -> list[int]:
    """Neighbor atom ids for one sub-query's precomputed overshoot keys.

    ``keys`` is the sub-query's slice of :func:`stencil_overshoot_keys`
    output.  Returns sorted packed atom ids (primary excluded).
    """
    distinct = set(keys.tolist())
    distinct.discard(13)
    if not distinct:
        return []
    key_tuple = tuple(sorted(distinct))
    timestep = primary_atom_id // spec.atoms_per_timestep
    primary_morton = primary_atom_id % spec.atoms_per_timestep
    n_axis = spec.atoms_per_axis
    memo_key = (n_axis, primary_morton, key_tuple)
    codes = _NEIGHBOR_MEMO.get(memo_key)
    if codes is None:
        deltas = {
            combo for key in key_tuple for combo in _SUBCOMBO_TABLE[int(key)]
        }
        px, py, pz = morton_decode_scalar(primary_morton)
        arr = np.array(sorted(deltas), dtype=np.int64)
        cx = (px + arr[:, 0]) % n_axis
        cy = (py + arr[:, 1]) % n_axis
        cz = (pz + arr[:, 2]) % n_axis
        encoded = morton_encode_unchecked(cx, cy, cz).astype(np.int64)
        codes = tuple(int(c) for c in np.unique(encoded))
        if len(_NEIGHBOR_MEMO) < _NEIGHBOR_MEMO_MAX:
            _NEIGHBOR_MEMO[memo_key] = codes
    base = timestep * spec.atoms_per_timestep
    return [base + c for c in codes]


def subquery_neighbor_atoms(
    spec: DatasetSpec,
    positions: np.ndarray,
    primary_atom_id: int,
    interp: InterpolationSpec,
) -> list[int]:
    """Neighbor atom ids a sub-query's stencils read beyond its primary.

    Fast path of :func:`stencil_atoms` for the executor: every position
    of a sub-query lies in one known primary atom, so only the per-axis
    halo overshoot matters.  Returns packed atom ids (primary excluded),
    typically empty — only positions within ``half_width - halo`` voxels
    of an atom face expand.
    """
    if interp.half_width <= spec.halo:
        return []
    keys = stencil_overshoot_keys(spec, positions, interp)
    return neighbor_atoms_from_keys(spec, keys, primary_atom_id)
