"""Synthetic isotropic turbulence velocity field.

The paper's workloads track hundreds of thousands of particles through
a DNS velocity field.  We do not have the 27 TB DNS history, so this
module substitutes a *kinematic simulation* field: a sum of
divergence-free Fourier modes with a Kolmogorov-like :math:`k^{-5/3}`
energy spectrum (a standard surrogate for Lagrangian studies).  What
matters for scheduling is the statistical shape of the resulting
trajectories — coherent sweeps across atoms, revisited regions, and
preferential concentration-like clustering — not exact physics; the
substitution is recorded in DESIGN.md §2.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SyntheticTurbulence", "advect_positions"]


class SyntheticTurbulence:
    """Divergence-free random Fourier velocity field on a periodic box.

    ``u(x, t) = sum_n a_n * d_n * cos(k_n . x + omega_n * t + phi_n)``

    with ``d_n ⊥ k_n`` (incompressibility), amplitudes following
    ``E(k) ~ k^(-5/3)`` and unsteadiness frequencies scaling with the
    eddy turnover rate of each mode.

    Parameters
    ----------
    box_size:
        Periodic domain extent in voxel units (use the dataset's
        ``grid_side``).
    n_modes:
        Number of Fourier modes.
    u_rms:
        Target root-mean-square velocity, voxels per simulation second.
    k_min, k_max:
        Dimensionless wavenumber band (modes per box).
    seed:
        RNG seed; the field is fully deterministic given the seed.
    """

    def __init__(
        self,
        box_size: float,
        n_modes: int = 48,
        u_rms: float = 5000.0,
        k_min: float = 1.0,
        k_max: float = 16.0,
        seed: int = 0,
    ) -> None:
        if box_size <= 0:
            raise ValueError("box_size must be positive")
        if n_modes < 1:
            raise ValueError("n_modes must be >= 1")
        if not 0 < k_min <= k_max:
            raise ValueError("need 0 < k_min <= k_max")
        self.box_size = float(box_size)
        self.n_modes = int(n_modes)
        self.u_rms = float(u_rms)
        rng = np.random.default_rng(seed)

        # Integer lattice wavevectors (exact periodicity in box_size):
        # sample log-spaced magnitudes and random directions, then snap
        # to the nearest nonzero integer triple.
        k_int = np.zeros((n_modes, 3))
        filled = 0
        while filled < n_modes:
            want = n_modes - filled
            mag = np.exp(rng.uniform(np.log(k_min), np.log(k_max), want))
            direction = rng.normal(size=(want, 3))
            direction /= np.linalg.norm(direction, axis=1, keepdims=True)
            cand = np.rint(mag[:, None] * direction)
            ok = np.any(cand != 0, axis=1)
            n_ok = int(ok.sum())
            k_int[filled : filled + n_ok] = cand[ok]
            filled += n_ok
        k_mag = np.linalg.norm(k_int, axis=1)
        k_dir = k_int / k_mag[:, None]
        self._k = (2.0 * np.pi / self.box_size) * k_int  # (M, 3)

        # Divergence-free polarization: project a random vector onto the
        # plane orthogonal to k.
        d = rng.normal(size=(n_modes, 3))
        d -= (np.sum(d * k_dir, axis=1, keepdims=True)) * k_dir
        d /= np.linalg.norm(d, axis=1, keepdims=True)

        # Kolmogorov band: mode energy ~ E(k) dk with E(k) ~ k^{-5/3}.
        energy = k_mag ** (-5.0 / 3.0)
        amp = np.sqrt(energy / energy.sum()) * self.u_rms * np.sqrt(2.0)
        self._a = amp[:, None] * d  # (M, 3) amplitude vectors

        # Unsteadiness: each mode decorrelates on its eddy turnover time.
        eddy_rate = k_mag ** (2.0 / 3.0)
        self._omega = eddy_rate * (self.u_rms / self.box_size) * 2.0 * np.pi
        self._phi = rng.uniform(0.0, 2.0 * np.pi, n_modes)

    def velocity(self, positions: np.ndarray, t: float) -> np.ndarray:
        """Velocity vectors at the given positions and time.

        Parameters
        ----------
        positions:
            ``(N, 3)`` array in voxel units (any values; the field is
            periodic in ``box_size``).
        t:
            Simulation time in seconds.

        Returns
        -------
        ``(N, 3)`` array of velocities, voxels per second.
        """
        pos = np.asarray(positions, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise ValueError("positions must have shape (N, 3)")
        # phase: (N, M) — one matmul, then a single cos and matmul back.
        phase = pos @ self._k.T + (self._omega * t + self._phi)[None, :]
        return np.cos(phase) @ self._a

    def rms_velocity(self, n_samples: int = 4096, seed: int = 1) -> float:
        """Monte-Carlo estimate of the field's RMS speed (diagnostics)."""
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0.0, self.box_size, size=(n_samples, 3))
        v = self.velocity(pts, 0.0)
        return float(np.sqrt(np.mean(np.sum(v * v, axis=1))))


def advect_positions(
    field: SyntheticTurbulence,
    positions: np.ndarray,
    t: float,
    dt: float,
) -> np.ndarray:
    """Advance particle positions one step with RK2 (midpoint) advection.

    Positions are wrapped into the periodic box.  This is the
    client-side computation the Turbulence scientists perform between
    consecutive queries of an ordered particle-tracking job (paper
    §IV-A): fetch velocities, integrate, submit the next time step's
    positions.
    """
    pos = np.asarray(positions, dtype=np.float64)
    v1 = field.velocity(pos, t)
    mid = pos + 0.5 * dt * v1
    v2 = field.velocity(mid, t + 0.5 * dt)
    return np.mod(pos + dt * v2, field.box_size)
