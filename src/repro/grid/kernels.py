"""Lagrange interpolation kernels over the discretized velocity grid.

The Turbulence database's core operation evaluates velocity (and
related quantities) at arbitrary positions by Lagrange polynomial
interpolation of order 4, 6 or 8 over the stored grid (paper §III-A;
Li et al. 2008).  This module implements that computation for real: it
discretizes the synthetic field onto the integer grid (the "stored
data") and interpolates from those node values only — so examples and
tests can validate the full query pipeline numerically, not just its
cost model.

The interpolant for a position with fractional offset ``f`` in each
axis uses the ``order`` nodes ``floor(p) - order/2 + 1 ..
floor(p) + order/2`` per axis and tensor-product Lagrange weights.
"""

from __future__ import annotations

import numpy as np

from repro.grid.field import SyntheticTurbulence

__all__ = ["lagrange_weights", "interpolate_velocity", "interpolation_error"]


def lagrange_weights(frac: np.ndarray, order: int) -> np.ndarray:
    """Lagrange basis weights for fractional offsets.

    Parameters
    ----------
    frac:
        ``(N,)`` array of fractional positions in ``[0, 1)`` relative to
        the base node.
    order:
        Even kernel order; the nodes sit at integer offsets
        ``-order/2 + 1 .. order/2`` from the base node.

    Returns
    -------
    ``(N, order)`` weights summing to 1 along axis 1.
    """
    if order < 2 or order % 2:
        raise ValueError("order must be an even integer >= 2")
    frac = np.asarray(frac, dtype=np.float64)
    h = order // 2
    nodes = np.arange(-h + 1, h + 1, dtype=np.float64)  # (order,)
    x = frac[:, None]  # position relative to base node
    weights = np.ones((len(frac), order))
    for j in range(order):
        for k in range(order):
            if k == j:
                continue
            weights[:, j] *= (x[:, 0] - nodes[k]) / (nodes[j] - nodes[k])
    return weights


def interpolate_velocity(
    field: SyntheticTurbulence,
    positions: np.ndarray,
    t: float,
    order: int = 8,
) -> np.ndarray:
    """Interpolate velocity at arbitrary positions from grid-node values.

    Mirrors the database evaluation path: velocities are *only* sampled
    at integer grid nodes (what the atoms store), then combined with
    tensor-product Lagrange weights.  Periodic in the field's box.
    """
    pos = np.asarray(positions, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError("positions must have shape (N, 3)")
    n = len(pos)
    h = order // 2
    base = np.floor(pos).astype(np.int64)
    frac = pos - base
    # Per-axis weights: (N, order) each.
    wx = lagrange_weights(frac[:, 0], order)
    wy = lagrange_weights(frac[:, 1], order)
    wz = lagrange_weights(frac[:, 2], order)
    offsets = np.arange(-h + 1, h + 1, dtype=np.int64)  # (order,)

    # Build all stencil nodes: (N, order^3, 3), sample the stored grid,
    # and contract with the weight tensor product.
    ox, oy, oz = np.meshgrid(offsets, offsets, offsets, indexing="ij")
    stencil = np.stack([ox.ravel(), oy.ravel(), oz.ravel()], axis=1)  # (order^3, 3)
    nodes = (base[:, None, :] + stencil[None, :, :]).astype(np.float64)
    nodes = np.mod(nodes, field.box_size)
    values = field.velocity(nodes.reshape(-1, 3), t).reshape(n, len(stencil), 3)

    w = (
        wx[:, :, None, None] * wy[:, None, :, None] * wz[:, None, None, :]
    ).reshape(n, -1)  # (N, order^3)
    return np.einsum("ns,nsc->nc", w, values)


def interpolation_error(
    field: SyntheticTurbulence,
    positions: np.ndarray,
    t: float,
    order: int,
) -> float:
    """RMS error of grid interpolation against the analytic field,
    normalized by the field's RMS speed (used to verify that higher
    kernel orders converge)."""
    approx = interpolate_velocity(field, positions, t, order)
    exact = field.velocity(positions, t)
    err = np.sqrt(np.mean(np.sum((approx - exact) ** 2, axis=1)))
    scale = np.sqrt(np.mean(np.sum(exact**2, axis=1)))
    return float(err / scale) if scale > 0 else float(err)
