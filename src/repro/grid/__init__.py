"""Turbulence data-model substrate.

Models the Turbulence Database Cluster's data layout (paper §III-A):
a time series of 3-D structured grids, partitioned into fixed-size
``atom_side``³-voxel storage blocks ("atoms") that are the fundamental
unit of I/O, linearized in Morton order, plus a synthetic turbulent
velocity field that stands in for the DNS data when generating
particle-tracking workloads.
"""

from repro.grid.atoms import AtomMapper
from repro.grid.dataset import DatasetSpec
from repro.grid.field import SyntheticTurbulence, advect_positions
from repro.grid.interpolation import InterpolationSpec, stencil_atoms

__all__ = [
    "DatasetSpec",
    "AtomMapper",
    "SyntheticTurbulence",
    "advect_positions",
    "InterpolationSpec",
    "stencil_atoms",
]
