"""Mapping between continuous positions and storage atoms.

The query pre-processor (paper §III-B) takes a query's list of 3-D
positions, identifies the atom containing each position, and groups the
positions into per-atom sub-queries sorted in Morton order.  This module
implements the vectorized position→atom mapping that underlies it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.dataset import DatasetSpec
from repro.morton.codec import morton_encode_unchecked
from repro.morton.index import MortonIndex

__all__ = ["AtomMapper"]


@dataclass(frozen=True)
class AtomMapper:
    """Vectorized position→atom resolution for one :class:`DatasetSpec`."""

    spec: DatasetSpec

    def _index(self) -> MortonIndex:
        return self.spec.morton_index()

    def wrap(self, positions: np.ndarray) -> np.ndarray:
        """Wrap continuous positions into the periodic domain.

        The DNS domain is periodic; particle tracking advects positions
        out of ``[0, grid_side)`` and they re-enter from the other side.
        """
        return np.mod(np.asarray(positions, dtype=np.float64), self.spec.grid_side)

    def atom_coords(self, positions: np.ndarray) -> np.ndarray:
        """Integer atom coordinates ``(N, 3)`` containing each position."""
        pos = self.wrap(positions)
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise ValueError("positions must have shape (N, 3)")
        return (pos // self.spec.atom_side).astype(np.int64)

    def morton_of(self, positions: np.ndarray) -> np.ndarray:
        """Within-step Morton code of the atom containing each position."""
        coords = self.atom_coords(positions)
        return morton_encode_unchecked(coords[:, 0], coords[:, 1], coords[:, 2])

    def atom_ids(self, positions: np.ndarray, timestep: int) -> np.ndarray:
        """Packed atom ids for each position at the given time step."""
        if not 0 <= timestep < self.spec.n_timesteps:
            raise ValueError(f"timestep {timestep} out of range")
        morton = self.morton_of(positions).astype(np.int64)
        return timestep * self.spec.atoms_per_timestep + morton

    def group_by_atom(
        self, positions: np.ndarray, timestep: int
    ) -> list[tuple[int, np.ndarray]]:
        """Group positions into per-atom sub-query fragments.

        Returns ``[(atom_id, position_indices), ...]`` sorted by Morton
        code (equivalently atom id, since all share one time step), as
        the pre-processor requires: points are "sorted and evaluated in
        Morton order so that each atom is read only once" (§III-A).
        ``position_indices`` index into the input array.
        """
        ids = self.atom_ids(positions, timestep)
        order = np.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
        groups = np.split(order, boundaries)
        uniques = sorted_ids[np.concatenate(([0], boundaries))] if len(sorted_ids) else []
        return [(int(a), g) for a, g in zip(uniques, groups)]
