"""Dataset geometry: grid, atoms, time steps.

The production Turbulence database stores 1024 time steps of a
:math:`1024^3` grid, split into :math:`64^3`-voxel atoms of ~8 MB, i.e.
:math:`16^3 = 4096` atoms per time step.  The paper's evaluation uses an
800 GB sample with 31 time steps.  Reproduction experiments shrink the
atom grid (e.g. ``grid_side=512, atom_side=64`` → :math:`8^3 = 512`
atoms per step) while keeping every structural property: Morton layout,
per-step partitioning, replicated halos.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.morton.index import MortonIndex

__all__ = ["DatasetSpec"]


@dataclass(frozen=True)
class DatasetSpec:
    """Immutable description of a simulated Turbulence dataset.

    Attributes
    ----------
    grid_side:
        Voxels per axis of the full grid (production: 1024).
    atom_side:
        Voxels per axis of one atom (production: 64).
    n_timesteps:
        Number of stored time steps (the paper's sample: 31).
    dt:
        Simulation seconds between consecutive stored time steps
        (production: 2 s / 1024 steps ≈ 0.002 s).
    halo:
        Replicated voxels on each side of an atom (production: 4;
        atoms are physically 72³).  Interpolation stencils that stay
        within the halo need no neighbor-atom reads.
    atom_bytes:
        Size of one atom on disk, bytes (production: ~8 MB).
    """

    grid_side: int = 1024
    atom_side: int = 64
    n_timesteps: int = 31
    dt: float = 0.002
    halo: int = 4
    atom_bytes: int = 8 << 20

    def __post_init__(self) -> None:
        if self.grid_side % self.atom_side != 0:
            raise ValueError("grid_side must be a multiple of atom_side")
        side = self.grid_side // self.atom_side
        if side & (side - 1):
            raise ValueError("atoms per axis must be a power of two")
        if self.n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.halo < 0 or self.halo >= self.atom_side:
            raise ValueError("halo must be in [0, atom_side)")
        if self.atom_bytes < 1:
            raise ValueError("atom_bytes must be positive")

    @property
    def atoms_per_axis(self) -> int:
        """Atoms along each axis (production: 16)."""
        return self.grid_side // self.atom_side

    @property
    def atoms_per_timestep(self) -> int:
        """Atoms in one time step (production: 4096)."""
        return self.atoms_per_axis**3

    @property
    def n_atoms(self) -> int:
        """Total atoms across all time steps."""
        return self.atoms_per_timestep * self.n_timesteps

    @property
    def duration(self) -> float:
        """Simulated physical time span covered by the dataset."""
        return self.dt * (self.n_timesteps - 1)

    def morton_index(self) -> MortonIndex:
        """Morton index over the atom grid of a single time step."""
        return MortonIndex(self.atoms_per_axis)

    # ------------------------------------------------------------------
    # Atom-id packing: atom_id = timestep * atoms_per_timestep + morton.
    # Plain ints keep workload queues and caches dict-fast.
    # ------------------------------------------------------------------
    def atom_id(self, timestep: int, morton: int) -> int:
        """Pack ``(timestep, morton)`` into a single integer atom id."""
        if not 0 <= timestep < self.n_timesteps:
            raise ValueError(f"timestep {timestep} out of range")
        if not 0 <= morton < self.atoms_per_timestep:
            raise ValueError(f"morton code {morton} out of range")
        return timestep * self.atoms_per_timestep + morton

    def atom_timestep(self, atom_id: int) -> int:
        """Time step of a packed atom id."""
        return atom_id // self.atoms_per_timestep

    def atom_morton(self, atom_id: int) -> int:
        """Within-step Morton code of a packed atom id."""
        return atom_id % self.atoms_per_timestep

    @staticmethod
    def small(n_timesteps: int = 31, atoms_per_axis: int = 8, dt: float = 0.002) -> "DatasetSpec":
        """A laptop-scale spec with the production atom size but a
        smaller spatial extent (``atoms_per_axis``³ atoms per step)."""
        return DatasetSpec(
            grid_side=64 * atoms_per_axis,
            atom_side=64,
            n_timesteps=n_timesteps,
            dt=dt,
        )
