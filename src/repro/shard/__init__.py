"""Sharded multi-coordinator execution (DESIGN.md §14).

Partitions the coordinator itself: the cluster's Morton-contiguous
node blocks are split into N *shard domains*, each run by its own
:class:`~repro.shard.coordinator.ShardSimulator` (the full two-level
JAWS scheduling loop over its slice of the cluster), composed by the
deterministic virtual-time control plane in
:mod:`repro.shard.control` — lease-based ownership with epoch fencing,
seeded shard-crash failover, and cluster-consistent barrier recovery
(:mod:`repro.shard.recovery`).

:func:`run_sharded` is the entry point.  ``n_shards=1`` short-circuits
to the single-coordinator cluster path and is byte-identical to
:func:`~repro.cluster.cluster.run_cluster` — the sharded machinery only
engages when there is actually more than one coordinator.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.cluster.cluster import run_cluster
from repro.cluster.partition import MortonRangePartitioner
from repro.config import (
    CheckpointConfig,
    EngineConfig,
    FaultConfig,
    OverloadConfig,
    SchedulerConfig,
    ShardConfig,
)
from repro.engine.runner import make_scheduler
from repro.errors import ConfigurationError
from repro.parallel.supervisor import SupervisorConfig
from repro.shard.control import ClusterControlPlane, ShardRunResult
from repro.shard.coordinator import ShardSimulator
from repro.shard.messages import ShardMessage
from repro.shard.recovery import latest_manifest, resume_cluster
from repro.shard.topology import OwnershipTable, ShardTopology
from repro.workload.trace import Trace

__all__ = [
    "ClusterControlPlane",
    "OwnershipTable",
    "ShardMessage",
    "ShardRunResult",
    "ShardSimulator",
    "ShardTopology",
    "latest_manifest",
    "resume_cluster",
    "run_sharded",
    "shard_fault_seed",
]


def shard_fault_seed(seed: int, domain: int) -> int:
    """Per-domain fault seed: a stable hash-derived stream so peer
    domains never share fault draws, yet the whole cluster remains a
    pure function of the run seed."""
    digest = hashlib.sha256(f"{seed}:shard:{domain}".encode("utf-8")).hexdigest()
    return int(digest[:12], 16)


def _shard_engine(
    engine: EngineConfig, topology: ShardTopology, domain: int
) -> EngineConfig:
    """Narrow the run's engine config to one domain: local node crashes
    only, a derived fault seed, and no coordinator-crash / checkpoint /
    overload / sanitizer — those concerns live in the control plane."""
    local = set(topology.nodes_of_shard(domain))
    faults = engine.faults.with_(
        seed=shard_fault_seed(engine.faults.seed, domain),
        node_crashes=tuple(
            (int(node), float(down_t), float(up_t))
            for node, down_t, up_t in engine.faults.node_crashes
            if int(node) in local
        ),
        coordinator_crash_at=None,
        coordinator_crash_window=None,
    )
    return engine.with_(
        faults=faults,
        checkpoint=CheckpointConfig(),
        overload=OverloadConfig(),
        sanitize=False,
    )


def run_sharded(
    trace: Trace,
    scheduler_name: str,
    n_nodes: int,
    shards: Optional[ShardConfig] = None,
    engine: Optional[EngineConfig] = None,
    config: Optional[SchedulerConfig] = None,
    faults: Optional[FaultConfig] = None,
    replication: Optional[int] = None,
    jobs: int = 1,
    supervisor: Optional[SupervisorConfig] = None,
) -> ShardRunResult:
    """Replay ``trace`` across ``shards.n_shards`` coordinator shards.

    ``faults`` overrides ``engine.faults`` exactly as in
    :func:`~repro.cluster.cluster.run_cluster`; ``jobs > 1`` fans the
    superstep windows out over the supervised process pool
    (bit-identical to the serial path).  Raises
    :class:`~repro.errors.ConfigurationError` for combinations the
    sharded control plane does not model (overload admission and the
    runtime sanitizer are single-coordinator concerns; checkpointing of
    a sharded run goes through ``shards.checkpoint_dir`` barriers, not
    ``engine.checkpoint``).
    """
    shards = shards or ShardConfig()
    engine = engine or EngineConfig()
    if faults is not None:
        engine = engine.with_(faults=faults)
    if replication is None:
        replication = engine.faults.replication
    if shards.sharded and engine.overload.enabled:
        raise ConfigurationError(
            "overload admission control is not modeled under sharded "
            "execution; run with n_shards=1 or drop the overload config"
        )
    if shards.sharded and engine.sanitize:
        raise ConfigurationError(
            "the runtime sanitizer audits a single coordinator's invariants; "
            "sharded runs are audited by the cross-shard conservation "
            "counters instead — disable sanitize or run with n_shards=1"
        )
    if shards.sharded and engine.checkpoint.enabled:
        raise ConfigurationError(
            "sharded runs checkpoint through cluster barriers: set "
            "ShardConfig.checkpoint_dir/barrier_every_events instead of "
            "engine.checkpoint"
        )
    if shards.halt_after_barrier is not None and not shards.sharded:
        raise ConfigurationError(
            "halt_after_barrier interrupts the sharded control plane; "
            "with n_shards=1 use the coordinator-crash fault instead"
        )
    topology = ShardTopology(n_nodes=n_nodes, n_shards=shards.n_shards)

    if not shards.sharded:
        # Degenerate case: exactly the single-coordinator cluster path,
        # byte for byte.  Barrier knobs map onto the engine's own
        # checkpoint config so `repro resume` keeps working.
        if shards.checkpoint_dir is not None:
            engine = engine.with_(
                checkpoint=CheckpointConfig(
                    directory=shards.checkpoint_dir,
                    every_events=shards.barrier_every_events or 500,
                )
            )
        cluster = run_cluster(
            trace,
            scheduler_name,
            n_nodes,
            engine=engine,
            config=config,
            replication=replication,
        )
        return ShardRunResult(
            result=cluster.result,
            n_shards=1,
            topology_digest=topology.digest(),
            shard_stats={
                "n_shards": 1,
                "topology_digest": topology.digest(),
                "shard_crashes": 0,
                "epoch_bumps": 0,
                "stale_retries": 0,
                "messages_delivered": 0,
                # Same shape as the sharded path: one coordinator has
                # no cross-shard traffic, so every counter is zero.
                "conservation": {},
            },
        )

    partitioner = MortonRangePartitioner(trace.spec, n_nodes, replication=replication)
    partitioner.assert_replication(context="shard topology build")
    full_crashes = tuple(
        (int(node), float(down_t), float(up_t))
        for node, down_t, up_t in engine.faults.node_crashes
    )
    domains = []
    for d in range(shards.n_shards):
        shard_engine = _shard_engine(engine, topology, d)
        schedulers = [
            make_scheduler(scheduler_name, trace, shard_engine, config)
            for _ in topology.nodes_of_shard(d)
        ]
        domains.append(
            ShardSimulator(
                trace,
                schedulers,
                shard_engine,
                topology,
                d,
                node_of=partitioner.node_of,
                replicas_of=partitioner.replicas_of,
                full_node_crashes=full_crashes,
                message_delay=shards.message_delay,
            )
        )
    control = ClusterControlPlane(
        domains=domains,
        topology=topology,
        shards=shards,
        partitioner=partitioner,
        jobs=jobs,
        supervisor=supervisor,
    )
    return control.run()
