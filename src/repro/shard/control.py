"""Deterministic control plane for N coordinator shards.

Drives :class:`~repro.shard.coordinator.ShardSimulator` domains through
*conservative supersteps*: with every cross-shard message paying a
positive virtual latency ``delta`` (``ShardConfig.message_delay``), all
events in ``[T, horizon)`` — where ``T`` is the earliest pending event
or delivery anywhere and ``horizon <= T + delta`` — can be processed
per-shard without synchronisation, because nothing sent inside the
window can deliver before ``horizon``.  Each superstep:

1. deliver bus messages due before the horizon (validating lease
   epochs; stale messages are re-addressed with a typed retry delay,
   never applied and never silently dropped);
2. run every shard with work in the window — inline for ``jobs <= 1``,
   or fanned out over the supervised process pool with the domain
   state pickled both ways (the two paths are bit-identical because
   the engine's full state survives a pickle round trip, the property
   the checkpoint subsystem already pins);
3. collect outboxes onto the bus in a total deterministic order
   ``(send_time, src_domain, seq)``;
4. append each domain's dispatched events to its write-ahead log and,
   at cluster barriers, snapshot every shard plus a manifest — the
   consistent cut :func:`repro.shard.recovery.resume_cluster` restores.

Shard crashes (``FaultKind.SHARD_CRASH``) are control events on the
same virtual timeline: at the crash instant the victim's domains
freeze (crash-stop — no event of theirs at or after the crash time is
ever processed); one ``failover_delay`` later each frozen domain is
adopted by the next surviving shard in ring order under a bumped lease
epoch, in-flight batches abort via the node-epoch fence, and held or
stale messages re-resolve through the retry path.  Every transition is
a deterministic function of the seeded schedule, so an N-shard run
with crashes is exactly reproducible — and resumable — by seed.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
import os
import pickle
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.cluster.partition import MortonRangePartitioner
from repro.config import CheckpointConfig, ShardConfig
from repro.engine.results import RunResult
from repro.errors import CoordinatorCrash, LivelockError, ShardProtocolError
from repro.parallel.pool import map_many
from repro.parallel.supervisor import SupervisorConfig
from repro.recovery.checkpoint import CheckpointManager
from repro.recovery.codec import SNAPSHOT_FORMAT_VERSION, encode_snapshot
from repro.shard.coordinator import ShardSimulator
from repro.shard.messages import ShardMessage
from repro.shard.topology import OwnershipTable, ShardTopology

__all__ = ["ClusterControlPlane", "ShardRunResult", "MANIFEST_GLOB"]

#: Cluster manifest filename pattern (sibling of the shard-N/ subdirs).
MANIFEST_GLOB = "cluster-*.manifest"

#: Snapshot policy sentinel for per-shard managers: the policy must
#: never self-fire (barriers are cluster-wide, driven by force_snapshot)
#: — and it cannot, because the domains never call maybe_snapshot; the
#: huge threshold only satisfies CheckpointConfig's enablement check.
_NEVER_EVENTS = 10**9

#: Manifest generations kept, matching CheckpointConfig's default keep.
_KEEP_MANIFESTS = 3


def _window_task(item: Tuple[bytes, float]) -> bytes:
    """Worker entry: run one shard's superstep window on pickled state.

    Top-level and pure — every draw comes from state inside the blob —
    so the supervised pool may retry it freely and the parallel path
    stays bit-identical to the inline path.
    """
    blob, horizon = item
    sim = pickle.loads(blob)
    sim.run_window(horizon)
    return pickle.dumps(sim, protocol=4)


@dataclass(frozen=True)
class ShardRunResult:
    """A sharded run's outcome: the merged engine result plus the
    cluster-level accounting the single-coordinator engine has no
    notion of."""

    result: RunResult
    n_shards: int
    topology_digest: str
    shard_stats: Dict[str, Any] = field(default_factory=dict)


class ClusterControlPlane:
    """Owns the bus, the ownership table, the crash/failover schedule,
    the barrier writer, and the superstep loop."""

    def __init__(
        self,
        domains: List[ShardSimulator],
        topology: ShardTopology,
        shards: ShardConfig,
        partitioner: MortonRangePartitioner,
        jobs: int = 1,
        supervisor: Optional[SupervisorConfig] = None,
        _restored: Optional[Dict[str, Any]] = None,
        _managers: Optional[List[Optional[CheckpointManager]]] = None,
    ) -> None:
        self.domains = domains
        self.topology = topology
        self.cfg = shards
        self.partitioner = partitioner
        self.jobs = jobs
        self.supervisor = supervisor
        n = topology.n_shards

        self._managers: List[Optional[CheckpointManager]] = (
            _managers if _managers is not None else self._build_managers()
        )

        if _restored is not None:
            self.ownership: OwnershipTable = _restored["ownership"]
            self.bus: List[ShardMessage] = list(_restored["bus"])
            self._ctrl: List[Tuple[float, int, str, int]] = list(_restored["ctrl"])
            self.frozen: Set[int] = set(_restored["frozen"])
            self.dead: Set[int] = set(_restored["dead"])
            self.stale_retries: int = _restored["stale_retries"]
            self.epoch_bumps: int = _restored["epoch_bumps"]
            self.shard_crashes: int = _restored["shard_crashes"]
            self.messages_delivered: int = _restored["messages_delivered"]
            self._ctrl_seq: int = _restored["ctrl_seq"]
            self._barrier_count: int = _restored["barrier_count"]
            self._next_barrier: Optional[int] = _restored["next_barrier"]
            heapq.heapify(self._ctrl)
            return

        self.ownership = OwnershipTable.identity(n)
        self.bus = []
        self.frozen = set()
        self.dead = set()
        self.stale_retries = 0
        self.epoch_bumps = 0
        self.shard_crashes = 0
        self.messages_delivered = 0
        self._ctrl = []
        self._ctrl_seq = 0
        self._barrier_count = 0
        self._next_barrier = shards.barrier_every_events
        for shard, when in self._crash_schedule():
            self._push_ctrl(when, "crash", shard)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_managers(self) -> List[Optional[CheckpointManager]]:
        if self.cfg.checkpoint_dir is None:
            return [None] * self.topology.n_shards
        root = Path(self.cfg.checkpoint_dir)
        return [
            CheckpointManager(
                CheckpointConfig(
                    directory=str(root / f"shard-{d}"), every_events=_NEVER_EVENTS
                )
            )
            for d in range(self.topology.n_shards)
        ]

    def _crash_schedule(self) -> List[Tuple[int, float]]:
        """The run's shard-crash plan: explicit pairs, or seeded draws
        from the crash window (dedicated RNG stream, so arming crashes
        cannot perturb any other draw in the cluster)."""
        if self.cfg.crashes:
            return sorted(self.cfg.crashes, key=lambda pair: (pair[1], pair[0]))
        if self.cfg.crash_window is None:
            return []
        lo, hi = self.cfg.crash_window
        rng = random.Random(f"{self.cfg.seed}:shard_crash")
        survivors = list(range(self.topology.n_shards))
        plan: List[Tuple[int, float]] = []
        for _ in range(self.cfg.n_window_crashes):
            victim = survivors.pop(rng.randrange(len(survivors)))
            plan.append((victim, rng.uniform(lo, hi)))
        return sorted(plan, key=lambda pair: (pair[1], pair[0]))

    def _push_ctrl(self, when: float, kind: str, shard: int) -> None:
        heapq.heappush(self._ctrl, (when, self._ctrl_seq, kind, shard))
        self._ctrl_seq += 1

    # ------------------------------------------------------------------
    # Bus
    # ------------------------------------------------------------------
    def _drain_outboxes(self) -> None:
        for domain in self.domains:
            for msg in domain.drain_outbox():
                # Stamp the destination's current lease epoch: the
                # ownership table is control-plane truth the sender
                # consults as the message enters the bus.
                self.bus.append(
                    dataclasses.replace(
                        msg, dst_epoch=self.ownership.epoch[msg.dst_domain]
                    )
                )

    def _bus_next_time(self) -> Optional[float]:
        times = [
            msg.deliver_time for msg in self.bus if msg.dst_domain not in self.frozen
        ]
        return min(times) if times else None

    def _deliver(self, horizon: float) -> None:
        if not self.bus:
            return
        keep: List[ShardMessage] = []
        for msg in sorted(
            self.bus, key=lambda m: (m.deliver_time, m.src_domain, m.seq)
        ):
            dst = msg.dst_domain
            if msg.deliver_time >= horizon or dst in self.frozen:
                keep.append(msg)
                continue
            if msg.dst_epoch != self.ownership.epoch[dst]:
                # Stale lease: the domain failed over after this message
                # was stamped.  Typed retry in virtual time — re-address
                # to the current epoch, delivery pushed out, attempt
                # counted.  Never dropped: crash-stop means the state
                # the message targets moved wholesale to the new owner.
                self.stale_retries += 1
                keep.append(
                    dataclasses.replace(
                        msg,
                        dst_epoch=self.ownership.epoch[dst],
                        deliver_time=msg.deliver_time + self.cfg.retry_delay,
                        retries=msg.retries + 1,
                    )
                )
                continue
            self.domains[dst].deliver(msg)
            self.messages_delivered += 1
        self.bus = keep

    # ------------------------------------------------------------------
    # Supersteps
    # ------------------------------------------------------------------
    def _run_windows(self, horizon: float) -> None:
        active = [
            d
            for d in range(self.topology.n_shards)
            if d not in self.frozen
            and (t := self.domains[d].next_event_time()) is not None
            and t < horizon
        ]
        if not active:
            return
        if self.jobs <= 1:
            # Serial reference path: in place, no pickling.  Identical
            # to the pooled path below because a domain's behavior is a
            # pure function of its (pickle-faithful) state.
            for d in active:
                self.domains[d].run_window(horizon)
            return
        blobs = map_many(
            _window_task,
            [(pickle.dumps(self.domains[d], protocol=4), horizon) for d in active],
            jobs=self.jobs,
            supervisor=self.supervisor,
        )
        for d, blob in zip(active, blobs):
            self.domains[d] = pickle.loads(blob)

    def _flush_logs(self) -> None:
        for d, domain in enumerate(self.domains):
            log = domain.drain_window_log()
            manager = self._managers[d]
            if manager is None:
                continue
            for index, ev in log:
                manager.log_event_at(domain, index, ev)

    # ------------------------------------------------------------------
    # Crash + failover
    # ------------------------------------------------------------------
    def _process_ctrl(self) -> None:
        when, _seq, kind, shard = heapq.heappop(self._ctrl)
        if kind == "crash":
            self._process_crash(shard, when)
        else:
            self._process_failover(shard, when)

    def _process_crash(self, shard: int, now: float) -> None:
        """Crash-stop ``shard``: freeze every domain it operates until
        the failover fires.  Windows never straddle a control event
        (the horizon is capped at the next control time), so no frozen
        domain has processed anything at or past ``now``."""
        self.dead.add(shard)
        self.shard_crashes += 1
        self.frozen.update(self.ownership.domains_of(shard))
        self._push_ctrl(now + self.cfg.failover_delay, "failover", shard)

    def _successor_of(self, shard: int) -> int:
        n = self.topology.n_shards
        for step in range(1, n):
            candidate = (shard + step) % n
            if candidate not in self.dead:
                return candidate
        raise ShardProtocolError(  # pragma: no cover - ShardConfig keeps a survivor
            "no surviving shard to adopt the crashed shard's ranges",
            domain=shard,
        )

    def _process_failover(self, shard: int, now: float) -> None:
        """Adopt the dead shard's domains at a deterministic epoch bump."""
        successor = self._successor_of(shard)
        adopted = self.ownership.domains_of(shard)
        # Replica-placement invariant (typed, never silent): ranges must
        # keep at least one permanently reachable replica.  Nodes inside
        # a crash window with a scheduled recovery are *deferrable*, not
        # lost — only an open-ended outage counts against the floor.
        permanently_down = {
            int(node)
            for node, down_t, up_t in self.cfg_crashes_all()
            if down_t <= now and (up_t is None or math.isinf(up_t))
        }
        self.partitioner.assert_replication(
            down_nodes=permanently_down,
            require=1,
            context=f"failover of shard {shard} -> {successor}",
        )
        for domain_id in adopted:
            self.ownership.transfer(domain_id, successor)
            self.epoch_bumps += 1
            self.frozen.discard(domain_id)
            self.domains[domain_id].on_shard_failover(now)
        # Messages held for the frozen domains resume delivery at the
        # failover instant (their pre-crash epoch stamp then takes the
        # visible retry path above).
        self.bus = [
            dataclasses.replace(msg, deliver_time=max(msg.deliver_time, now))
            if msg.dst_domain in adopted
            else msg
            for msg in self.bus
        ]
        self._drain_outboxes()

    def cfg_crashes_all(self) -> Tuple[Tuple[int, float, float], ...]:
        """The full node-crash schedule (all shards), for the replica
        floor check."""
        return self.domains[0]._full_node_crashes

    # ------------------------------------------------------------------
    # Barriers
    # ------------------------------------------------------------------
    def _cumulative_events(self) -> int:
        return sum(domain.event_index for domain in self.domains)

    def _maybe_barrier(self) -> None:
        if self._next_barrier is None or any(m is None for m in self._managers):
            return
        cum = self._cumulative_events()
        if cum < self._next_barrier:
            return
        self._barrier_count += 1
        self._next_barrier = cum + (self.cfg.barrier_every_events or 0)
        for d, domain in enumerate(self.domains):
            manager = self._managers[d]
            assert manager is not None
            manager.force_snapshot(domain)
        self._write_manifest(cum)
        if (
            self.cfg.halt_after_barrier is not None
            and self._barrier_count >= self.cfg.halt_after_barrier
        ):
            for manager in self._managers:
                if manager is not None:
                    manager.flush()
            raise CoordinatorCrash(
                f"halted after cluster barrier {self._barrier_count} "
                f"({cum} cumulative events); resume from "
                f"{self.cfg.checkpoint_dir}"
            )

    def _write_manifest(self, cum: int) -> None:
        assert self.cfg.checkpoint_dir is not None
        root = Path(self.cfg.checkpoint_dir)
        meta = {
            "format": SNAPSHOT_FORMAT_VERSION,
            "barrier": self._barrier_count,
            "cumulative_events": cum,
            "n_shards": self.topology.n_shards,
            "topology_digest": self.topology.digest(),
        }
        state = {
            "shards": self.cfg,
            "topology": self.topology,
            "partitioner": self.partitioner,
            "ownership": self.ownership,
            "bus": list(self.bus),
            "ctrl": sorted(self._ctrl),
            "frozen": set(self.frozen),
            "dead": set(self.dead),
            "stale_retries": self.stale_retries,
            "epoch_bumps": self.epoch_bumps,
            "shard_crashes": self.shard_crashes,
            "messages_delivered": self.messages_delivered,
            "ctrl_seq": self._ctrl_seq,
            "barrier_count": self._barrier_count,
            "next_barrier": self._next_barrier,
            "shard_event_indices": [d.event_index for d in self.domains],
        }
        blob = encode_snapshot(meta, state)
        path = root / f"cluster-{cum:012d}.manifest"
        tmp = path.with_suffix(".manifest.tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        manifests = sorted(root.glob(MANIFEST_GLOB))
        for stale in manifests[:-_KEEP_MANIFESTS]:
            stale.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> ShardRunResult:
        for d, manager in enumerate(self._managers):
            if manager is not None:
                manager.start(self.domains[d])
        try:
            while True:
                event_times = [
                    t
                    for d in range(self.topology.n_shards)
                    if d not in self.frozen
                    and (t := self.domains[d].next_event_time()) is not None
                ]
                t_evt = min(event_times) if event_times else None
                t_bus = self._bus_next_time()
                t_ctrl = self._ctrl[0][0] if self._ctrl else None
                candidates = [t for t in (t_evt, t_bus, t_ctrl) if t is not None]
                if not candidates:
                    if any(d._any_pending() for d in self.domains):
                        released = False
                        for d in range(self.topology.n_shards):
                            if d not in self.frozen:
                                released |= self.domains[d].force_release_pass()
                        if not released:
                            raise LivelockError(
                                "cluster livelock: pending queries on some "
                                "shard but no schedulable work, no message "
                                "in flight, and no control event",
                                pending_queries=sorted(
                                    qid
                                    for d in self.domains
                                    for qid in d._remaining
                                ),
                            )
                        self._drain_outboxes()
                        continue
                    break
                start = min(candidates)
                if t_ctrl is not None and t_ctrl <= start:
                    self._process_ctrl()
                    continue
                horizon = start + self.cfg.message_delay
                if t_ctrl is not None:
                    horizon = min(horizon, t_ctrl)
                self._deliver(horizon)
                self._run_windows(horizon)
                self._drain_outboxes()
                self._flush_logs()
                self._maybe_barrier()
            return self._finalize()
        finally:
            for manager in self._managers:
                if manager is not None:
                    manager.flush()

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def _check_conservation(self, partials: List[dict]) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for part in partials:
            for key, val in part["conservation"].items():
                totals[key] = totals.get(key, 0) + val
        created = totals.get("created", 0)
        applied = totals.get("applied", 0)
        residual = totals.get("residual_cancelled", 0)
        executed = totals.get("executed", 0)
        exec_dropped = totals.get("exec_dropped", 0)
        late_dropped = totals.get("late_done_dropped", 0)
        if created != applied + residual:
            raise ShardProtocolError(
                f"cross-shard conservation violated: {created} sub-queries "
                f"created but {applied} applied + {residual} cancelled "
                "(a sub-query was lost across an epoch change)"
            )
        if executed != applied + exec_dropped + late_dropped:
            raise ShardProtocolError(
                f"cross-shard conservation violated: {executed} executions "
                f"vs {applied} applied + {exec_dropped} + {late_dropped} "
                "dropped (a sub-query was double-executed)"
            )
        return totals

    def _finalize(self) -> ShardRunResult:
        partials = [domain.partial() for domain in self.domains]
        conservation = self._check_conservation(partials)
        responses = np.asarray(
            [r for part in partials for r in part["response_times"]], dtype=np.float64
        )
        arr_min = min(
            (j.submit_time for j in self.domains[0].trace.jobs), default=0.0
        )
        last = max(
            (p["last_completion"] for p in partials if p["completed"]), default=0.0
        )
        makespan = last - arr_min if responses.size else 0.0
        cache: Dict[str, float] = {}
        disk: Dict[str, float] = {}
        execs: Dict[str, float] = {}
        job_durations: Dict[int, float] = {}
        faults: Dict[str, Any] = {}
        class_responses: Dict[str, List[float]] = {}
        runs: List = []
        alpha_histories: List[List[float]] = []
        for part in partials:
            for target, source in ((cache, "cache"), (disk, "disk"), (execs, "exec")):
                for key, val in part[source].items():
                    target[key] = target.get(key, 0) + val
            job_durations.update(part["job_durations"])
            runs.extend(part["runs"])
            alpha_histories.extend(part["alpha_histories"])
            for key, val in part["faults"].items():
                if isinstance(val, bool):
                    faults[key] = faults.get(key, False) or val
                else:
                    faults[key] = faults.get(key, 0) + val
            for cls, values in part["class_responses"].items():
                class_responses.setdefault(cls, []).extend(values)
        accesses = cache.get("hits", 0) + cache.get("misses", 0)
        cache["hit_ratio"] = cache.get("hits", 0) / accesses if accesses else 0.0
        faults.update(
            node_downs=sum(p["node_downs"] for p in partials),
            requeued_subqueries=sum(p["requeues"] for p in partials),
            deferred_subqueries=sum(p["deferred"] for p in partials),
            data_loss_cancels=sum(p["data_loss_cancels"] for p in partials),
            aborted_unarrived_queries=sum(p["aborted_unarrived"] for p in partials),
            shard_crashes=self.shard_crashes,
            shard_epoch_bumps=self.epoch_bumps,
            shard_stale_retries=self.stale_retries,
            shard_messages=conservation.get("messages_sent", 0),
        )
        result = RunResult(
            scheduler_name=partials[0]["scheduler_name"],
            n_queries=int(responses.size),
            n_jobs=len(job_durations),
            makespan=makespan,
            response_times=responses,
            job_durations=job_durations,
            runs=runs,
            alpha_history=alpha_histories[0] if alpha_histories else [],
            alpha_histories=alpha_histories,
            cache=cache,
            disk=disk,
            exec=execs,
            forced_releases=sum(p["forced_releases"] for p in partials),
            gating_overhead_ns=sum(p["gating_overhead_ns"] for p in partials),
            cache_overhead_ns=int(cache.get("overhead_ns", 0)),
            timeouts=sum(p["timeouts"] for p in partials),
            retries=sum(p["retries"] for p in partials),
            failovers=sum(p["failovers"] for p in partials),
            aborted_jobs=sum(p["aborted_jobs"] for p in partials),
            cancelled_queries=sum(p["cancelled"] for p in partials),
            faults=faults,
            class_response_times={
                k: list(v) for k, v in sorted(class_responses.items())
            },
        )
        stats = {
            "n_shards": self.topology.n_shards,
            "topology_digest": self.topology.digest(),
            "shard_crashes": self.shard_crashes,
            "epoch_bumps": self.epoch_bumps,
            "stale_retries": self.stale_retries,
            "messages_delivered": self.messages_delivered,
            "conservation": conservation,
            "lease_epochs": list(self.ownership.epoch),
            "operators": list(self.ownership.operator),
            "shard_event_indices": [p["event_index"] for p in partials],
            "barriers": self._barrier_count,
        }
        return ShardRunResult(
            result=result,
            n_shards=self.topology.n_shards,
            topology_digest=self.topology.digest(),
            shard_stats=stats,
        )
