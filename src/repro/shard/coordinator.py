"""One coordinator shard: the two-level JAWS loop over a node block.

A :class:`ShardSimulator` is a :class:`~repro.engine.simulator.Simulator`
whose ``nodes`` list is full cluster length, but only the contiguous
block assigned by the :class:`~repro.shard.topology.ShardTopology` is
*real* — peer shards' slots hold inert :class:`_RemoteNode` stubs
(permanently ``busy``, so the batch starter skips them, yet ``up``, so
the router still names them as targets).  Everything the base engine
does locally — batching, caching, fault retries, gating — runs
unchanged on the real block; every interaction that crosses a block
boundary becomes a typed :class:`~repro.shard.messages.ShardMessage`
in the outbox, which the control plane moves between shards on the
virtual-time bus.

The *home-shard protocol*: a job's home shard (``job_id % n_shards``)
owns its whole lifecycle — JOB_SUBMIT, query arrivals, the
outstanding sub-query count, deadlines, ordered-job progression, and
completion/cancellation broadcasts.  Remote shards execute the
sub-queries routed to their nodes and report back (``done``/``fail``).
Conservation is enforced, not assumed: the home shard counts every
sub-query it creates, applies each completion at most once (an
over-delivery raises :class:`~repro.errors.ShardProtocolError`), and
attributes every non-applied execution to an explicit drop counter —
the cross-shard conservation oracle in :mod:`repro.fuzz` checks the
created = applied + cancelled-residual identity over these counters.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.config import EngineConfig
from repro.core.base import Scheduler
from repro.engine.events import Event, EventKind
from repro.engine.faults import FaultInjector
from repro.engine.simulator import Simulator, _Node
from repro.errors import ShardProtocolError
from repro.grid.atoms import AtomMapper
from repro.shard.messages import ShardMessage
from repro.shard.topology import ShardTopology
from repro.workload.job import Job
from repro.workload.query import Query, SubQuery, preprocess_query
from repro.workload.trace import Trace

__all__ = ["ShardSimulator"]


class _NullScheduler:
    """Inert scheduler for a remote node slot.

    Hears nothing, holds nothing, schedules nothing — remote gating
    and queue state live in the owning shard's domain.  Module-level
    (picklable) and stateless, so snapshots stay cheap.
    """

    name = "remote"

    def on_job_submitted(self, job: Job, now: float) -> None:
        pass

    def on_query_arrival(self, query: Query, subqueries: Sequence[SubQuery], now: float) -> None:
        pass

    def next_batch(self, now: float) -> None:  # pragma: no cover - busy stubs never pull
        return None

    def has_pending(self) -> bool:
        return False

    def on_query_complete(self, query: Query, now: float) -> None:
        pass

    def on_run_boundary(self, obs: object) -> None:
        pass

    def queue_depth(self) -> int:
        return 0

    def evacuate(self, now: float) -> list:  # pragma: no cover - stubs never crash
        return []

    def readmit(self, items: Sequence[Tuple[float, SubQuery]], now: float) -> None:
        raise ShardProtocolError(
            "readmit on a remote node stub: cross-shard re-admission must "
            "travel as a 'route' message, never as a local scheduler call"
        )

    def cancel_query(self, query_id: int, now: float) -> None:
        pass

    def iter_pending(self) -> list:  # pragma: no cover - overload is off when sharded
        return []

    def force_release(self, now: float) -> bool:
        return False


class _NullCache:
    """Stub cache for a remote node slot (run-boundary hook only)."""

    def run_boundary(self) -> None:
        pass


class _RemoteNode:
    """Placeholder for a node owned by a peer shard.

    ``busy=True`` keeps :meth:`Simulator._start_batches` away;
    ``up=True`` keeps :meth:`Simulator._route` willing to name it as a
    routing target (down-ness of remote nodes is decided from the
    static crash schedule instead, see
    :meth:`ShardSimulator._remote_down`).
    """

    def __init__(self) -> None:
        self.scheduler = _NullScheduler()
        self.cache = _NullCache()
        self.busy = True
        self.up = True
        self.epoch = 0
        self.inflight = None


class ShardSimulator(Simulator):
    """The engine for one shard *domain*.

    Deliberately re-implements ``__init__`` rather than calling the
    base constructor: the node list mixes real nodes with remote stubs,
    only home jobs are seeded, and the per-domain fault config has
    already been narrowed (local node crashes only, no coordinator
    crash, no overload/sanitizer — cluster-level invariants are checked
    by the control plane and the conservation counters instead).  Every
    base attribute is initialised here; the event handlers below
    override exactly the points where work crosses a shard boundary.
    """

    def __init__(
        self,
        trace: Trace,
        schedulers: Sequence[Scheduler],
        config: EngineConfig,
        topology: ShardTopology,
        shard_id: int,
        node_of,
        replicas_of,
        full_node_crashes: Tuple[Tuple[int, float, float], ...],
        message_delay: float,
    ) -> None:
        local_idx = topology.nodes_of_shard(shard_id)
        if len(schedulers) != len(local_idx):
            raise ValueError(
                f"shard {shard_id} owns {len(local_idx)} node(s) but got "
                f"{len(schedulers)} scheduler(s)"
            )
        self.trace = trace
        self.config = config
        self.spec = trace.spec
        self.mapper = AtomMapper(self.spec)
        faults = config.faults
        home_jobs = [
            job for job in trace.jobs
            if topology.home_shard_of_job(job.job_id) == shard_id
        ]
        guaranteed_events = len(home_jobs) + 2 * len(faults.node_crashes)
        # One injector per domain, indexed by GLOBAL node id: executors
        # pass their cluster-wide node index, and the per-domain seed is
        # already derived (run_sharded), so peer domains never share a
        # fault stream.
        self.injector = (
            FaultInjector(faults, topology.n_nodes, guaranteed_events=guaranteed_events)
            if faults.enabled
            else None
        )
        self.sanitizer = None
        sched_iter = iter(schedulers)
        self.nodes = [
            _Node(i, next(sched_iter), self.spec, config, self.injector, None)
            if i in local_idx
            else _RemoteNode()
            for i in range(topology.n_nodes)
        ]
        self._node_of = node_of
        self._replicas_of = replicas_of

        self._heap: List[Event] = []
        self._seq = 0
        self.clock = 0.0
        self.event_index = 0
        self._last_completion = 0.0

        self._arrival: Dict[int, float] = {}
        self._remaining: Dict[int, int] = {}
        self._live_query: Dict[int, Query] = {}
        self._job_of: Dict[int, Job] = {}
        self._job_left: Dict[int, int] = {}
        self._job_first_arrival: Dict[int, float] = {}
        self._impaired_jobs: Set[int] = set()

        self._response_times: List[float] = []
        self._job_durations: Dict[int, float] = {}
        self._completed = 0
        self._runs: List = []
        self._run_start = 0.0
        self._run_responses: List[float] = []
        self.forced_releases = 0

        self._timeouts = 0
        self._failovers = 0
        self._requeues = 0
        self._data_loss_cancels = 0
        self._cancelled = 0
        self._aborted_jobs = 0
        self._aborted_unarrived = 0
        self._node_downs = 0
        self._deferred = 0

        self.overload = None
        self._admitted = 0
        self._shed = 0
        self._class_responses: Dict[str, List[float]] = {}
        self._tick_armed = False

        self._job_index = {job.job_id: job for job in trace.jobs}
        for job in home_jobs:
            self._push(job.submit_time, EventKind.JOB_SUBMIT, job)
        local_set = frozenset(local_idx)
        for node_idx, down_t, up_t in faults.node_crashes:
            if int(node_idx) not in local_set:
                raise ValueError(
                    f"shard {shard_id} got a crash schedule for node "
                    f"{node_idx}, outside its block {local_idx}"
                )
            self._push(down_t, EventKind.NODE_DOWN, int(node_idx))
            self._push(up_t, EventKind.NODE_UP, int(node_idx))
        # Deferral parks work until the next recovery anywhere in the
        # CLUSTER — a home shard may be waiting on a remote node.
        self._recovery_times = sorted(up_t for _, _, up_t in full_node_crashes)
        self._checkpointer = None

        # ---- shard-specific state ------------------------------------
        self.shard_id = shard_id
        self._topology = topology
        self._local_idx: Tuple[int, ...] = tuple(local_idx)
        self._local_set = local_set
        self._full_node_crashes = tuple(
            (int(n), float(d), float(u)) for n, d, u in full_node_crashes
        )
        self._message_delay = float(message_delay)
        self._lease_epoch = 0
        self._msg_seq = 0
        self._outbox: List[ShardMessage] = []
        self._window_log: List[Tuple[int, Event]] = []
        # query_id -> home domain, for every live foreign query heard of.
        self._foreign: Dict[int, int] = {}
        # (node, atom) loss facts learned from peer shards' fail reports.
        self._remote_lost: Set[Tuple[int, int]] = set()
        # Cross-shard conservation counters (home-side unless noted).
        self._sq_created = 0
        self._sq_applied = 0
        self._sq_residual_cancelled = 0
        self._sq_executed = 0  # executor-side: successful executions here
        self._sq_exec_dropped = 0  # executed here for an already-dead query
        self._late_done_dropped = 0  # done-counts arriving after cancel
        self._msgs_sent = 0

    # ------------------------------------------------------------------
    # Control-plane surface
    # ------------------------------------------------------------------
    def deliver(self, msg: ShardMessage) -> None:
        """Inject one bus message as a local SHARD_MSG event."""
        self._push(msg.deliver_time, EventKind.SHARD_MSG, msg)

    def drain_outbox(self) -> List[ShardMessage]:
        out, self._outbox = self._outbox, []
        return out

    def drain_window_log(self) -> List[Tuple[int, Event]]:
        log, self._window_log = self._window_log, []
        return log

    def force_release_pass(self) -> bool:
        """Cluster-idle fallback: ask every live local scheduler to
        force-release gated work (the control plane decides livelock)."""
        released = False
        for idx in self._local_idx:
            node = self.nodes[idx]
            if node.up:
                released |= node.scheduler.force_release(self.clock)
        if released:
            self.forced_releases += 1
            self._start_batches()
        return released

    def on_shard_failover(self, resume_time: float) -> None:
        """Adopt this domain after its operator crash-stopped.

        Models recovery from the domain's replicated state: queued work
        survives wholesale, but the crashed coordinator's in-flight
        dispatch context is lost — every running batch is aborted via a
        node epoch bump (its BATCH_DONE arrives stale and is dropped)
        and its sub-queries are re-routed.  Events frozen during the
        failover window are re-timestamped to the resume instant with
        their sequence numbers intact, so relative order is preserved
        and the run stays bit-deterministic.
        """
        self._lease_epoch += 1
        self.clock = max(self.clock, resume_time)
        evacuated: List[Tuple[float, SubQuery]] = []
        for idx in self._local_idx:
            node = self.nodes[idx]
            if node.inflight is None:
                continue
            node.epoch += 1
            for _, subqueries in node.inflight.atoms:
                for sq in subqueries:
                    qid = sq.query.query_id
                    if qid in self._remaining or qid in self._foreign:
                        evacuated.append((self._arrival.get(qid, resume_time), sq))
            node.busy = False
            node.inflight = None
        if self._heap and self._heap[0].time < resume_time:
            self._heap = [
                Event(max(ev.time, resume_time), ev.kind, ev.seq, ev.payload)
                for ev in self._heap
            ]
            heapq.heapify(self._heap)
        for arrival, sq in evacuated:
            self._reroute(sq, arrival, resume_time, from_node=None)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def _send(self, dst_domain: int, kind: str, payload: object, now: float) -> None:
        # dst_epoch is stamped by the control plane when the message
        # enters the bus (the ownership table is control-plane state).
        self._outbox.append(
            ShardMessage(
                kind=kind,
                src_domain=self.shard_id,
                dst_domain=dst_domain,
                src_epoch=self._lease_epoch,
                dst_epoch=-1,
                send_time=now,
                deliver_time=now + self._message_delay,
                seq=self._msg_seq,
                payload=payload,
            )
        )
        self._msg_seq += 1
        self._msgs_sent += 1

    def _broadcast(self, kind: str, payload: object, now: float) -> None:
        for domain in range(self._topology.n_shards):
            if domain != self.shard_id:
                self._send(domain, kind, payload, now)

    # ------------------------------------------------------------------
    # Routing across the block boundary
    # ------------------------------------------------------------------
    def _remote_down(self, node_idx: int, now: float) -> bool:
        """Is a REMOTE node inside a scheduled crash window at ``now``?

        The full crash schedule is static config every shard holds, so
        no state synchronisation is needed to route around planned
        downtime — and a sub-query that races a crash boundary anyway
        is bounced back by the executing shard as a ``fail``.
        """
        for n, down_t, up_t in self._full_node_crashes:
            if n == node_idx and down_t <= now < up_t:
                return True
        return False

    def _route(self, atom_id: int) -> Tuple[Optional[int], bool]:
        candidates = self._replicas_of(atom_id)
        lost_everywhere = True
        for idx in candidates:
            if self.injector is not None and self.injector.is_lost(idx, atom_id):
                continue
            if (idx, atom_id) in self._remote_lost:
                continue
            lost_everywhere = False
            if idx in self._local_set:
                if self.nodes[idx].up:
                    return idx, False
            elif not self._remote_down(idx, self.clock):
                return idx, False
        return None, lost_everywhere

    def _reroute(self, sq: SubQuery, arrival: float, now: float, from_node: Optional[int]) -> None:
        qid = sq.query.query_id
        home = self._foreign.get(qid)
        if home is not None:
            # Not our query: report the failure (plus any loss facts we
            # learned locally) to the home shard, which owns routing.
            lost_pairs = tuple(
                (idx, sq.atom_id)
                for idx in self._local_idx
                if self.injector is not None and self.injector.is_lost(idx, sq.atom_id)
            )
            self._send(home, "fail", (sq, arrival, from_node, lost_pairs), now)
            return
        if qid not in self._remaining:
            return  # query already completed or cancelled
        target, lost_everywhere = self._route(sq.atom_id)
        if target is None:
            if lost_everywhere:
                self._cancel_query(qid, now, reason="data_loss")
            else:
                self._defer(sq, arrival, now)
            return
        if from_node is not None and target == from_node:
            self._requeues += 1
        else:
            self._failovers += 1
        if target in self._local_set:
            self.nodes[target].scheduler.readmit([(arrival, sq)], now)
        else:
            self._send(
                self._topology.shard_of_node(target), "route", (target, sq, arrival), now
            )

    # ------------------------------------------------------------------
    # Event handlers (home side)
    # ------------------------------------------------------------------
    def _dispatch(self, ev: Event) -> None:
        # Window log for the cluster WAL: the control plane assigns
        # cluster-consistent indices and flushes after each superstep.
        self._window_log.append((self.event_index, ev))
        super()._dispatch(ev)

    def _on_job_submit(self, job: Job, now: float) -> None:
        super()._on_job_submit(job, now)
        # Remote gating graphs hear the admission one message hop later;
        # the job notice outruns none of its arrivals (same send instant,
        # lower sequence number, FIFO per sender-pair).
        self._broadcast("job", (job,), now)

    def _on_query_arrival(self, query: Query, now: float) -> None:
        qid = query.query_id
        self._arrival[qid] = now
        self._job_first_arrival.setdefault(query.job_id, now)
        self._live_query[qid] = query
        self._job_of[qid] = self._job_index[query.job_id]
        subqueries = preprocess_query(query, self.mapper)
        self._remaining[qid] = len(subqueries)
        self._admitted += 1
        self._sq_created += len(subqueries)
        by_node: Dict[int, List[SubQuery]] = {}
        deferred: List[SubQuery] = []
        lost = False
        for sq in subqueries:
            target, lost_everywhere = self._route(sq.atom_id)
            if target is not None:
                if target != self._node_of(sq.atom_id):
                    self._failovers += 1
                by_node.setdefault(target, []).append(sq)
            elif lost_everywhere:
                lost = True
            else:
                deferred.append(sq)
        for idx in self._local_idx:
            self.nodes[idx].scheduler.on_query_arrival(query, by_node.get(idx, []), now)
        # Every peer domain hears every arrival (even with no local
        # sub-queries) so remote gating state stays in lockstep.
        for domain in range(self._topology.n_shards):
            if domain == self.shard_id:
                continue
            routed = tuple(
                (idx, tuple(by_node[idx]))
                for idx in self._topology.nodes_of_shard(domain)
                if idx in by_node
            )
            self._send(domain, "arrival", (query, routed), now)
        for sq in deferred:
            self._defer(sq, now, now)
        if lost:
            self._cancel_query(qid, now, reason="data_loss")
            return
        deadline = self.config.faults.query_deadline
        if deadline is not None:
            self._push(now + deadline, EventKind.QUERY_DEADLINE, qid)

    def _apply_done(self, qid: int, count: int, query: Query, now: float) -> None:
        """Apply ``count`` sub-query completions to the home-side
        outstanding counter — at most once per sub-query, by contract."""
        remaining = self._remaining.get(qid)
        if remaining is None:
            self._late_done_dropped += count
            return
        if count > remaining:
            raise ShardProtocolError(
                f"completion over-delivery for query {qid}: {count} done "
                f"reported with only {remaining} outstanding (a sub-query "
                "was double-executed across an epoch change)",
                domain=self.shard_id,
                epoch=self._lease_epoch,
                **self._diagnostics(),
            )
        self._remaining[qid] = remaining - count
        self._sq_applied += count
        if self._remaining[qid] == 0:
            self._complete_query(query, now)

    def _on_batch_done(self, node_idx: int, epoch: int, batch, failed: list, now: float) -> None:
        node = self.nodes[node_idx]
        if epoch != node.epoch:
            return  # node (or shard) crashed mid-batch; work was re-routed
        node.busy = False
        node.inflight = None
        failed_ids = {id(sq) for sq in failed}
        done_for_home: Dict[int, Dict[int, Tuple[int, Query]]] = {}
        for _, subqueries in batch.atoms:
            for sq in subqueries:
                if id(sq) in failed_ids:
                    continue
                qid = sq.query.query_id
                self._sq_executed += 1
                if qid in self._remaining:
                    self._apply_done(qid, 1, sq.query, now)
                elif qid in self._foreign:
                    per_home = done_for_home.setdefault(self._foreign[qid], {})
                    count, _ = per_home.get(qid, (0, sq.query))
                    per_home[qid] = (count + 1, sq.query)
                else:
                    self._sq_exec_dropped += 1  # cancelled while running
        for home in sorted(done_for_home):
            for qid in sorted(done_for_home[home]):
                count, _query = done_for_home[home][qid]
                self._send(home, "done", (qid, count), now)
        for sq in failed:
            self._reroute(
                sq, self._arrival.get(sq.query.query_id, now), now, from_node=node_idx
            )

    def _complete_query(self, query: Query, now: float) -> None:
        super()._complete_query(query, now)
        self._broadcast("complete", (query,), now)

    def _cancel_query(self, query_id: int, now: float, reason: str) -> None:
        query = self._live_query.get(query_id)
        job = self._job_of.get(query_id)
        residual = self._remaining.get(query_id, 0)
        extra: Tuple[int, ...] = ()
        if query is not None and job is not None and job.is_ordered:
            extra = tuple(fq.query_id for fq in job.queries[query.seq + 1:])
        super()._cancel_query(query_id, now, reason)
        self._sq_residual_cancelled += residual
        self._broadcast("cancel", (query_id, extra), now)

    # ------------------------------------------------------------------
    # Event handlers (message delivery)
    # ------------------------------------------------------------------
    def _on_shard_msg(self, payload: object, now: float) -> None:
        msg = payload
        assert isinstance(msg, ShardMessage)
        kind = msg.kind
        if kind == "job":
            (job,) = msg.payload
            for idx in self._local_idx:
                self.nodes[idx].scheduler.on_job_submitted(job, now)
        elif kind == "arrival":
            query, routed = msg.payload
            self._foreign[query.query_id] = msg.src_domain
            by_node = {idx: list(sqs) for idx, sqs in routed}
            bounced: List[SubQuery] = []
            for idx in self._local_idx:
                node = self.nodes[idx]
                sqs = by_node.get(idx, [])
                if sqs and not node.up:
                    # The home shard routed here around a crash boundary
                    # it could not observe; bounce the work back.
                    bounced.extend(sqs)
                    sqs = []
                node.scheduler.on_query_arrival(query, sqs, now)
            for sq in bounced:
                self._reroute(sq, now, now, from_node=None)
        elif kind == "done":
            qid, count = msg.payload
            query = self._live_query.get(qid)
            if query is None:
                self._late_done_dropped += count
            else:
                self._apply_done(qid, count, query, now)
        elif kind == "fail":
            sq, arrival_hint, from_node, lost_pairs = msg.payload
            self._remote_lost.update(lost_pairs)
            qid = sq.query.query_id
            self._reroute(sq, self._arrival.get(qid, arrival_hint), now, from_node)
        elif kind == "route":
            target, sq, arrival = msg.payload
            qid = sq.query.query_id
            if qid not in self._foreign:
                return  # cancelled while the re-admission was in flight
            node = self.nodes[target]
            if not node.up:
                self._reroute(sq, arrival, now, from_node=None)
            else:
                node.scheduler.readmit([(arrival, sq)], now)
        elif kind == "complete":
            (query,) = msg.payload
            self._foreign.pop(query.query_id, None)
            for idx in self._local_idx:
                self.nodes[idx].scheduler.on_query_complete(query, now)
        elif kind == "cancel":
            qid, extra = msg.payload
            self._foreign.pop(qid, None)
            for idx in self._local_idx:
                self.nodes[idx].scheduler.cancel_query(qid, now)
            for fq in extra:
                self._foreign.pop(fq, None)
                for idx in self._local_idx:
                    self.nodes[idx].scheduler.cancel_query(fq, now)
        else:  # pragma: no cover - MESSAGE_KINDS is validated at build
            raise ShardProtocolError(
                f"undeliverable shard message kind {kind!r}",
                domain=self.shard_id,
                epoch=self._lease_epoch,
                **self._diagnostics(),
            )

    # ------------------------------------------------------------------
    # Result fragment
    # ------------------------------------------------------------------
    def partial(self) -> dict:
        """This domain's slice of the cluster result, merged by the
        control plane into one :class:`~repro.engine.results.RunResult`
        (mirrors :meth:`Simulator._result`, restricted to real nodes)."""
        cache: Dict[str, float] = {}
        disk: Dict[str, float] = {}
        execs: Dict[str, float] = {}
        gating_ns = 0
        sched_forced = 0
        alpha_histories: List[List[float]] = []
        for idx in self._local_idx:
            node = self.nodes[idx]
            for key, val in node.cache.stats.snapshot().items():
                if key != "hit_ratio":
                    cache[key] = cache.get(key, 0) + val
            for key, val in node.disk.stats.snapshot().items():
                disk[key] = disk.get(key, 0) + val
            for key, val in node.executor.stats.snapshot().items():
                execs[key] = execs.get(key, 0) + val
            gating_ns += getattr(node.scheduler, "gating_overhead_ns", 0)
            sched_forced += getattr(node.scheduler, "forced_releases", 0)
            history = getattr(node.scheduler, "alpha_history", None)
            if history:
                alpha_histories.append(list(history))
        return {
            "scheduler_name": self.nodes[self._local_idx[0]].scheduler.name,
            "response_times": list(self._response_times),
            "job_durations": dict(self._job_durations),
            "runs": list(self._runs),
            "alpha_histories": alpha_histories,
            "cache": cache,
            "disk": disk,
            "exec": execs,
            "forced_releases": self.forced_releases + sched_forced,
            "gating_overhead_ns": gating_ns,
            "timeouts": self._timeouts,
            "retries": self.injector.stats.retries if self.injector is not None else 0,
            "failovers": self._failovers,
            "aborted_jobs": self._aborted_jobs,
            "cancelled": self._cancelled,
            "completed": self._completed,
            "last_completion": self._last_completion,
            "class_responses": {k: list(v) for k, v in self._class_responses.items()},
            "faults": self.injector.snapshot() if self.injector is not None else {},
            "node_downs": self._node_downs,
            "requeues": self._requeues,
            "deferred": self._deferred,
            "data_loss_cancels": self._data_loss_cancels,
            "aborted_unarrived": self._aborted_unarrived,
            "event_index": self.event_index,
            "lease_epoch": self._lease_epoch,
            "conservation": {
                "created": self._sq_created,
                "applied": self._sq_applied,
                "residual_cancelled": self._sq_residual_cancelled,
                "executed": self._sq_executed,
                "exec_dropped": self._sq_exec_dropped,
                "late_done_dropped": self._late_done_dropped,
                "messages_sent": self._msgs_sent,
            },
        }
