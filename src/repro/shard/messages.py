"""Typed cross-shard messages.

Every interaction between shard coordinators travels as one
:class:`ShardMessage` over the control plane's virtual-time bus, with a
positive delivery latency (``ShardConfig.message_delay``) — the
conservative-window guarantee of the superstep loop rests on that
latency being strictly positive.  Seven kinds:

``job``
    Home shard announces a job admission; every remote scheduler's
    gating graph hears ``on_job_submitted`` one hop later.
``arrival``
    Home shard broadcasts a query arrival, carrying the sub-queries it
    routed to the destination domain's nodes (possibly none — every
    node hears every arrival so gating state stays in sync).
``done``
    Executing shard reports successful sub-query completions back to
    the home shard, which owns the outstanding count.
``fail``
    Executing shard returns a sub-query it cannot serve (node crash,
    lost atom copy, exhausted retries) to the home shard for
    re-routing, along with any permanent-loss facts it learned.
``route``
    Home shard re-admits a failed-over sub-query directly onto a named
    remote node.
``complete`` / ``cancel``
    Home shard broadcasts query completion / cancellation so remote
    schedulers release gating partners and prune queues.

Messages are immutable; the control plane re-stamps a stale message
(destination epoch no longer current after a failover) by building a
replacement with ``dataclasses.replace`` — the retry is visible in
``retries`` and in the delivery time, never silent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.errors import ShardProtocolError

__all__ = ["ShardMessage", "MESSAGE_KINDS"]

#: Every legal ``ShardMessage.kind`` tag.
MESSAGE_KINDS = ("job", "arrival", "done", "fail", "route", "complete", "cancel")


@dataclass(frozen=True)
class ShardMessage:
    """One cross-shard message on the virtual-time bus.

    ``seq`` is the sender's per-domain send counter — together with
    ``(send_time, src_domain)`` it gives the bus a total delivery order
    with no ties, so N-shard runs are bit-deterministic.  ``dst_epoch``
    is the destination domain's lease epoch as recorded when the
    message entered the bus; the control plane validates it at delivery
    and re-addresses stale messages instead of applying them.
    """

    kind: str
    src_domain: int
    dst_domain: int
    src_epoch: int
    dst_epoch: int
    send_time: float
    deliver_time: float
    seq: int
    payload: Any = None
    retries: int = 0

    def __post_init__(self) -> None:
        if self.kind not in MESSAGE_KINDS:
            raise ShardProtocolError(
                f"unknown shard message kind {self.kind!r}",
                domain=self.dst_domain,
                epoch=self.dst_epoch,
            )

    # ------------------------------------------------------------------
    def _payload_parts(self) -> Tuple:
        """Semantic identity of the payload — ids only, never object
        identity, so WAL fingerprints survive process boundaries."""
        payload = self.payload
        if self.kind == "job":
            (job,) = payload
            return (job.job_id,)
        if self.kind == "arrival":
            query, by_node = payload
            return (
                query.query_id,
                tuple(
                    (node_idx, tuple(sq.atom_id for sq in sqs))
                    for node_idx, sqs in by_node
                ),
            )
        if self.kind == "done":
            qid, count = payload
            return (qid, count)
        if self.kind == "fail":
            sq, arrival, from_node, lost_pairs = payload
            return (
                sq.query.query_id,
                sq.atom_id,
                float(arrival).hex(),
                from_node,
                tuple(sorted(lost_pairs)),
            )
        if self.kind == "route":
            target, sq, arrival = payload
            return (target, sq.query.query_id, sq.atom_id, float(arrival).hex())
        if self.kind == "complete":
            (query,) = payload
            return (query.query_id,)
        # "cancel"
        qid, extra = payload
        return (qid, tuple(extra))

    def fingerprint_parts(self) -> Tuple:
        """Stable tuple digested into the WAL record for the SHARD_MSG
        event that delivers this message (see
        :func:`repro.recovery.wal.event_fingerprint`)."""
        return (
            self.kind,
            self.src_domain,
            self.dst_domain,
            self.src_epoch,
            self.dst_epoch,
            self.seq,
            self.retries,
            float(self.send_time).hex(),
            *self._payload_parts(),
        )
