"""Cluster-consistent recovery for sharded runs.

A cluster recovery point is a *consistent cut* written at a barrier of
the control plane's superstep loop: one CRC-guarded snapshot per shard
(each taken through that shard's own
:class:`~repro.recovery.checkpoint.CheckpointManager`, in its
``shard-<d>/`` subdirectory) plus one ``cluster-*.manifest`` recording
the control-plane state — ownership table, lease epochs, in-flight bus
messages, pending crash/failover control events, and the exact event
index each shard snapshot was taken at.  The manifest is written
*after* every shard snapshot lands, so a crash mid-barrier leaves the
previous manifest (and its still-retained shard snapshots) as the
newest complete cut.

:func:`resume_cluster` rebuilds the N domains from the snapshots the
manifest names — refusing with :class:`~repro.errors.RecoveryError` if
any shard's snapshot for the recorded index is missing or disagrees —
and re-arms each shard's WAL in replay-verify mode, so the resumed run
re-dispatches events under the same fingerprint check the
single-coordinator engine uses.  Failovers that happened before the
barrier are already baked into the restored ownership table and
domains; failovers scheduled after it are restored as pending control
events.  Either way the resumed run reproduces the uninterrupted run
bit-for-bit.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.config import CheckpointConfig
from repro.errors import RecoveryError
from repro.parallel.supervisor import SupervisorConfig
from repro.recovery.checkpoint import (
    _REQUIRED_STATE_KEYS,
    _snapshot_name,
    _wal_name,
    CheckpointManager,
    verify_restored_state,
)
from repro.recovery.codec import decode_snapshot
from repro.recovery.wal import read_wal
from repro.shard.control import _NEVER_EVENTS, MANIFEST_GLOB, ClusterControlPlane
from repro.shard.coordinator import ShardSimulator

__all__ = ["resume_cluster", "latest_manifest"]


def latest_manifest(directory: str | Path) -> Optional[Path]:
    """The newest cluster manifest under ``directory``, or ``None``.

    Used by the CLI to tell a sharded recovery directory apart from a
    single-coordinator one (which holds bare ``snapshot-*.ckpt`` files).
    """
    manifests = sorted(Path(directory).glob(MANIFEST_GLOB))
    return manifests[-1] if manifests else None


def _load_shard_snapshot(
    directory: Path, event_index: int
) -> Tuple[Dict[str, Any], CheckpointManager]:
    """Load one shard's snapshot at the *exact* index the manifest
    recorded — never ``load_latest``: a crash between a shard snapshot
    and the manifest write may leave a newer snapshot on disk that is
    not part of any consistent cut."""
    path = directory / _snapshot_name(event_index)
    if not path.exists():
        raise RecoveryError(
            f"inconsistent cluster cut: manifest records event index "
            f"{event_index} for {directory.name}, but {path.name} is missing"
        )
    meta, state = decode_snapshot(path.read_bytes())
    missing = [key for key in _REQUIRED_STATE_KEYS if key not in state]
    if missing:
        raise RecoveryError(
            f"shard snapshot {path.name} lacks required state keys: {missing}"
        )
    if int(meta.get("event_index", -1)) != event_index or (
        int(state["event_index"]) != event_index
    ):
        raise RecoveryError(
            f"inconsistent cluster cut: {directory.name}/{path.name} claims "
            f"event index {meta.get('event_index')}/{state['event_index']}, "
            f"manifest expects {event_index}"
        )
    wal_path = directory / _wal_name(event_index)
    replay = read_wal(wal_path, event_index)
    manager = CheckpointManager(
        CheckpointConfig(directory=str(directory), every_events=_NEVER_EVENTS)
    )
    manager.directory = directory
    manager._last_snapshot_event = event_index
    manager._last_snapshot_clock = float(state["clock"])
    manager._has_snapshot = True
    manager._wal_path = wal_path
    manager._replay = replay
    manager._replay_pos = 0
    return state, manager


def resume_cluster(
    directory: str | Path,
    jobs: int = 1,
    supervisor: Optional[SupervisorConfig] = None,
) -> ClusterControlPlane:
    """Rebuild a sharded run from its newest consistent cut.

    Returns the reconstructed control plane; call
    :meth:`~repro.shard.control.ClusterControlPlane.run` to resume.
    The halt-after-barrier trigger (if the interrupted run armed one)
    is disarmed, mirroring how single-coordinator resume disarms the
    injected coordinator crash.
    """
    root = Path(directory)
    manifest = latest_manifest(root)
    if manifest is None:
        raise RecoveryError(f"no cluster manifest found in {root}")
    meta, state = decode_snapshot(manifest.read_bytes())
    n_shards = int(meta.get("n_shards", 0))
    topology = state["topology"]
    if n_shards != topology.n_shards or meta.get("topology_digest") != (
        topology.digest()
    ):
        raise RecoveryError(
            f"cluster manifest {manifest.name} disagrees with its recorded "
            "topology (shard count or range-assignment digest mismatch)"
        )
    cfg = state["shards"].with_(
        checkpoint_dir=str(root),  # resume where the files actually live
        halt_after_barrier=None,
    )
    indices = state["shard_event_indices"]
    if len(indices) != n_shards:
        raise RecoveryError(
            f"cluster manifest {manifest.name} records {len(indices)} shard "
            f"snapshot indices for {n_shards} shards"
        )
    domains = []
    managers = []
    for d in range(n_shards):
        shard_state, manager = _load_shard_snapshot(root / f"shard-{d}", indices[d])
        sim = object.__new__(ShardSimulator)
        sim.__dict__.update(shard_state)
        sim._checkpointer = None
        verify_restored_state(sim)
        domains.append(sim)
        managers.append(manager)
    restored = {
        "ownership": state["ownership"],
        "bus": state["bus"],
        "ctrl": state["ctrl"],
        "frozen": state["frozen"],
        "dead": state["dead"],
        "stale_retries": state["stale_retries"],
        "epoch_bumps": state["epoch_bumps"],
        "shard_crashes": state["shard_crashes"],
        "messages_delivered": state["messages_delivered"],
        "ctrl_seq": state["ctrl_seq"],
        "barrier_count": state["barrier_count"],
        "next_barrier": state["next_barrier"],
    }
    return ClusterControlPlane(
        domains=domains,
        topology=topology,
        shards=cfg,
        partitioner=state["partitioner"],
        jobs=jobs,
        supervisor=supervisor,
        _restored=restored,
        _managers=managers,
    )
