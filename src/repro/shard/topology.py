"""Shard topology and the lease-based ownership table.

A *shard* is one coordinator instance owning a contiguous block of
cluster nodes — and therefore, through the Morton-contiguous
node-to-atom map of :class:`~repro.cluster.partition.MortonRangePartitioner`,
a contiguous Morton range of the dataset.  :class:`ShardTopology` is
the static part (which nodes belong to which shard, which shard is a
job's *home*); :class:`OwnershipTable` is the dynamic part — which
shard currently operates each *domain* (a shard's original node block
plus its coordinator state) and under which lease epoch.

Epoch/lease semantics (DESIGN.md §14): every domain carries a
monotonically increasing epoch, bumped exactly once per failover.
Cross-shard messages are stamped with the destination domain's epoch at
send time and validated against the table at delivery; a stale stamp is
never applied silently — the message is re-addressed to the new owner
with a typed retry delay in virtual time.  Shards crash-stop, so a
deposed owner can never issue new work; the epoch check is what makes
in-flight work from before the crash safe to re-resolve.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import PartitionError

__all__ = ["ShardTopology", "OwnershipTable"]


@dataclass(frozen=True)
class ShardTopology:
    """Static shard layout: ``n_nodes`` cluster nodes split into
    ``n_shards`` contiguous blocks (same floor-division split the
    Morton partitioner uses for atoms, so every shard owns a contiguous
    Morton range and block boundaries never split a node)."""

    n_nodes: int
    n_shards: int

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise PartitionError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.n_nodes < 1:
            raise PartitionError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.n_shards > self.n_nodes:
            raise PartitionError(
                f"cannot split {self.n_nodes} node(s) into {self.n_shards} "
                "shards: every shard needs at least one node"
            )

    def nodes_of_shard(self, shard: int) -> range:
        """Contiguous node block owned by ``shard`` (never empty)."""
        lo = shard * self.n_nodes // self.n_shards
        hi = (shard + 1) * self.n_nodes // self.n_shards
        return range(lo, hi)

    def shard_of_node(self, node_idx: int) -> int:
        """Inverse of :meth:`nodes_of_shard` (closed-form, no search)."""
        return ((node_idx + 1) * self.n_shards - 1) // self.n_nodes

    def home_shard_of_job(self, job_id: int) -> int:
        """The shard that owns a job's lifecycle: submission, arrivals,
        outstanding-count bookkeeping, deadlines and completions."""
        return job_id % self.n_shards

    def digest(self) -> str:
        """Short stable digest of the full range assignment — the
        topology component of :meth:`~repro.parallel.pool.RunSpec.digest`
        and the trace-cache key, so sharded and unsharded runs can
        never alias each other's cached artifacts."""
        ranges = tuple(
            (self.nodes_of_shard(s).start, self.nodes_of_shard(s).stop)
            for s in range(self.n_shards)
        )
        body = repr((self.n_nodes, self.n_shards, ranges)).encode("utf-8")
        return hashlib.sha256(body).hexdigest()[:12]


@dataclass
class OwnershipTable:
    """Dynamic domain ownership: ``operator[d]`` is the shard currently
    running domain ``d``; ``epoch[d]`` is its lease epoch.  Plain
    picklable state — snapshotted verbatim into the cluster manifest."""

    operator: List[int] = field(default_factory=list)
    epoch: List[int] = field(default_factory=list)

    @classmethod
    def identity(cls, n_shards: int) -> "OwnershipTable":
        return cls(operator=list(range(n_shards)), epoch=[0] * n_shards)

    def transfer(self, domain: int, new_operator: int) -> int:
        """Fail domain ``domain`` over to ``new_operator``; returns the
        bumped epoch.  Exactly one bump per failover: every lease ever
        granted is uniquely named by ``(domain, epoch)``."""
        self.epoch[domain] += 1
        self.operator[domain] = new_operator
        return self.epoch[domain]

    def domains_of(self, shard: int) -> Tuple[int, ...]:
        """Domains currently operated by ``shard`` (its own, plus any
        adopted through failover)."""
        return tuple(d for d, op in enumerate(self.operator) if op == shard)
