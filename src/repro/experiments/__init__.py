"""Experiment harnesses regenerating every figure and table of §VI.

Each ``figNN``/``table1`` module exposes a ``run(scale=...)`` function
returning plain dicts/series plus a ``render`` helper that prints the
paper-style rows; the ``benchmarks/`` tree wraps these for
pytest-benchmark, and EXPERIMENTS.md records paper-vs-measured values.
"""

from repro.experiments.common import (
    ExperimentScale,
    standard_engine,
    standard_params,
    standard_scheduler_config,
    standard_spec,
    standard_trace,
)

__all__ = [
    "ExperimentScale",
    "standard_spec",
    "standard_params",
    "standard_engine",
    "standard_scheduler_config",
    "standard_trace",
]
