"""Plain-text rendering of experiment results (paper-style rows)."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["render_table", "render_series", "render_kv"]


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None
) -> str:
    """Fixed-width table; floats formatted to 3 significant decimals."""
    def fmt(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, xs: Sequence, ys: Sequence[float], x_label: str = "x") -> str:
    """One figure series as aligned x/y rows with a text sparkline."""
    lines = [f"{name} ({x_label} -> value)"]
    y_max = max(ys) if ys else 1.0
    for x, y in zip(xs, ys):
        bar = "#" * int(round(30 * y / y_max)) if y_max > 0 else ""
        lines.append(f"  {str(x):>8}  {y:10.3f}  {bar}")
    return "\n".join(lines)


def render_kv(title: str, values: Mapping[str, float]) -> str:
    lines = [title]
    width = max((len(k) for k in values), default=0)
    for k, v in values.items():
        if isinstance(v, float):
            lines.append(f"  {k.ljust(width)}  {v:.4f}")
        else:
            lines.append(f"  {k.ljust(width)}  {v}")
    return "\n".join(lines)
