"""Shared, calibrated experiment configuration.

The paper evaluates an 800 GB / 31-time-step sample with a 50 k-query
trace on one server with a 2 GB (256-atom) external cache.  The
laptop-scale equivalents here keep every structural ratio —
atoms-per-step vs cache size, job mix, burstiness — while shrinking
query count so a full figure regenerates in minutes.  Two scales are
provided: ``SMALL`` for tests/CI, ``FULL`` for the recorded
EXPERIMENTS.md numbers.
"""

from __future__ import annotations

import enum
import os
from typing import Any, List, Optional, Sequence
from repro.config import CacheConfig, CostModel, EngineConfig, SchedulerConfig
from repro.engine.results import RunResult
from repro.grid.dataset import DatasetSpec
from repro.parallel import RunSpec, SupervisorConfig, run_many
from repro.workload.cache import cached_generate_trace
from repro.workload.generator import WorkloadParams
from repro.workload.trace import Trace

__all__ = [
    "ExperimentScale",
    "standard_spec",
    "standard_params",
    "standard_engine",
    "standard_scheduler_config",
    "standard_trace",
    "sweep_run_many",
    "sweep_supervisor",
    "STANDARD_SPEEDUP",
]

#: Saturation applied for the headline Fig. 10 / Table I comparisons —
#: the paper's trace week is heavily contended ("when contention in the
#: workload is high").
STANDARD_SPEEDUP = 8.0


class ExperimentScale(enum.Enum):
    """How much workload to simulate."""

    SMALL = "small"  # seconds per run; used by tests
    FULL = "full"  # tens of seconds per run; used for EXPERIMENTS.md


def standard_spec() -> DatasetSpec:
    """31 time steps (like the paper's sample) of an 8³-atom grid."""
    return DatasetSpec.small(n_timesteps=31, atoms_per_axis=8)


def standard_params(scale: ExperimentScale = ExperimentScale.FULL, seed: int = 7) -> WorkloadParams:
    """Workload knobs per scale; see WorkloadParams for semantics.

    Calibrated (see DESIGN.md §5) so that at ``STANDARD_SPEEDUP`` the
    five schedulers reproduce the Fig. 10 ordering and rough factors.
    """
    common = dict(
        think_time_mean=2.0,
        frac_tracking=0.25,
        frac_batched=0.25,
        batched_len_mean=6.0,
        tracking_len_mean=16.0,
        campaign_prob=0.25,
        campaign_size_mean=1.5,
        hotspot_sigma=80.0,
        seed=seed,
    )
    if scale is ExperimentScale.SMALL:
        return WorkloadParams(n_jobs=90, span=1650.0, **common)
    return WorkloadParams(n_jobs=320, span=5800.0, **common)


def standard_engine() -> EngineConfig:
    """Cost model + 256-atom LRU-K cache (the paper's baseline)."""
    return EngineConfig(
        cost=CostModel(t_b=0.04, t_m=2.0e-5),
        cache=CacheConfig(capacity_atoms=256, policy="lruk"),
        run_length=40,
    )


def standard_scheduler_config(**overrides: Any) -> SchedulerConfig:
    """JAWS defaults: α₀ = 0.5, adaptive, k = 15 (paper §VI-B)."""
    base = SchedulerConfig(
        alpha=0.5, adaptive_alpha=True, batch_size=15, run_length=40
    )
    return base.with_(**overrides) if overrides else base


def standard_trace(
    scale: ExperimentScale = ExperimentScale.FULL,
    speedup: float = STANDARD_SPEEDUP,
    seed: int = 7,
) -> Trace:
    """The calibrated trace, rescaled to the requested saturation.

    Memoized on disk (content-addressed, bit-identical on reload; see
    :mod:`repro.workload.cache`) so sweeps that reuse the standard
    trace generate it once.  Set ``REPRO_TRACE_CACHE=off`` to disable.
    """
    return cached_generate_trace(
        standard_spec(), standard_params(scale, seed), speedup=speedup
    )


def sweep_supervisor() -> Optional[SupervisorConfig]:
    """Supervision knobs for experiment sweeps, from the environment.

    ``REPRO_TASK_TIMEOUT=<seconds>`` arms the per-run watchdog for every
    figure/table sweep without threading a flag through each experiment
    signature — an overnight ``--scale full`` regeneration then survives
    a wedged worker (killed, retried, at worst surfaced as a typed
    :class:`~repro.errors.WorkerCrashError` naming the run's label).
    Unset (the default) leaves the supervisor defaults: retries on
    worker death, no deadline.  The timeout only bounds *real* execution
    time; results remain bit-identical to serial runs.
    """
    raw = os.environ.get("REPRO_TASK_TIMEOUT", "").strip()
    if not raw:
        return None
    try:
        timeout = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_TASK_TIMEOUT={raw!r} is not a number of seconds"
        ) from None
    if timeout <= 0:
        return None
    return SupervisorConfig(task_timeout=timeout)


def sweep_run_many(specs: Sequence[RunSpec], jobs: int = 1) -> List[RunResult]:
    """Run an experiment sweep's specs under the supervised pool.

    The one fan-out entry point every figure/table module uses: spec
    labels ride along to failure records, and :func:`sweep_supervisor`
    (the ``REPRO_TASK_TIMEOUT`` environment knob) arms the watchdog
    uniformly across fig10/fig11/fig12/table1 and the ablations.
    """
    return run_many(specs, jobs=jobs, supervisor=sweep_supervisor())
