"""CSV export of experiment results (for external plotting).

Each figure/table harness returns plain dicts; these helpers flatten
them into CSV files so the series can be re-plotted outside Python
(the repository itself renders text-mode figures via
:mod:`repro.experiments.report`).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

__all__ = ["write_rows", "export_fig10", "export_fig11", "export_fig12", "export_table1"]


def write_rows(path: str | Path, headers: Sequence[str], rows: Sequence[Sequence]) -> Path:
    """Write one CSV file; returns the path."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def export_fig10(data: Mapping, path: str | Path) -> Path:
    rows = [
        (
            name,
            v["throughput_qps"],
            v["relative"],
            v["paper_relative"],
            v["mean_rt"],
            v["cache_hit"],
            v["disk_reads"],
        )
        for name, v in data["rows"].items()
    ]
    return write_rows(
        path,
        ["scheduler", "throughput_qps", "relative", "paper_relative", "mean_rt_s", "cache_hit", "disk_reads"],
        rows,
    )


def export_fig11(data: Mapping, path: str | Path) -> Path:
    headers = ["speedup"]
    schedulers = list(data["throughput"])
    headers += [f"tp_{s}" for s in schedulers] + [f"rt_{s}" for s in schedulers]
    rows = []
    for i, speedup in enumerate(data["speedups"]):
        row = [speedup]
        row += [data["throughput"][s][i] for s in schedulers]
        row += [data["response_time"][s][i] for s in schedulers]
        rows.append(row)
    return write_rows(path, headers, rows)


def export_fig12(data: Mapping, path: str | Path) -> Path:
    rows = list(zip(data["ks"], data["throughput"]))
    rows.append(("liferaft2", data["liferaft2"]))
    return write_rows(path, ["k", "throughput_qps"], rows)


def export_table1(data: Mapping, path: str | Path) -> Path:
    rows = [
        (policy, v["cache_hit"], v["sec_per_qry"], v["overhead_ms"], v["throughput_qps"])
        for policy, v in data["rows"].items()
    ]
    return write_rows(
        path, ["policy", "cache_hit", "sec_per_qry", "overhead_ms", "throughput_qps"], rows
    )
