"""Ablation experiments for design choices called out in DESIGN.md.

* ``urc_vs_saturation`` — §VII claim: "the relative benefit of URC
  improves with increased workload saturation".
* ``metric_normalization`` — our min–max normalization of Eq. 2 vs the
  paper's raw unit-mixing formula.
* ``gating_ablation`` — job-awareness on/off at fixed k and α policy
  (a cleaner isolation than JAWS₁-vs-JAWS₂, which also flips naming).
* ``seq_discount`` — uniform-cost disk (the paper's assumption) vs a
  sequential-read discount: how much Morton-ordered batching would
  additionally buy on a seek-bound disk.
"""

from __future__ import annotations

import dataclasses

from repro.config import MetricConfig
from repro.experiments.common import (
    STANDARD_SPEEDUP,
    ExperimentScale,
    standard_engine,
    standard_scheduler_config,
    standard_trace,
    sweep_run_many,
)
from repro.experiments.report import render_series, render_table
from repro.parallel import RunSpec

__all__ = [
    "urc_vs_saturation",
    "metric_normalization",
    "gating_ablation",
    "seq_discount",
]


def urc_vs_saturation(
    scale: ExperimentScale = ExperimentScale.SMALL,
    speedups: tuple[float, ...] = (1.0, 4.0, 16.0),
    seed: int = 7,
    jobs: int = 1,
) -> dict:
    """URC-over-LRU-K throughput gain per saturation level."""
    engine = standard_engine()
    policies = ("lruk", "urc")
    specs = [
        RunSpec(
            standard_trace(scale, speedup=speedup, seed=seed),
            "jaws2",
            dataclasses.replace(
                engine, cache=dataclasses.replace(engine.cache, policy=policy)
            ),
            label=f"urc_vs_saturation:{policy}@x{speedup:g}",
        )
        for speedup in speedups
        for policy in policies
    ]
    results = sweep_run_many(specs, jobs=jobs)
    gains = []
    it = iter(results)
    for _speedup in speedups:
        per_policy = {policy: next(it).throughput_qps for policy in policies}
        gains.append(per_policy["urc"] / per_policy["lruk"])
    return {"speedups": list(speedups), "urc_gain": gains}


def metric_normalization(
    scale: ExperimentScale = ExperimentScale.SMALL,
    speedup: float = STANDARD_SPEEDUP,
    seed: int = 7,
    jobs: int = 1,
) -> dict:
    """JAWS₂ with normalized vs raw aged metric (fixed α = 0.5)."""
    trace = standard_trace(scale, speedup=speedup, seed=seed)
    engine = standard_engine()
    variants = (("normalized", True), ("raw", False))
    specs = [
        RunSpec(
            trace,
            "jaws2",
            engine,
            standard_scheduler_config(
                adaptive_alpha=False, metric=MetricConfig(normalize=normalize)
            ),
            label=f"metric_normalization:{_label}",
        )
        for _label, normalize in variants
    ]
    results = sweep_run_many(specs, jobs=jobs)
    out = {}
    for (label, _normalize), result in zip(variants, results):
        out[label] = {
            "throughput_qps": result.throughput_qps,
            "mean_rt": result.mean_response_time,
        }
    return out


def gating_ablation(
    scale: ExperimentScale = ExperimentScale.SMALL,
    speedup: float = STANDARD_SPEEDUP,
    seed: int = 7,
    jobs: int = 1,
) -> dict:
    """Job-awareness on/off with everything else held fixed."""
    trace = standard_trace(scale, speedup=speedup, seed=seed)
    engine = standard_engine()
    variants = (("gated", True), ("ungated", False))
    specs = [
        RunSpec(
            trace,
            "jaws2" if aware else "jaws1",
            engine,
            standard_scheduler_config(job_aware=aware),
            label=f"gating_ablation:{_label}",
        )
        for _label, aware in variants
    ]
    results = sweep_run_many(specs, jobs=jobs)
    out = {}
    for (label, _aware), result in zip(variants, results):
        out[label] = {
            "throughput_qps": result.throughput_qps,
            "disk_reads": result.disk["reads"],
            "mean_rt": result.mean_response_time,
        }
    out["throughput_gain"] = (
        out["gated"]["throughput_qps"] / out["ungated"]["throughput_qps"]
        if out["ungated"]["throughput_qps"]
        else 0.0
    )
    return out


def seq_discount(
    scale: ExperimentScale = ExperimentScale.SMALL,
    speedup: float = STANDARD_SPEEDUP,
    discounts: tuple[float, ...] = (1.0, 0.5, 0.25),
    seed: int = 7,
    jobs: int = 1,
) -> dict:
    """JAWS₂ and NoShare under increasingly seek-bound disk models."""
    trace = standard_trace(scale, speedup=speedup, seed=seed)
    engine = standard_engine()
    specs = []
    for disc in discounts:
        eng = dataclasses.replace(
            engine, cost=dataclasses.replace(engine.cost, seq_discount=disc)
        )
        specs.append(RunSpec(trace, "jaws2", eng, label=f"seq_discount:jaws2@{disc:g}"))
        specs.append(
            RunSpec(trace, "noshare", eng, label=f"seq_discount:noshare@{disc:g}")
        )
    results = sweep_run_many(specs, jobs=jobs)
    rows = []
    it = iter(results)
    for disc in discounts:
        jaws = next(it)
        noshare = next(it)
        rows.append(
            {
                "discount": disc,
                "jaws2_qps": jaws.throughput_qps,
                "noshare_qps": noshare.throughput_qps,
                "jaws2_seq_frac": jaws.disk["sequential_reads"] / max(jaws.disk["reads"], 1),
                "noshare_seq_frac": noshare.disk["sequential_reads"]
                / max(noshare.disk["reads"], 1),
            }
        )
    return {"rows": rows}


def render_urc(data: dict) -> str:
    return render_series(
        "Ablation — URC throughput gain over LRU-K vs saturation",
        data["speedups"],
        data["urc_gain"],
        "speedup",
    )


def render_seq(data: dict) -> str:
    return render_table(
        ["discount", "jaws2_qps", "noshare_qps", "jaws2_seq%", "noshare_seq%"],
        [
            (r["discount"], r["jaws2_qps"], r["noshare_qps"], r["jaws2_seq_frac"], r["noshare_seq_frac"])
            for r in data["rows"]
        ],
        title="Ablation — sequential-read discount",
    )


if __name__ == "__main__":
    print(render_urc(urc_vs_saturation()))
    print(render_seq(seq_discount()))
