"""Figure 8: distribution of jobs by execution time.

Paper: job execution times vary widely; a majority (63 %) of jobs run
for 1–30 minutes.  We report the measured distribution of job wall
times (first arrival → last completion) from replaying the standard
trace under JAWS₂, next to the pre-run estimate, bucketed exactly as
the paper's histogram.
"""

from __future__ import annotations

from repro.engine.runner import run_trace
from repro.experiments.common import ExperimentScale, standard_engine, standard_trace
from repro.experiments.report import render_table
from repro.workload.stats import (
    DURATION_BUCKETS,
    estimate_job_durations,
    job_duration_histogram,
)

#: Fractions read off the paper's Fig. 8 bars.
PAPER_FRACTIONS = {"<1min": 0.24, "1-30min": 0.63, "30min-2h": 0.09, ">2h": 0.04}


def run(scale: ExperimentScale = ExperimentScale.SMALL, speedup: float = 1.0) -> dict:
    """Returns measured and estimated per-bucket job fractions."""
    trace = standard_trace(scale, speedup=speedup)
    result = run_trace(trace, "jaws2", standard_engine())
    measured = job_duration_histogram(result.job_durations)
    estimated = job_duration_histogram(estimate_job_durations(trace))
    return {
        "measured": measured,
        "estimated": estimated,
        "paper": PAPER_FRACTIONS,
        "n_jobs": trace.n_jobs,
    }


def render(data: dict) -> str:
    rows = [
        (label, data["paper"][label], data["measured"][label], data["estimated"][label])
        for label, _, _ in DURATION_BUCKETS
    ]
    return render_table(
        ["bucket", "paper", "measured", "estimated"],
        rows,
        title=f"Fig. 8 — job execution-time distribution ({int(data['n_jobs'])} jobs)",
    )


if __name__ == "__main__":
    print(render(run()))
