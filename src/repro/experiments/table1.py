"""Table I: performance and overhead of the caching algorithms.

Paper (2 GB cache under the full JAWS stack):

=======  =========  ===========  ============
policy   cache hit  seconds/qry  overhead/qry
=======  =========  ===========  ============
LRU-K    47 %       1.62         (not meas.)
SLRU     49 %       1.56         < 1 ms
URC      54 %       1.39         7 ms
=======  =========  ===========  ============

We measure the same three columns: hit ratio and simulated
seconds-per-query from the engine, and the *real* wall-clock
bookkeeping cost of the policy code per completed query (URC's
rank maintenance is the expensive one).
"""

from __future__ import annotations

import dataclasses

from repro.experiments.common import (
    STANDARD_SPEEDUP,
    ExperimentScale,
    standard_engine,
    standard_trace,
    sweep_run_many,
)
from repro.experiments.report import render_table
from repro.parallel import RunSpec

POLICIES = ("lruk", "slru", "urc")

PAPER = {
    "lruk": {"cache_hit": 0.47, "sec_per_qry": 1.62, "overhead_ms": None},
    "slru": {"cache_hit": 0.49, "sec_per_qry": 1.56, "overhead_ms": 1.0},
    "urc": {"cache_hit": 0.54, "sec_per_qry": 1.39, "overhead_ms": 7.0},
}


def run(
    scale: ExperimentScale = ExperimentScale.SMALL,
    speedup: float = STANDARD_SPEEDUP,
    seed: int = 7,
    jobs: int = 1,
) -> dict:
    """JAWS₂ with each replacement policy on the standard trace."""
    trace = standard_trace(scale, speedup=speedup, seed=seed)
    engine = standard_engine()
    specs = [
        RunSpec(
            trace,
            "jaws2",
            dataclasses.replace(
                engine, cache=dataclasses.replace(engine.cache, policy=policy)
            ),
            label=f"table1:{policy}",
        )
        for policy in POLICIES
    ]
    results = sweep_run_many(specs, jobs=jobs)
    rows = {}
    for policy, result in zip(POLICIES, results):
        rows[policy] = {
            "cache_hit": result.cache_hit_ratio,
            "sec_per_qry": result.seconds_per_query,
            "overhead_ms": result.cache_overhead_ms_per_query,
            "throughput_qps": result.throughput_qps,
        }
    return {"rows": rows, "paper": PAPER}


def render(data: dict) -> str:
    rows = []
    for policy, v in data["rows"].items():
        p = data["paper"][policy]
        rows.append(
            (
                policy.upper(),
                v["cache_hit"],
                p["cache_hit"],
                v["sec_per_qry"],
                p["sec_per_qry"],
                v["overhead_ms"],
                p["overhead_ms"] if p["overhead_ms"] is not None else "-",
            )
        )
    return render_table(
        ["policy", "hit", "hit(paper)", "s/qry", "s/qry(paper)", "ovh_ms", "ovh(paper)"],
        rows,
        title="Table I — cache replacement algorithms under JAWS2",
    )


if __name__ == "__main__":
    print(render(run()))
