"""Figure 9: distribution of queries by time step accessed.

Paper: 70 % of queries reuse data from about a dozen time steps,
clustered at the start and end of simulation time, with a spike around
0.25–0.4 s and an overall downward trend (long jobs terminate midway).
This is a property of the workload itself, so the experiment
characterizes the generated trace directly.

Scale note: the paper's dozen steps are 1.2 % of its 1024 stored steps,
while this reproduction stores 31 steps (like the paper's 800 GB
evaluation sample), so a dozen steps is 39 % of the axis and tracking
trajectories smear popularity across a large share of bins.  The
comparable quantity is the *margin over uniform*: top-12 share well
above 12/31 ≈ 0.39, strong start/end clustering, and the downward
trend — all of which the bench asserts.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentScale, standard_spec, standard_trace
from repro.experiments.report import render_series
from repro.workload.stats import queries_per_timestep


def run(scale: ExperimentScale = ExperimentScale.SMALL) -> dict:
    """Returns the per-time-step query counts and headline shares."""
    trace = standard_trace(scale, speedup=1.0)
    counts = queries_per_timestep(trace)
    spec = standard_spec()
    total = counts.sum()
    top12 = int(min(12, len(counts)))
    top12_share = float(np.sort(counts)[::-1][:top12].sum() / total) if total else 0.0
    n = len(counts)
    edge_share = float((counts[: n // 4].sum() + counts[-(n // 4) :].sum()) / total)
    half = n // 2
    return {
        "sim_times": [round(t * spec.dt, 4) for t in range(n)],
        "counts": counts.tolist(),
        "top12_share": top12_share,
        "edge_share": edge_share,
        "first_half_share": float(counts[:half].sum() / total),
        "paper_top12_share": 0.70,
    }


def render(data: dict) -> str:
    lines = [
        render_series(
            "Fig. 9 — queries per time step", data["sim_times"], data["counts"], "sim t (s)"
        ),
        f"top-12 time-step share: measured {data['top12_share']:.2f} "
        f"(paper ~{data['paper_top12_share']:.2f})",
        f"start/end-quarter share: {data['edge_share']:.2f}; "
        f"first-half share: {data['first_half_share']:.2f} (downward trend)",
    ]
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))
