"""Shard scale law: throughput and tail latency vs coordinator count.

Replays the standard calibrated trace on a fixed-size cluster while the
coordinator is split into 1, 2, 4, ... shards
(:func:`repro.shard.run_sharded`).  The N=1 row is byte-identical to
the single-coordinator cluster engine, so the table reads as "what does
coordinating the same workload through N independent, lease-fenced
schedulers cost (or buy)": cross-shard messages replace shared-memory
gating edges, so queries spanning shard boundaries pay the virtual
message latency on completion accounting, while per-shard queues
shorten.  Reported per shard count: completed queries per virtual
second (makespan throughput), mean and p99 response time, cross-shard
message volume, and stale-lease retries (zero without failovers).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import ShardConfig
from repro.experiments.common import (
    ExperimentScale,
    standard_engine,
    standard_scheduler_config,
    standard_trace,
    sweep_supervisor,
)
from repro.experiments.report import render_table
from repro.shard import run_sharded

#: Cluster size for the sweep: divisible by every shard count below.
N_NODES = 8

SHARD_COUNTS = (1, 2, 4, 8)


def run(
    scale: ExperimentScale = ExperimentScale.SMALL,
    seed: int = 7,
    jobs: int = 1,
    crash: Optional[float] = None,
    engine_kind: str = "exact",
) -> dict:
    """Sweep shard counts over one trace.

    ``crash`` optionally injects a shard crash at that virtual time
    into every sharded row (the highest-numbered shard dies; survivors
    adopt its ranges), turning the table into a failover-overhead law.
    ``jobs`` fans each row's superstep windows over the supervised
    pool — bit-identical to serial.

    The sweep is sharded by construction, so only ``engine_kind=
    "exact"`` is executable; ``"fast"`` raises the fast engine's own
    typed :class:`~repro.errors.ConfigurationError` rather than
    silently running exact.
    """
    if engine_kind != "exact":
        from repro.engine.runner import ENGINE_KINDS
        from repro.errors import ConfigurationError
        from repro.fastengine import validate_fast_supported

        if engine_kind not in ENGINE_KINDS:
            raise ConfigurationError(
                f"unknown engine kind {engine_kind!r}; choose from {ENGINE_KINDS}"
            )
        validate_fast_supported(
            standard_engine(),
            n_nodes=N_NODES,
            shards=ShardConfig(n_shards=SHARD_COUNTS[0]),
        )
    trace = standard_trace(scale, speedup=1.0, seed=seed)
    engine = standard_engine()
    config = standard_scheduler_config()
    supervisor = sweep_supervisor()
    rows = []
    for n_shards in SHARD_COUNTS:
        crashes = ()
        if crash is not None and n_shards > 1:
            crashes = ((n_shards - 1, float(crash)),)
        out = run_sharded(
            trace,
            "jaws2",
            N_NODES,
            shards=ShardConfig(n_shards=n_shards, crashes=crashes),
            engine=engine,
            config=config,
            jobs=jobs,
            supervisor=supervisor,
        )
        result = out.result
        responses = np.asarray(result.response_times, dtype=np.float64)
        stats = out.shard_stats
        rows.append(
            {
                "shards": n_shards,
                "queries": result.n_queries,
                "makespan_s": result.makespan,
                "queries_per_s": (
                    result.n_queries / result.makespan if result.makespan else 0.0
                ),
                "mean_response_s": float(responses.mean()) if responses.size else 0.0,
                "p99_response_s": (
                    float(np.percentile(responses, 99)) if responses.size else 0.0
                ),
                "shard_messages": stats["conservation"].get("messages_sent", 0),
                "stale_retries": stats["stale_retries"],
            }
        )
    return {
        "n_nodes": N_NODES,
        "crash_at": crash,
        "rows": rows,
    }


def render(data: dict) -> str:
    headers = [
        "shards",
        "queries",
        "makespan_s",
        "q/s",
        "mean_s",
        "p99_s",
        "msgs",
        "stale",
    ]
    rows = [
        [
            row["shards"],
            row["queries"],
            row["makespan_s"],
            row["queries_per_s"],
            row["mean_response_s"],
            row["p99_response_s"],
            row["shard_messages"],
            row["stale_retries"],
        ]
        for row in data["rows"]
    ]
    suffix = (
        f", shard crash @ {data['crash_at']}s" if data["crash_at"] is not None else ""
    )
    return render_table(
        headers,
        rows,
        title=f"Shard scale law — {data['n_nodes']} nodes{suffix}",
    )


if __name__ == "__main__":
    print(render(run()))
