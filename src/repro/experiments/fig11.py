"""Figure 11: sensitivity of throughput (a) and response time (b) to
workload saturation.

Paper: as the speed-up factor grows, contention-based schedulers
(JAWS₂, LifeRaft₂) keep scaling with the extra sharing opportunities
while arrival-order schedulers (NoShare, LifeRaft₁) plateau early
(~0.3 q/s); JAWS₂ stays ahead even at low saturation thanks to
job-awareness.  For response time, NoShare is worst everywhere,
LifeRaft₂ is poor even at low saturation (it can delay queries
indefinitely), and adaptive JAWS tracks the throughput-maximizers at
high saturation while beating LifeRaft₁ at the lowest saturation.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentScale,
    standard_engine,
    standard_trace,
    sweep_run_many,
)
from repro.experiments.report import render_series
from repro.parallel import RunSpec

DEFAULT_SPEEDUPS = (1.0, 2.0, 4.0, 8.0, 16.0)
SCHEDULERS = ("noshare", "liferaft1", "liferaft2", "jaws2")


def run(
    scale: ExperimentScale = ExperimentScale.SMALL,
    speedups: tuple[float, ...] = DEFAULT_SPEEDUPS,
    seed: int = 7,
    jobs: int = 1,
) -> dict:
    """Returns throughput and mean-response-time series per scheduler.

    The full speedup × scheduler grid is independent, so ``jobs > 1``
    fans every cell across worker processes at once.
    """
    engine = standard_engine()
    specs = [
        RunSpec(
            standard_trace(scale, speedup=speedup, seed=seed),
            name,
            engine,
            label=f"fig11:{name}@x{speedup:g}",
        )
        for speedup in speedups
        for name in SCHEDULERS
    ]
    results = sweep_run_many(specs, jobs=jobs)
    throughput: dict[str, list[float]] = {s: [] for s in SCHEDULERS}
    response: dict[str, list[float]] = {s: [] for s in SCHEDULERS}
    it = iter(results)
    for _speedup in speedups:
        for name in SCHEDULERS:
            result = next(it)
            throughput[name].append(result.throughput_qps)
            response[name].append(result.mean_response_time)
    return {
        "speedups": list(speedups),
        "throughput": throughput,
        "response_time": response,
    }


def render(data: dict) -> str:
    lines = ["Fig. 11a — throughput vs saturation"]
    for name, ys in data["throughput"].items():
        lines.append(render_series(f"  {name}", data["speedups"], ys, "speedup"))
    lines.append("Fig. 11b — mean response time vs saturation")
    for name, ys in data["response_time"].items():
        lines.append(render_series(f"  {name}", data["speedups"], ys, "speedup"))
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))
