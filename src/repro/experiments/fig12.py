"""Figure 12: performance impact of the batch size k.

Paper: the optimum lies between 10 and 15; a too-small k fails to
exploit locality of reference (repeated passes over neighboring
atoms); beyond ~20 throughput degrades as the batch flushes the cache
and execution conforms less to contention; past ~50 the impact is
marginal because only above-mean atoms are candidates.  Even k = 1
beats LifeRaft₂ thanks to job-awareness.

Reproduction deviation (recorded in EXPERIMENTS.md): in this simulator
the curve is monotone — small k is never penalized — because the
Eq. 1 phi term already bubbles just-cached neighbor atoms to the top
of the ranking, so they are drained while hot even at k = 1 (the
paper's multi-pass penalty cannot occur), while per-atom re-ranking
keeps small-k execution maximally contention-conformant.  The parts
that do reproduce: degradation at large k, marginal impact past ~50
(the above-mean filter), and k = 1 beating LifeRaft₂.
"""

from __future__ import annotations

from repro.experiments.common import (
    STANDARD_SPEEDUP,
    ExperimentScale,
    standard_engine,
    standard_scheduler_config,
    standard_trace,
    sweep_run_many,
)
from repro.experiments.report import render_series
from repro.parallel import RunSpec

DEFAULT_KS = (1, 2, 5, 10, 15, 20, 30, 50, 80)


def run(
    scale: ExperimentScale = ExperimentScale.SMALL,
    ks: tuple[int, ...] = DEFAULT_KS,
    speedup: float = STANDARD_SPEEDUP,
    seed: int = 7,
    jobs: int = 1,
) -> dict:
    """JAWS₂ throughput across batch sizes, plus LifeRaft₂ reference."""
    trace = standard_trace(scale, speedup=speedup, seed=seed)
    engine = standard_engine()
    specs = [
        RunSpec(
            trace,
            "jaws2",
            engine,
            standard_scheduler_config(batch_size=int(k)),
            label=f"fig12:jaws2@k{int(k)}",
        )
        for k in ks
    ]
    specs.append(RunSpec(trace, "liferaft2", engine, label="fig12:liferaft2"))
    results = sweep_run_many(specs, jobs=jobs)
    tps = [r.throughput_qps for r in results[:-1]]
    liferaft2 = results[-1].throughput_qps
    return {"ks": list(ks), "throughput": tps, "liferaft2": liferaft2}


def render(data: dict) -> str:
    lines = [
        render_series("Fig. 12 — JAWS2 throughput vs batch size k", data["ks"], data["throughput"], "k"),
        f"LifeRaft2 reference: {data['liferaft2']:.3f} qps",
    ]
    best_k = data["ks"][max(range(len(data["ks"])), key=lambda i: data["throughput"][i])]
    lines.append(f"best k: {best_k} (paper: 10-15)")
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))
