"""Figure 10: query throughput by scheduling algorithm.

Paper (at high contention): JAWS₂ ≈ 2.6× NoShare; removing
job-awareness (JAWS₁) costs ≈ 30 %; two-level scheduling is ≈ +12 %
over LifeRaft₂; LifeRaft₂ ≈ +22 % over LifeRaft₁ from cache reuse.
"""

from __future__ import annotations

from repro.engine.runner import SCHEDULER_NAMES
from repro.experiments.common import (
    STANDARD_SPEEDUP,
    ExperimentScale,
    standard_engine,
    standard_trace,
    sweep_run_many,
)
from repro.experiments.report import render_table
from repro.parallel import RunSpec

#: Throughput of each algorithm relative to NoShare, read off Fig. 10.
PAPER_RELATIVE = {
    "noshare": 1.0,
    "liferaft1": 1.33,
    "liferaft2": 1.62,
    "jaws1": 1.82,
    "jaws2": 2.6,
}


def run(
    scale: ExperimentScale = ExperimentScale.SMALL,
    speedup: float = STANDARD_SPEEDUP,
    seed: int = 7,
    jobs: int = 1,
) -> dict:
    """Replay the standard trace under all five schedulers.

    ``jobs > 1`` fans the five runs across worker processes with
    bit-identical results (see :mod:`repro.parallel`).
    """
    trace = standard_trace(scale, speedup=speedup, seed=seed)
    engine = standard_engine()
    specs = [
        RunSpec(trace, name, engine, label=f"fig10:{name}") for name in SCHEDULER_NAMES
    ]
    results = sweep_run_many(specs, jobs=jobs)
    rows = {}
    for name, result in zip(SCHEDULER_NAMES, results):
        rows[name] = {
            "throughput_qps": result.throughput_qps,
            "mean_rt": result.mean_response_time,
            "disk_reads": result.disk["reads"],
            "cache_hit": result.cache_hit_ratio,
        }
    base = rows["noshare"]["throughput_qps"]
    for name in rows:
        rows[name]["relative"] = rows[name]["throughput_qps"] / base if base else 0.0
        rows[name]["paper_relative"] = PAPER_RELATIVE[name]
    return {"rows": rows, "n_queries": trace.n_queries}


def render(data: dict) -> str:
    rows = [
        (
            name,
            v["throughput_qps"],
            v["relative"],
            v["paper_relative"],
            v["mean_rt"],
            v["cache_hit"],
            v["disk_reads"],
        )
        for name, v in data["rows"].items()
    ]
    return render_table(
        ["scheduler", "qps", "rel", "paper_rel", "mean_rt_s", "cache_hit", "reads"],
        rows,
        title=f"Fig. 10 — query throughput by algorithm ({int(data['n_queries'])} queries)",
    )


if __name__ == "__main__":
    print(render(run()))
