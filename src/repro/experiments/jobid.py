"""§IV-A claim: heuristic job identification is "highly accurate in
practice".

We flatten the standard trace into the bare query log the front end
would see (user id, operation, time step, arrival time, position
count), run the heuristic grouping, and score pairwise
precision/recall/F1 against the generator's ground-truth job ids.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentScale, standard_trace
from repro.experiments.report import render_kv
from repro.workload.identification import (
    JobIdentifier,
    flatten_trace,
    identification_accuracy,
)


def run(scale: ExperimentScale = ExperimentScale.SMALL, seed: int = 7) -> dict:
    trace = standard_trace(scale, speedup=1.0, seed=seed)
    records = flatten_trace(trace)
    identifier = JobIdentifier()
    assignments = identifier.run(records)
    scores = identification_accuracy(records, assignments)
    scores["n_queries"] = len(records)
    scores["n_true_jobs"] = trace.n_jobs
    scores["n_predicted_jobs"] = len(set(assignments.values()))
    return scores


def render(data: dict) -> str:
    return render_kv("§IV-A — job identification accuracy", data)


if __name__ == "__main__":
    print(render(run()))
