"""End-to-end performance benchmark (`repro bench`).

Times the standard SMALL-scale run under every scheduler and emits a
machine-readable record — wall-clock seconds, dispatched events per
second, and peak RSS — seeding the repo's performance trajectory
(``BENCH_PR5.json``).  CI runs the ``--quick`` mode and fails when
wall-clock regresses more than 2x over the recorded baseline.

Wall-clock reads below are deliberate and safe: they measure the *real*
cost of simulating, feed only this report, and never touch the virtual
clock or any scheduling decision (hence the D001 suppressions).
"""

from __future__ import annotations

import dataclasses
import json
import resource
import time
from pathlib import Path
from typing import Any, Optional

from repro.engine.runner import SCHEDULER_NAMES, make_scheduler
from repro.engine.simulator import Simulator
from repro.experiments.common import (
    STANDARD_SPEEDUP,
    ExperimentScale,
    standard_engine,
    standard_params,
    standard_spec,
)
from repro.parallel import map_many
from repro.parallel.supervisor import _wall_now
from repro.workload.cache import cached_generate_trace

__all__ = ["FORMAT_VERSION", "check_regression", "run_bench", "write_report"]

FORMAT_VERSION = 1

#: CI gate: fail when a scheduler's wall-clock exceeds baseline by this.
REGRESSION_FACTOR = 2.0


def _bench_trace(scale: ExperimentScale, quick: bool):
    params = standard_params(scale)
    if quick:
        # A deterministic one-third slice of the SMALL workload: big
        # enough to exercise every scheduler phase, small enough for a
        # CI smoke job.
        params = dataclasses.replace(params, n_jobs=30, span=550.0)
    return cached_generate_trace(standard_spec(), params, speedup=STANDARD_SPEEDUP)


def _peak_rss_kb() -> int:
    # ru_maxrss is kilobytes on Linux (bytes on macOS; this repo's CI
    # and benchmarks run on Linux, where the raw value is correct).
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _noop_task(x: int) -> int:
    """Trivial worker payload for supervisor-overhead measurement
    (top-level so it pickles by reference)."""
    return x


def _bench_supervisor(quick: bool) -> dict[str, float]:
    """Measure the supervised pool's per-task dispatch cost.

    Pushes no-op tasks through the pooled salvage path (watchdog armed
    at its default heartbeat) and through the inline reference path;
    the difference, divided by the task count, is the price of
    supervision per task — the number that tells you when fan-out is
    worth it for short runs.
    """
    n = 64 if quick else 256
    items = list(range(n))
    # Reuse the supervisor's confined watchdog clock (DESIGN.md §13)
    # rather than opening another wall-clock read site in this module.
    t0 = _wall_now()
    inline = map_many(_noop_task, items, jobs=1)
    inline_wall = _wall_now() - t0
    t0 = _wall_now()
    pooled = map_many(_noop_task, items, jobs=2, salvage=True)
    pooled_wall = _wall_now() - t0
    if inline != items or not all(o.ok and o.value == i for i, o in enumerate(pooled)):
        raise RuntimeError("supervisor overhead benchmark produced wrong results")
    return {
        "tasks": float(n),
        "inline_wall_s": round(inline_wall, 4),
        "pooled_wall_s": round(pooled_wall, 4),
        "dispatch_overhead_ms_per_task": round(
            1000.0 * max(pooled_wall - inline_wall, 0.0) / n, 4
        ),
    }


def run_bench(
    scale: ExperimentScale = ExperimentScale.SMALL, quick: bool = False
) -> dict[str, Any]:
    """Run every scheduler once and measure it; returns the report dict."""
    trace = _bench_trace(scale, quick)
    engine = standard_engine()
    schedulers: dict[str, dict[str, float]] = {}
    total_wall = 0.0
    for name in SCHEDULER_NAMES:
        scheduler = make_scheduler(name, trace, engine)
        sim = Simulator(trace, [scheduler], engine)
        t0 = time.perf_counter()  # jawslint: disable=D001
        result = sim.run()
        wall = time.perf_counter() - t0  # jawslint: disable=D001
        total_wall += wall
        schedulers[name] = {
            "wall_s": round(wall, 4),
            "events": float(sim.event_index),
            "events_per_sec": round(sim.event_index / wall, 1) if wall > 0 else 0.0,
            "peak_rss_kb": float(_peak_rss_kb()),
            "throughput_qps": round(result.throughput_qps, 4),
        }
    return {
        "format": FORMAT_VERSION,
        "mode": "quick" if quick else "standard",
        "scale": scale.value,
        "n_queries": trace.n_queries,
        "total_wall_s": round(total_wall, 4),
        "schedulers": schedulers,
        # Informational (not regression-gated): what supervised fan-out
        # costs per task over the inline reference path.
        "supervisor": _bench_supervisor(quick),
    }


def write_report(report: dict[str, Any], path: Path) -> None:
    """Merge the report into ``path`` under its mode key.

    ``BENCH_*.json`` files hold one entry per mode (``standard`` and
    ``quick``) so the CI smoke run and the recorded full numbers share
    one artifact.
    """
    existing: dict[str, Any] = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except (OSError, ValueError):
            existing = {}
    existing[report["mode"]] = report
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


def check_regression(
    report: dict[str, Any], baseline_path: Path
) -> Optional[str]:
    """Compare a fresh report against a recorded baseline.

    Returns a human-readable failure message when any scheduler's
    wall-clock (or the total) regressed more than
    :data:`REGRESSION_FACTOR` over the baseline's same-mode entry;
    ``None`` when within budget or when no comparable baseline exists.
    """
    try:
        baseline_doc = json.loads(baseline_path.read_text())
    except (OSError, ValueError):
        return None
    baseline = baseline_doc.get(report["mode"])
    if not isinstance(baseline, dict):
        return None
    problems = []
    base_total = baseline.get("total_wall_s", 0.0)
    if base_total and report["total_wall_s"] > REGRESSION_FACTOR * base_total:
        problems.append(
            f"total wall-clock {report['total_wall_s']:.2f}s > "
            f"{REGRESSION_FACTOR}x baseline {base_total:.2f}s"
        )
    for name, row in report["schedulers"].items():
        base_row = baseline.get("schedulers", {}).get(name)
        if not base_row or not base_row.get("wall_s"):
            continue
        if row["wall_s"] > REGRESSION_FACTOR * base_row["wall_s"]:
            problems.append(
                f"{name}: {row['wall_s']:.2f}s > "
                f"{REGRESSION_FACTOR}x baseline {base_row['wall_s']:.2f}s"
            )
    return "; ".join(problems) if problems else None
