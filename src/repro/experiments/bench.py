"""End-to-end performance benchmark (`repro bench`).

Times the standard SMALL-scale run under every scheduler — once on the
exact engine and once on the vectorized fast engine — and emits a
machine-readable record: wall-clock seconds, dispatched events per
second, peak RSS, and the fast/exact ``speedup`` ratio, seeding the
repo's performance trajectory (``BENCH_PR5.json``,
``BENCH_PR10.json``).  CI runs the ``--quick`` mode and fails when
wall-clock regresses more than 2x over the recorded baseline — for the
exact engine *and* for the fast engine independently, so a fast-path
regression cannot hide behind a healthy exact row.

Each (scheduler, engine) measurement runs in its own spawned child
process.  That serves two purposes:

* **per-run RSS** — ``ru_maxrss`` is a process-lifetime high-water
  mark, so sampling it in one long-lived process attributes the
  largest run's footprint to every later row; a fresh child per run
  reports the true peak of that run alone;
* **cold-start honesty** — each engine pays its own import and
  allocation cost instead of inheriting warm caches from whichever
  run happened first.

Within a child the run repeats (3x standard, 1x quick) and the minimum
wall-clock is reported, damping scheduler-noise on shared machines.

Wall-clock reads below are deliberate and safe: they measure the *real*
cost of simulating, feed only this report, and never touch the virtual
clock or any scheduling decision (hence the D001 suppressions).
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import resource
import time
from pathlib import Path
from typing import Any, Optional

from repro.engine.runner import ENGINE_KINDS, SCHEDULER_NAMES, make_scheduler
from repro.engine.simulator import Simulator
from repro.experiments.common import (
    STANDARD_SPEEDUP,
    ExperimentScale,
    standard_engine,
    standard_params,
    standard_spec,
)
from repro.parallel import map_many
from repro.parallel.supervisor import _wall_now
from repro.workload.cache import cached_generate_trace
from repro.workload.trace import Trace

__all__ = ["FORMAT_VERSION", "check_regression", "run_bench", "write_report"]

#: 2 = per-scheduler rows are nested per engine kind ({"exact": {...},
#: "fast": {...}, "speedup": r}); 1 was the flat exact-only layout.
FORMAT_VERSION = 2

#: CI gate: fail when a scheduler's wall-clock exceeds baseline by this.
REGRESSION_FACTOR = 2.0


def _bench_trace(scale: ExperimentScale, quick: bool) -> Trace:
    params = standard_params(scale)
    if quick:
        # A deterministic one-third slice of the SMALL workload: big
        # enough to exercise every scheduler phase, small enough for a
        # CI smoke job.
        params = dataclasses.replace(params, n_jobs=30, span=550.0)
    return cached_generate_trace(standard_spec(), params, speedup=STANDARD_SPEEDUP)


def _peak_rss_kb() -> int:
    # ru_maxrss is kilobytes on Linux (bytes on macOS; this repo's CI
    # and benchmarks run on Linux, where the raw value is correct).
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _build_sim(trace: Trace, name: str, engine_kind: str) -> Simulator:
    engine = standard_engine()
    if engine_kind == "fast":
        from repro.fastengine import FastSimulator, make_fast_scheduler

        return FastSimulator(trace, [make_fast_scheduler(name, trace, engine)], engine)
    return Simulator(trace, [make_scheduler(name, trace, engine)], engine)


def _measure_child(
    conn: Any, scale_value: str, quick: bool, name: str, engine_kind: str,
    repeats: int,
) -> None:
    """Child-process body: run, time, report through the pipe."""
    try:
        trace = _bench_trace(ExperimentScale(scale_value), quick)
        best = float("inf")
        events = 0
        throughput = 0.0
        for _ in range(max(repeats, 1)):
            sim = _build_sim(trace, name, engine_kind)
            t0 = time.perf_counter()  # jawslint: disable=D001
            result = sim.run()
            wall = time.perf_counter() - t0  # jawslint: disable=D001
            best = min(best, wall)
            events = sim.event_index
            throughput = result.throughput_qps
        conn.send(
            {
                "wall_s": round(best, 4),
                "events": float(events),
                "events_per_sec": round(events / best, 1) if best > 0 else 0.0,
                # This child ran exactly one (scheduler, engine) pair, so
                # its high-water mark is that run's true peak.
                "peak_rss_kb": float(_peak_rss_kb()),
                "throughput_qps": round(throughput, 4),
            }
        )
    except BaseException as exc:  # noqa: BLE001 — reporting is the parent's job
        conn.send({"error": f"{type(exc).__name__}: {exc}"})
    finally:
        conn.close()


def _measure(
    scale: ExperimentScale, quick: bool, name: str, engine_kind: str, repeats: int
) -> dict[str, float]:
    """Measure one (scheduler, engine) pair in a fresh spawned process."""
    ctx = multiprocessing.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_measure_child,
        args=(child_conn, scale.value, quick, name, engine_kind, repeats),
    )
    proc.start()
    child_conn.close()
    try:
        # recv blocks until the child reports or dies (EOF on death).
        payload = parent_conn.recv()
    except EOFError:
        payload = None
    finally:
        proc.join()
        parent_conn.close()
    if not isinstance(payload, dict) or "error" in (payload or {}):
        detail = (payload or {}).get("error", f"exit code {proc.exitcode}")
        raise RuntimeError(f"bench child ({name}, {engine_kind}) failed: {detail}")
    return payload


def _noop_task(x: int) -> int:
    """Trivial worker payload for supervisor-overhead measurement
    (top-level so it pickles by reference)."""
    return x


def _bench_supervisor(quick: bool) -> dict[str, float]:
    """Measure the supervised pool's per-task dispatch cost.

    Pushes no-op tasks through the pooled salvage path (watchdog armed
    at its default heartbeat) and through the inline reference path;
    the difference, divided by the task count, is the price of
    supervision per task — the number that tells you when fan-out is
    worth it for short runs.
    """
    n = 64 if quick else 256
    items = list(range(n))
    # Reuse the supervisor's confined watchdog clock (DESIGN.md §13)
    # rather than opening another wall-clock read site in this module.
    t0 = _wall_now()
    inline = map_many(_noop_task, items, jobs=1)
    inline_wall = _wall_now() - t0
    t0 = _wall_now()
    pooled = map_many(_noop_task, items, jobs=2, salvage=True)
    pooled_wall = _wall_now() - t0
    if inline != items or not all(o.ok and o.value == i for i, o in enumerate(pooled)):
        raise RuntimeError("supervisor overhead benchmark produced wrong results")
    return {
        "tasks": float(n),
        "inline_wall_s": round(inline_wall, 4),
        "pooled_wall_s": round(pooled_wall, 4),
        "dispatch_overhead_ms_per_task": round(
            1000.0 * max(pooled_wall - inline_wall, 0.0) / n, 4
        ),
    }


def run_bench(
    scale: ExperimentScale = ExperimentScale.SMALL, quick: bool = False
) -> dict[str, Any]:
    """Benchmark every scheduler on both engines; returns the report dict.

    Per scheduler the report nests one row per engine kind plus the
    fast-over-exact ``speedup`` ratio (>1 means the fast engine won).
    ``total_wall_s`` stays the *exact*-engine sum so it remains
    comparable with format-1 baselines; the fast total is separate.
    """
    # Generate (and disk-cache) the trace once up front so no child
    # pays generation cost inside its timed region's process.
    trace = _bench_trace(scale, quick)
    repeats = 1 if quick else 3
    schedulers: dict[str, dict[str, Any]] = {}
    totals = dict.fromkeys(ENGINE_KINDS, 0.0)
    for name in SCHEDULER_NAMES:
        row: dict[str, Any] = {}
        for engine_kind in ENGINE_KINDS:
            measured = _measure(scale, quick, name, engine_kind, repeats)
            row[engine_kind] = measured
            totals[engine_kind] += measured["wall_s"]
        fast_wall = row["fast"]["wall_s"]
        row["speedup"] = (
            round(row["exact"]["wall_s"] / fast_wall, 2) if fast_wall > 0 else 0.0
        )
        schedulers[name] = row
    return {
        "format": FORMAT_VERSION,
        "mode": "quick" if quick else "standard",
        "scale": scale.value,
        "n_queries": trace.n_queries,
        "total_wall_s": round(totals["exact"], 4),
        "total_fast_wall_s": round(totals["fast"], 4),
        "schedulers": schedulers,
        # Informational (not regression-gated): what supervised fan-out
        # costs per task over the inline reference path.
        "supervisor": _bench_supervisor(quick),
    }


def write_report(report: dict[str, Any], path: Path) -> None:
    """Merge the report into ``path`` under its mode key.

    ``BENCH_*.json`` files hold one entry per mode (``standard`` and
    ``quick``) so the CI smoke run and the recorded full numbers share
    one artifact.
    """
    existing: dict[str, Any] = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except (OSError, ValueError):
            existing = {}
    existing[report["mode"]] = report
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


def _engine_walls(row: dict[str, Any]) -> dict[str, float]:
    """Per-engine wall-clock from a scheduler row, format 1 or 2.

    Format-1 rows were flat exact-engine measurements; format-2 rows
    nest one measurement dict per engine kind.
    """
    if "wall_s" in row:
        return {"exact": float(row["wall_s"])}
    walls = {}
    for kind in ENGINE_KINDS:
        measured = row.get(kind)
        if isinstance(measured, dict) and measured.get("wall_s"):
            walls[kind] = float(measured["wall_s"])
    return walls


def check_regression(
    report: dict[str, Any], baseline_path: Path
) -> Optional[str]:
    """Compare a fresh report against a recorded baseline.

    Returns a human-readable failure message when any scheduler's
    wall-clock regressed more than :data:`REGRESSION_FACTOR` over the
    baseline's same-mode entry — checked per engine kind, so the fast
    engine is gated independently of the exact one — or when the exact
    total regressed; ``None`` when within budget or when no comparable
    baseline exists.  Reads both report formats on either side, so the
    ``BENCH_PR5.json`` (format 1) gate stays valid alongside
    ``BENCH_PR10.json`` (format 2).
    """
    try:
        baseline_doc = json.loads(baseline_path.read_text())
    except (OSError, ValueError):
        return None
    baseline = baseline_doc.get(report["mode"])
    if not isinstance(baseline, dict):
        return None
    problems = []
    base_total = baseline.get("total_wall_s", 0.0)
    if base_total and report["total_wall_s"] > REGRESSION_FACTOR * base_total:
        problems.append(
            f"total wall-clock {report['total_wall_s']:.2f}s > "
            f"{REGRESSION_FACTOR}x baseline {base_total:.2f}s"
        )
    for name, row in report["schedulers"].items():
        base_row = baseline.get("schedulers", {}).get(name)
        if not isinstance(base_row, dict):
            continue
        base_walls = _engine_walls(base_row)
        for kind, wall in _engine_walls(row).items():
            base_wall = base_walls.get(kind)
            if not base_wall:
                continue
            if wall > REGRESSION_FACTOR * base_wall:
                problems.append(
                    f"{name} ({kind}): {wall:.2f}s > "
                    f"{REGRESSION_FACTOR}x baseline {base_wall:.2f}s"
                )
    return "; ".join(problems) if problems else None
