"""Central configuration objects for the JAWS reproduction.

Every tunable in the system lives in one of the frozen dataclasses here
so that experiments are fully described by a few immutable values and a
seed.  Defaults are calibrated so that the laptop-scale experiment
configurations in :mod:`repro.experiments.common` reproduce the *shape*
of the paper's results (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = [
    "CostModel",
    "CacheConfig",
    "MetricConfig",
    "SchedulerConfig",
    "EngineConfig",
]


@dataclass(frozen=True)
class CostModel:
    """Time-cost model for the simulated storage and compute substrate.

    The paper's workload-throughput metric (Eq. 1) uses two empirically
    derived constants: ``T_b``, the cost of reading one atom from disk,
    and ``T_m``, the compute cost of evaluating a single queried
    position.  Atom reads are uniform cost because atoms are equal-sized
    8 MB blocks.

    Attributes
    ----------
    t_b:
        Seconds to read one atom from disk (cold).  An 8 MB block on the
        paper's RAID-5 array lands in the tens of milliseconds.
    t_m:
        Seconds of computation per queried position (interpolation
        kernel evaluation).
    seq_discount:
        Multiplier applied to ``t_b`` when the previously read atom is
        the immediately preceding Morton code on the same time step
        (sequential read, no seek).  ``1.0`` reproduces the paper's
        uniform-cost assumption; smaller values model seek amortization
        from Morton-ordered batches.
    t_overhead:
        Fixed scheduling overhead charged per executed batch, seconds.
    """

    t_b: float = 0.04
    t_m: float = 2.0e-5
    seq_discount: float = 1.0
    t_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.t_b <= 0 or self.t_m <= 0:
            raise ValueError("t_b and t_m must be positive")
        if not 0.0 < self.seq_discount <= 1.0:
            raise ValueError("seq_discount must be in (0, 1]")
        if self.t_overhead < 0:
            raise ValueError("t_overhead must be non-negative")


@dataclass(frozen=True)
class CacheConfig:
    """Atom-cache configuration.

    The paper manages a 2 GB cache of 8 MB atoms externally to SQL
    Server, i.e. 256 atom slots.  ``protected_fraction`` applies to SLRU
    only (5–10 % in the paper); ``lruk_k`` applies to LRU-K only.
    """

    capacity_atoms: int = 256
    policy: str = "lruk"
    protected_fraction: float = 0.05
    lruk_k: int = 2

    def __post_init__(self) -> None:
        if self.capacity_atoms < 1:
            raise ValueError("capacity_atoms must be >= 1")
        if not 0.0 < self.protected_fraction < 1.0:
            raise ValueError("protected_fraction must be in (0, 1)")
        if self.lruk_k < 1:
            raise ValueError("lruk_k must be >= 1")


@dataclass(frozen=True)
class MetricConfig:
    """Configuration of the (aged) workload-throughput metric.

    Attributes
    ----------
    normalize:
        Eq. 2 mixes a throughput rate with an age in milliseconds; used
        raw, the age term dominates for any ``alpha > 0`` once queries
        have waited seconds.  With ``normalize=True`` (default) both
        terms are min–max normalized over the current candidate set so
        that ``alpha`` sweeps the full trade-off between contention
        order (``alpha=0``) and arrival order (``alpha=1``).  Set
        ``False`` for the paper's literal formula.
    age_units:
        Divisor converting engine seconds into the age units of Eq. 2
        (the paper uses milliseconds, i.e. ``0.001``).  Only meaningful
        when ``normalize=False``.
    """

    normalize: bool = True
    age_units: float = 1e-3

    def __post_init__(self) -> None:
        if self.age_units <= 0:
            raise ValueError("age_units must be positive")


@dataclass(frozen=True)
class SchedulerConfig:
    """Scheduler behaviour switches shared by LifeRaft and JAWS.

    Attributes
    ----------
    alpha:
        Initial age bias of the aged workload-throughput metric
        (Eq. 2).  ``0`` maximizes contention-ordered throughput, ``1``
        processes sub-queries in arrival order.
    adaptive_alpha:
        Enable the §V-A adaptive starvation-resistance controller
        (JAWS); LifeRaft keeps ``alpha`` fixed.
    run_length:
        Number of consecutive completed queries forming one *run* —
        the granularity of adaptive-α updates and SLRU promotion.
    batch_size:
        ``k``, the maximum number of atoms co-scheduled per time step by
        the two-level framework (paper default 15).  ``1`` disables
        two-level batching (LifeRaft schedules a single atom at a time).
    two_level:
        Select the time step by mean workload throughput before picking
        atoms (JAWS); if ``False`` atoms compete globally (LifeRaft).
    job_aware:
        Enable gated execution (§IV): align ordered jobs and co-schedule
        data-sharing queries.  ``JAWS_1`` in the paper is
        ``job_aware=False``, ``JAWS_2`` is ``True``.
    gating_max_lag:
        Maximum number of queries a job may be held back by gating
        before its gates are dropped (a liveness valve; the paper prunes
        completed queries but does not bound lag — ``None`` disables).
    metric:
        Metric configuration (normalization etc.).
    """

    alpha: float = 0.5
    adaptive_alpha: bool = False
    run_length: int = 50
    batch_size: int = 15
    two_level: bool = True
    job_aware: bool = True
    gating_max_lag: Optional[int] = None
    metric: MetricConfig = field(default_factory=MetricConfig)

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if self.run_length < 1:
            raise ValueError("run_length must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.gating_max_lag is not None and self.gating_max_lag < 1:
            raise ValueError("gating_max_lag must be >= 1 or None")

    def with_(self, **kwargs) -> "SchedulerConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class EngineConfig:
    """Discrete-event engine configuration.

    Attributes
    ----------
    cost:
        Storage/compute cost model.
    cache:
        Atom cache configuration.
    interpolation_order:
        Lagrange order of the ``interp`` operation's kernel.  With the
        production 4-voxel halo an order-8 kernel never leaves its
        atom; the default 12 models wider kernels (e.g. gradients of
        the order-8 interpolant), whose stencils near atom faces read
        neighbor atoms — the locality-of-reference path that batch
        size ``k`` exploits (§V).
    run_length:
        Completed queries per *run* — the granularity at which the
        engine emits run boundaries (adaptive α, SLRU promotion).
    max_sim_time:
        Safety bound on the virtual clock, seconds; the engine raises
        if exceeded (guards against livelock bugs in scheduler
        development).
    """

    cost: CostModel = field(default_factory=CostModel)
    cache: CacheConfig = field(default_factory=CacheConfig)
    interpolation_order: int = 12
    run_length: int = 50
    max_sim_time: float = 1e9

    def __post_init__(self) -> None:
        if self.interpolation_order < 2 or self.interpolation_order % 2:
            raise ValueError("interpolation_order must be an even integer >= 2")
        if self.run_length < 1:
            raise ValueError("run_length must be >= 1")
        if self.max_sim_time <= 0:
            raise ValueError("max_sim_time must be positive")
