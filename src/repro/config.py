"""Central configuration objects for the JAWS reproduction.

Every tunable in the system lives in one of the frozen dataclasses here
so that experiments are fully described by a few immutable values and a
seed.  Defaults are calibrated so that the laptop-scale experiment
configurations in :mod:`repro.experiments.common` reproduce the *shape*
of the paper's results (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.errors import ConfigurationError

__all__ = [
    "CostModel",
    "CacheConfig",
    "MetricConfig",
    "SchedulerConfig",
    "FaultConfig",
    "CheckpointConfig",
    "OverloadConfig",
    "ShardConfig",
    "EngineConfig",
]


@dataclass(frozen=True)
class CostModel:
    """Time-cost model for the simulated storage and compute substrate.

    The paper's workload-throughput metric (Eq. 1) uses two empirically
    derived constants: ``T_b``, the cost of reading one atom from disk,
    and ``T_m``, the compute cost of evaluating a single queried
    position.  Atom reads are uniform cost because atoms are equal-sized
    8 MB blocks.

    Attributes
    ----------
    t_b:
        Seconds to read one atom from disk (cold).  An 8 MB block on the
        paper's RAID-5 array lands in the tens of milliseconds.
    t_m:
        Seconds of computation per queried position (interpolation
        kernel evaluation).
    seq_discount:
        Multiplier applied to ``t_b`` when the previously read atom is
        the immediately preceding Morton code on the same time step
        (sequential read, no seek).  ``1.0`` reproduces the paper's
        uniform-cost assumption; smaller values model seek amortization
        from Morton-ordered batches.
    t_overhead:
        Fixed scheduling overhead charged per executed batch, seconds.
    """

    t_b: float = 0.04
    t_m: float = 2.0e-5
    seq_discount: float = 1.0
    t_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.t_b <= 0 or self.t_m <= 0:
            raise ValueError("t_b and t_m must be positive")
        if not 0.0 < self.seq_discount <= 1.0:
            raise ValueError("seq_discount must be in (0, 1]")
        if self.t_overhead < 0:
            raise ValueError("t_overhead must be non-negative")


@dataclass(frozen=True)
class CacheConfig:
    """Atom-cache configuration.

    The paper manages a 2 GB cache of 8 MB atoms externally to SQL
    Server, i.e. 256 atom slots.  ``protected_fraction`` applies to SLRU
    only (5–10 % in the paper); ``lruk_k`` applies to LRU-K only.
    """

    capacity_atoms: int = 256
    policy: str = "lruk"
    protected_fraction: float = 0.05
    lruk_k: int = 2

    def __post_init__(self) -> None:
        if self.capacity_atoms < 1:
            raise ValueError("capacity_atoms must be >= 1")
        if not 0.0 < self.protected_fraction < 1.0:
            raise ValueError("protected_fraction must be in (0, 1)")
        if self.lruk_k < 1:
            raise ValueError("lruk_k must be >= 1")


@dataclass(frozen=True)
class MetricConfig:
    """Configuration of the (aged) workload-throughput metric.

    Attributes
    ----------
    normalize:
        Eq. 2 mixes a throughput rate with an age in milliseconds; used
        raw, the age term dominates for any ``alpha > 0`` once queries
        have waited seconds.  With ``normalize=True`` (default) both
        terms are min–max normalized over the current candidate set so
        that ``alpha`` sweeps the full trade-off between contention
        order (``alpha=0``) and arrival order (``alpha=1``).  Set
        ``False`` for the paper's literal formula.
    age_units:
        Divisor converting engine seconds into the age units of Eq. 2
        (the paper uses milliseconds, i.e. ``0.001``).  Only meaningful
        when ``normalize=False``.
    """

    normalize: bool = True
    age_units: float = 1e-3

    def __post_init__(self) -> None:
        if self.age_units <= 0:
            raise ValueError("age_units must be positive")


@dataclass(frozen=True)
class SchedulerConfig:
    """Scheduler behaviour switches shared by LifeRaft and JAWS.

    Attributes
    ----------
    alpha:
        Initial age bias of the aged workload-throughput metric
        (Eq. 2).  ``0`` maximizes contention-ordered throughput, ``1``
        processes sub-queries in arrival order.
    adaptive_alpha:
        Enable the §V-A adaptive starvation-resistance controller
        (JAWS); LifeRaft keeps ``alpha`` fixed.
    run_length:
        Number of consecutive completed queries forming one *run* —
        the granularity of adaptive-α updates and SLRU promotion.
    batch_size:
        ``k``, the maximum number of atoms co-scheduled per time step by
        the two-level framework (paper default 15).  ``1`` disables
        two-level batching (LifeRaft schedules a single atom at a time).
    two_level:
        Select the time step by mean workload throughput before picking
        atoms (JAWS); if ``False`` atoms compete globally (LifeRaft).
    job_aware:
        Enable gated execution (§IV): align ordered jobs and co-schedule
        data-sharing queries.  ``JAWS_1`` in the paper is
        ``job_aware=False``, ``JAWS_2`` is ``True``.
    gating_max_lag:
        Maximum number of queries a job may be held back by gating
        before its gates are dropped (a liveness valve; the paper prunes
        completed queries but does not bound lag — ``None`` disables).
    metric:
        Metric configuration (normalization etc.).
    """

    alpha: float = 0.5
    adaptive_alpha: bool = False
    run_length: int = 50
    batch_size: int = 15
    two_level: bool = True
    job_aware: bool = True
    gating_max_lag: Optional[int] = None
    metric: MetricConfig = field(default_factory=MetricConfig)

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if self.run_length < 1:
            raise ValueError("run_length must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.gating_max_lag is not None and self.gating_max_lag < 1:
            raise ValueError("gating_max_lag must be >= 1 or None")

    def with_(self, **kwargs: Any) -> "SchedulerConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection and fault-tolerance knobs.

    The production Turbulence cluster (27 TB on RAID-5 across several
    nodes, Fig. 7) lives with disk errors, degraded arrays, and node
    outages; this config drives a seeded, deterministic
    :class:`~repro.engine.faults.FaultInjector` that reproduces those
    failure modes in the virtual timeline.  The default instance
    injects nothing and adds zero cost — the engine bypasses the fault
    path entirely when :attr:`enabled` is False.

    Attributes
    ----------
    seed:
        Seed of the injector's private RNG.  Same seed + same config +
        same trace ⇒ bit-identical results.
    transient_fault_rate:
        Probability that any single disk read attempt fails with a
        recoverable error (retried with backoff).
    permanent_loss_rate:
        Probability, decided once per (node, atom) on first read, that
        the atom is unrecoverable on that node (sub-queries fail over
        to a replica, or the query is cancelled if no replica holds it).
    slow_read_rate / slow_read_factor:
        Probability that a successful read is degraded (e.g. sector
        remapping), and the cost multiplier applied when it is.
    max_retries:
        Transient-fault retries per read before the read is abandoned
        and the sub-query re-queued/re-routed.
    backoff_base / backoff_factor / backoff_jitter:
        Exponential-backoff schedule for retries, in virtual seconds:
        delay ``i`` is ``base * factor**(i-1)``, jittered uniformly by
        ``±jitter`` (fraction).  Charged through the cost model into
        the batch duration.
    retry_budget_per_node:
        Total retries one node may spend over a whole run (``None`` =
        unbounded).  A node whose budget is exhausted fails reads on
        the first transient error.
    circuit_breaker_threshold / degraded_factor:
        After this many *consecutive* transient faults a node's disk is
        marked degraded (RAID rebuild mode) and every subsequent read
        costs ``degraded_factor`` times more.
    node_crashes:
        Deterministic crash schedule: ``(node_index, down_time,
        up_time)`` triples in virtual seconds.  While down a node
        executes nothing; its pending and in-flight sub-queries fail
        over to replicas and it rejoins routing at ``up_time``.
    query_deadline:
        Seconds a query may remain incomplete after arrival before it
        is cancelled (sub-queries pruned everywhere, gating groups
        released, an ordered job's remainder aborted).  ``None``
        disables deadlines.
    replication:
        Atom ownership copies used by cluster routing
        (:class:`~repro.cluster.partition.MortonRangePartitioner`);
        ``1`` means no failover targets for lost atoms or down nodes.
    coordinator_crash_at:
        ``coordinator_crash`` fault: abort the whole run (raising
        :class:`~repro.errors.CoordinatorCrash`) immediately before
        dispatching the event with this 0-based index — modeling the
        coordinator process dying mid-run.  Recovery goes through
        checkpoints (:class:`CheckpointConfig` and
        ``Simulator.restore``).  ``None`` disables.
    coordinator_crash_window:
        Seeded alternative to :attr:`coordinator_crash_at`: an
        ``(lo, hi)`` event-index window from which the injector draws
        the crash index once, from a dedicated ``random.Random`` stream
        derived from :attr:`seed` (so arming the crash never perturbs
        the disk-fault stream).  Ignored when
        :attr:`coordinator_crash_at` is set.
    """

    seed: int = 0
    transient_fault_rate: float = 0.0
    permanent_loss_rate: float = 0.0
    slow_read_rate: float = 0.0
    slow_read_factor: float = 4.0
    max_retries: int = 3
    backoff_base: float = 0.005
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    retry_budget_per_node: Optional[int] = None
    circuit_breaker_threshold: int = 10
    degraded_factor: float = 2.0
    node_crashes: tuple = ()
    query_deadline: Optional[float] = None
    replication: int = 1
    coordinator_crash_at: Optional[int] = None
    coordinator_crash_window: Optional[tuple] = None

    def __post_init__(self) -> None:
        for name in ("transient_fault_rate", "permanent_loss_rate", "slow_read_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.slow_read_factor < 1.0 or self.degraded_factor < 1.0:
            raise ValueError("slow_read_factor and degraded_factor must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff_base must be >= 0 and backoff_factor >= 1")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")
        if self.retry_budget_per_node is not None and self.retry_budget_per_node < 0:
            raise ValueError("retry_budget_per_node must be >= 0 or None")
        if self.circuit_breaker_threshold < 1:
            raise ValueError("circuit_breaker_threshold must be >= 1")
        if self.query_deadline is not None and self.query_deadline <= 0:
            raise ValueError("query_deadline must be positive or None")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.coordinator_crash_at is not None and self.coordinator_crash_at < 0:
            raise ValueError("coordinator_crash_at must be >= 0 or None")
        if self.coordinator_crash_window is not None:
            window = tuple(self.coordinator_crash_window)
            if len(window) != 2:
                raise ValueError("coordinator_crash_window must be (lo, hi)")
            lo, hi = window
            if int(lo) != lo or int(hi) != hi or not 0 <= lo < hi:
                raise ValueError(
                    "coordinator_crash_window must satisfy 0 <= lo < hi (integers)"
                )
            object.__setattr__(self, "coordinator_crash_window", (int(lo), int(hi)))
        # Normalize the crash schedule to a hashable tuple-of-tuples.
        crashes = tuple(tuple(c) for c in self.node_crashes)
        for crash in crashes:
            if len(crash) != 3:
                raise ValueError("node_crashes entries must be (node, down_time, up_time)")
            node, down, up = crash
            if int(node) < 0 or int(node) != node:
                raise ValueError("crash node index must be a non-negative integer")
            if not 0 <= down < up:
                raise ValueError("crash times must satisfy 0 <= down_time < up_time")
        object.__setattr__(self, "node_crashes", crashes)

    @property
    def enabled(self) -> bool:
        """True when any fault source is configured (the engine skips
        the entire injection path otherwise)."""
        return bool(
            self.transient_fault_rate > 0
            or self.permanent_loss_rate > 0
            or self.slow_read_rate > 0
            or self.node_crashes
            or self.query_deadline is not None
            or self.coordinator_crash_at is not None
            or self.coordinator_crash_window is not None
        )

    def with_(self, **kwargs: Any) -> "FaultConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class CheckpointConfig:
    """Crash-consistent checkpointing policy (DESIGN.md §8).

    When :attr:`enabled`, the engine persists a versioned snapshot of
    the complete simulation state to :attr:`directory` whenever the
    policy fires, and keeps an event-sourced write-ahead log of every
    dispatched event between snapshots.  ``Simulator.restore`` rebuilds
    the engine from the latest snapshot, replays the WAL (verifying
    each event against the log), and resumes — a resumed run is
    bit-identical to an uninterrupted same-seed run.

    Attributes
    ----------
    directory:
        Where snapshots (``snapshot-<event>.ckpt``) and WAL segments
        (``wal-<event>.log``) are written.  ``None`` disables
        checkpointing entirely.
    every_events:
        Take a snapshot every N dispatched events (``None`` = no
        event-count trigger).
    every_seconds:
        Take a snapshot every T *virtual* seconds (``None`` = no
        clock trigger).  Both triggers may be combined; a snapshot is
        taken when either fires.
    keep:
        Snapshot generations retained (older snapshot + WAL files are
        pruned).  The latest snapshot is never pruned.
    """

    directory: Optional[str] = None
    every_events: Optional[int] = None
    every_seconds: Optional[float] = None
    keep: int = 3

    def __post_init__(self) -> None:
        if self.every_events is not None and self.every_events < 1:
            raise ValueError("every_events must be >= 1 or None")
        if self.every_seconds is not None and self.every_seconds <= 0:
            raise ValueError("every_seconds must be positive or None")
        if self.keep < 1:
            raise ValueError("keep must be >= 1")
        if self.directory is not None and self.every_events is None and self.every_seconds is None:
            raise ValueError(
                "checkpointing needs a policy: set every_events and/or every_seconds"
            )

    @property
    def enabled(self) -> bool:
        """True when a directory and at least one trigger are set."""
        return self.directory is not None and (
            self.every_events is not None or self.every_seconds is not None
        )

    def with_(self, **kwargs: Any) -> "CheckpointConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ShardConfig:
    """Sharded multi-coordinator execution (:mod:`repro.shard`).

    Partitions the coordinator by Morton range into :attr:`n_shards`
    shard coordinators, each running the two-level JAWS scheduling loop
    over its slice of the cluster, composed by a deterministic virtual-
    time control plane with epoch-numbered leases on every shard's
    ranges.  The default instance (``n_shards=1``) degenerates to the
    single-coordinator engine, byte-identically.

    Attributes
    ----------
    n_shards:
        Coordinator shard count.  ``1`` runs the plain single-
        coordinator engine.
    crashes:
        Deterministic shard-crash schedule: ``(shard_index,
        crash_time)`` pairs in virtual seconds
        (:class:`~repro.engine.faults.FaultKind.SHARD_CRASH`).  A
        crashed shard never returns; its Morton-range leases fail over
        to the next surviving shard ring-wise after
        :attr:`failover_delay`, at a deterministic epoch bump.  At
        least one shard must survive the whole schedule.
    crash_window:
        Seeded alternative to :attr:`crashes`: a ``(lo, hi)``
        virtual-time window from which :attr:`n_window_crashes` crash
        points (victim shard + time) are drawn once, from a dedicated
        ``random.Random(f"{seed}:shard_crash")`` stream — arming shard
        crashes never perturbs disk-fault outcomes.  Ignored when
        :attr:`crashes` is non-empty.
    n_window_crashes:
        How many crashes to draw from :attr:`crash_window`.
    seed:
        Seed of the dedicated shard-crash stream.
    failover_delay:
        Virtual seconds between a shard crash and the moment the
        surviving successor holds its leases (detection + takeover
        cost).  The crashed domain is frozen in between; messages
        addressed to it are held and re-resolved.
    message_delay:
        Cross-shard message latency in virtual seconds — also the
        conservative lookahead of the control plane's superstep
        windows, so it must be positive.
    retry_delay:
        Extra virtual-time penalty charged when a message carrying a
        stale epoch is re-addressed to the range's new owner (the
        typed retry/timeout path).
    barrier_every_events:
        Cluster recovery-point cadence: force a consistent cut — one
        CRC-guarded snapshot per shard plus an epoch-tagged cluster
        manifest — every N cluster-wide dispatched events.  ``None``
        disables barriers (no resume possible).
    checkpoint_dir:
        Root directory for per-shard checkpoint subdirectories
        (``shard-<i>/``) and cluster manifests.  Required when
        :attr:`barrier_every_events` is set.
    halt_after_barrier:
        Testing/ops knob mirroring ``coordinator_crash_at``: abort the
        whole cluster run (raising
        :class:`~repro.errors.CoordinatorCrash`) immediately after
        writing this 1-based barrier, leaving a durable recovery point
        for ``repro resume`` to restore bit-identically.
    """

    n_shards: int = 1
    crashes: tuple = ()
    crash_window: Optional[tuple] = None
    n_window_crashes: int = 1
    seed: int = 0
    failover_delay: float = 0.05
    message_delay: float = 0.01
    retry_delay: float = 0.01
    barrier_every_events: Optional[int] = None
    checkpoint_dir: Optional[str] = None
    halt_after_barrier: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigurationError("n_shards must be >= 1")
        crashes = tuple((int(s), float(t)) for s, t in self.crashes)
        for shard, time_ in crashes:
            if not 0 <= shard < self.n_shards:
                raise ConfigurationError(
                    f"crash schedule names shard {shard} but there are "
                    f"{self.n_shards} shards"
                )
            if time_ <= 0:
                raise ConfigurationError("shard crash times must be positive")
        if len({s for s, _ in crashes}) != len(crashes):
            raise ConfigurationError("a shard can crash at most once (crash-stop)")
        if len(crashes) >= self.n_shards and crashes:
            raise ConfigurationError("at least one shard must survive the crash schedule")
        object.__setattr__(self, "crashes", crashes)
        if self.crash_window is not None:
            window = tuple(float(v) for v in self.crash_window)
            if len(window) != 2 or not 0 <= window[0] < window[1]:
                raise ConfigurationError("crash_window must satisfy 0 <= lo < hi")
            if not 1 <= self.n_window_crashes < max(self.n_shards, 2):
                raise ConfigurationError(
                    "n_window_crashes must leave at least one surviving shard"
                )
            object.__setattr__(self, "crash_window", window)
        if (self.crashes or self.crash_window is not None) and self.n_shards < 2:
            raise ConfigurationError("shard crashes need n_shards >= 2 (a survivor)")
        if self.failover_delay <= 0:
            raise ConfigurationError("failover_delay must be positive")
        if self.message_delay <= 0:
            raise ConfigurationError(
                "message_delay must be positive (it is the control plane's "
                "conservative lookahead)"
            )
        if self.retry_delay <= 0:
            raise ConfigurationError("retry_delay must be positive")
        if self.barrier_every_events is not None:
            if self.barrier_every_events < 1:
                raise ConfigurationError("barrier_every_events must be >= 1 or None")
            if self.checkpoint_dir is None:
                raise ConfigurationError("barriers need checkpoint_dir")
        if self.halt_after_barrier is not None:
            if self.halt_after_barrier < 1:
                raise ConfigurationError("halt_after_barrier must be >= 1 or None")
            if self.barrier_every_events is None:
                raise ConfigurationError("halt_after_barrier needs barrier_every_events")

    @property
    def sharded(self) -> bool:
        """True when execution actually fans out over multiple shards."""
        return self.n_shards > 1

    @property
    def crash_configured(self) -> bool:
        """True when any shard crash (explicit or seeded) is armed."""
        return bool(self.crashes) or self.crash_window is not None

    def with_(self, **kwargs: Any) -> "ShardConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Shed-policy names accepted by ``OverloadConfig.shed_policy``.
SHED_POLICIES = ("reject-newest", "low-density", "deadline")


@dataclass(frozen=True)
class OverloadConfig:
    """Overload-protection knobs (admission control, load shedding,
    brownout, weighted fair quotas — DESIGN.md §9).

    The default instance is disabled and adds zero cost: the engine
    bypasses the entire overload path when :attr:`enabled` is False.
    All control decisions run on the virtual clock with no randomness,
    so same-seed runs — including crash+resume — stay bit-identical.

    Attributes
    ----------
    enabled:
        Master switch for the overload subsystem.
    client_rate / client_burst:
        Per-client token bucket: ``client_rate`` job admissions per
        virtual second refill, up to ``client_burst`` banked tokens.
        One *job* costs one token (admission is job-granular so an
        ordered job is never half-admitted).  A client whose bucket is
        empty is rejected with ``reason="rate_limit"`` and a
        deterministic ``retry_after`` equal to the refill time of the
        missing fraction.
    max_queue_depth:
        Bounded per-node workload queue: the maximum pending sub-query
        slots (queued + gating-held) one node may hold.  An arrival
        that would overflow a node triggers the shed policy to evict
        pending work (possibly the arriving query itself).
    shed_policy:
        Victim selection among pending queries when room must be made:
        ``"reject-newest"`` drops the most recently arrived,
        ``"low-density"`` drops the lowest workload density (positions
        per touched atom — the least sharing value per unit of I/O)
        first, and ``"deadline"`` drops queries whose proportional
        deadline (``arrival + slack_factor x estimated service``,
        reusing the QoS-JAWS estimate) provably cannot be met even if
        scheduled immediately.  All policies shed lighter-weighted
        client classes first.
    slack_factor:
        Proportional-deadline multiplier for the ``"deadline"`` policy
        (same semantics as ``QoSJAWSScheduler.slack_factor``).
    control_interval:
        Virtual seconds between brownout control-loop ticks
        (``OVERLOAD_TICK`` events).
    ewma_beta:
        EWMA smoothing of the load signal: ``ewma = beta * ewma +
        (1 - beta) * sample``.  Larger = smoother, slower to react.
    target_response_time:
        Normalizer for the response-time component of the load signal;
        a smoothed response time equal to this value saturates the
        signal.  ``None`` drives brownout from queue depth alone.
    throttle_enter / throttle_exit / shed_enter / shed_exit:
        Hysteresis thresholds on the smoothed load signal (fraction of
        cluster queue capacity): NORMAL -> THROTTLED at
        ``throttle_enter``, back at ``throttle_exit``; THROTTLED ->
        SHEDDING at ``shed_enter``, back at ``shed_exit``.  In
        THROTTLED mode batch-class jobs are refused (interactive
        traffic keeps flowing); SHEDDING mode additionally sheds
        pending work down to ``shed_target`` each tick.
    shed_target:
        Queue-capacity fraction SHEDDING mode drains to at each tick.
    class_weights:
        Weighted fair quotas on pending sub-query slots per client
        class, as ``(class, weight)`` pairs.  Class ``c`` is entitled
        to ``weight_c / sum(weights)`` of cluster queue capacity; once
        global utilization reaches :attr:`quota_enforce_fraction`, a
        class over its quota has further arrivals shed
        (``reason="quota"``) so a heavy scan cannot starve point
        queries even below the shedding threshold.  Unknown classes
        get the minimum configured weight.
    quota_enforce_fraction:
        Global utilization at which fair quotas become binding
        (work-conserving below it: spare capacity is usable by any
        class).
    """

    enabled: bool = False
    client_rate: float = 4.0
    client_burst: float = 8.0
    max_queue_depth: int = 400
    shed_policy: str = "deadline"
    slack_factor: float = 25.0
    control_interval: float = 1.0
    ewma_beta: float = 0.7
    target_response_time: Optional[float] = None
    throttle_enter: float = 0.55
    throttle_exit: float = 0.35
    shed_enter: float = 0.85
    shed_exit: float = 0.60
    shed_target: float = 0.50
    class_weights: tuple = (("interactive", 6.0), ("tracking", 3.0), ("batch", 1.0))
    quota_enforce_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.client_rate <= 0 or self.client_burst < 1.0:
            raise ConfigurationError("client_rate must be > 0 and client_burst >= 1")
        if self.max_queue_depth < 1:
            raise ConfigurationError("max_queue_depth must be >= 1")
        if self.shed_policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"shed_policy must be one of {SHED_POLICIES}, got {self.shed_policy!r}"
            )
        if self.slack_factor <= 0:
            raise ConfigurationError("slack_factor must be positive")
        if self.control_interval <= 0:
            raise ConfigurationError("control_interval must be positive")
        if not 0.0 <= self.ewma_beta < 1.0:
            raise ConfigurationError("ewma_beta must be in [0, 1)")
        if self.target_response_time is not None and self.target_response_time <= 0:
            raise ConfigurationError("target_response_time must be positive or None")
        for name in (
            "throttle_enter", "throttle_exit", "shed_enter", "shed_exit", "shed_target"
        ):
            value = getattr(self, name)
            if not 0.0 < value <= 1.5:
                raise ConfigurationError(f"{name} must be in (0, 1.5]")
        if not (
            self.throttle_exit <= self.throttle_enter
            and self.shed_exit <= self.shed_enter
            and self.throttle_enter <= self.shed_enter
        ):
            raise ConfigurationError(
                "hysteresis thresholds must satisfy throttle_exit <= throttle_enter "
                "<= shed_enter and shed_exit <= shed_enter"
            )
        weights = tuple((str(c), float(w)) for c, w in self.class_weights)
        if not weights:
            raise ConfigurationError("class_weights must not be empty")
        names = [c for c, _ in weights]
        if len(set(names)) != len(names):
            raise ConfigurationError("class_weights has duplicate class names")
        if any(w <= 0 for _, w in weights):
            raise ConfigurationError("class weights must be positive")
        object.__setattr__(self, "class_weights", weights)
        if not 0.0 <= self.quota_enforce_fraction <= 1.0:
            raise ConfigurationError("quota_enforce_fraction must be in [0, 1]")

    def with_(self, **kwargs: Any) -> "OverloadConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class EngineConfig:
    """Discrete-event engine configuration.

    Attributes
    ----------
    cost:
        Storage/compute cost model.
    cache:
        Atom cache configuration.
    interpolation_order:
        Lagrange order of the ``interp`` operation's kernel.  With the
        production 4-voxel halo an order-8 kernel never leaves its
        atom; the default 12 models wider kernels (e.g. gradients of
        the order-8 interpolant), whose stencils near atom faces read
        neighbor atoms — the locality-of-reference path that batch
        size ``k`` exploits (§V).
    run_length:
        Completed queries per *run* — the granularity at which the
        engine emits run boundaries (adaptive α, SLRU promotion).
    max_sim_time:
        Safety bound on the virtual clock, seconds; the engine raises
        if exceeded (guards against livelock bugs in scheduler
        development).
    faults:
        Fault-injection configuration; the default injects nothing.
    checkpoint:
        Crash-consistent checkpointing policy
        (:class:`CheckpointConfig`); the default disables it.
    overload:
        Overload-protection configuration (:class:`OverloadConfig`):
        admission control, bounded queues, load shedding, brownout and
        fair quotas.  The default disables the entire path.
    sanitize:
        Attach the runtime simulation sanitizer
        (:class:`~repro.analysis.sanitizer.SimulationSanitizer`): after
        every event the engine asserts sub-query conservation, clock
        monotonicity, gating-graph acyclicity and workload-queue
        coherence, raising :class:`~repro.errors.InvariantViolation`
        on any breach.  Observational only — results are bit-identical
        with it on or off — but sweeps cost O(pending work) per event,
        so it is a debugging/CI tool, not a default.
    """

    cost: CostModel = field(default_factory=CostModel)
    cache: CacheConfig = field(default_factory=CacheConfig)
    interpolation_order: int = 12
    run_length: int = 50
    max_sim_time: float = 1e9
    faults: FaultConfig = field(default_factory=FaultConfig)
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    overload: OverloadConfig = field(default_factory=OverloadConfig)
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.interpolation_order < 2 or self.interpolation_order % 2:
            raise ValueError("interpolation_order must be an even integer >= 2")
        if self.run_length < 1:
            raise ValueError("run_length must be >= 1")
        if self.max_sim_time <= 0:
            raise ValueError("max_sim_time must be positive")

    def with_(self, **kwargs: Any) -> "EngineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
