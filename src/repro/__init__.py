"""JAWS: Job-Aware Workload Scheduling for the Exploration of
Turbulence Simulations — a full reproduction of the SC 2010 system.

Quick start::

    from repro import DatasetSpec, WorkloadParams, generate_trace, run_trace

    spec = DatasetSpec.small()
    trace = generate_trace(spec, WorkloadParams(n_jobs=60, seed=1))
    jaws = run_trace(trace, "jaws2")
    base = run_trace(trace, "noshare")
    print(jaws.throughput_qps / base.throughput_qps)

Subpackages
-----------
``repro.core``
    The schedulers (NoShare, LifeRaft, JAWS) and their machinery:
    workload-throughput metrics, Needleman–Wunsch job alignment, gating
    graph, two-level batching, adaptive age bias.
``repro.workload``
    Queries, jobs, traces, the calibrated synthetic generator, and the
    §IV-A job-identification heuristics.
``repro.grid`` / ``repro.morton``
    The Turbulence data model: atoms, Morton indexing, the synthetic
    turbulence field and interpolation stencils.
``repro.storage`` / ``repro.cache``
    Simulated storage: B+-tree access path, disk cost model, buffer
    cache with LRU / LRU-K / SLRU / URC replacement.
``repro.engine``
    The discrete-event simulator and result types.
``repro.recovery``
    Crash-consistent checkpointing: versioned snapshots + write-ahead
    log, deterministic resume via ``Simulator.restore``.
``repro.cluster``
    Multi-node spatial partitioning (Fig. 7).
``repro.experiments``
    Harnesses regenerating every figure and table of §VI.
"""

from repro.config import (
    CacheConfig,
    CheckpointConfig,
    CostModel,
    EngineConfig,
    FaultConfig,
    MetricConfig,
    SchedulerConfig,
)
from repro.core import (
    AdaptiveAlphaController,
    JAWSScheduler,
    LifeRaftScheduler,
    NoShareScheduler,
)
from repro.engine import FaultInjector, RunResult, Simulator, make_scheduler, run_trace
from repro.errors import (
    CoordinatorCrash,
    InvariantViolation,
    LivelockError,
    RecoveryError,
    SimTimeExceededError,
    SimulationError,
)
from repro.grid import DatasetSpec, SyntheticTurbulence
from repro.workload import Trace, WorkloadParams, generate_trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "CostModel",
    "CacheConfig",
    "MetricConfig",
    "SchedulerConfig",
    "EngineConfig",
    "FaultConfig",
    "CheckpointConfig",
    "FaultInjector",
    "SimulationError",
    "LivelockError",
    "SimTimeExceededError",
    "InvariantViolation",
    "CoordinatorCrash",
    "RecoveryError",
    "DatasetSpec",
    "SyntheticTurbulence",
    "Trace",
    "WorkloadParams",
    "generate_trace",
    "NoShareScheduler",
    "LifeRaftScheduler",
    "JAWSScheduler",
    "AdaptiveAlphaController",
    "Simulator",
    "RunResult",
    "run_trace",
    "make_scheduler",
]
