"""Deterministic parallel evaluation of independent simulation runs.

See :mod:`repro.parallel.pool` for the fan-out primitives and the
determinism argument (DESIGN.md §10), and
:mod:`repro.parallel.supervisor` for the supervised execution layer —
watchdogs, salvage outcomes, resource guards — plus
:mod:`repro.parallel.journal` for crash-resumable campaigns
(DESIGN.md §13).
"""

from repro.parallel.journal import JOURNAL_FORMAT_VERSION, CampaignJournal
from repro.parallel.pool import RunSpec, map_many, run_many, run_many_outcomes
from repro.parallel.supervisor import (
    Outcome,
    SupervisorConfig,
    TaskFailure,
    supervise,
    task_digest,
)

__all__ = [
    "JOURNAL_FORMAT_VERSION",
    "CampaignJournal",
    "Outcome",
    "RunSpec",
    "SupervisorConfig",
    "TaskFailure",
    "map_many",
    "run_many",
    "run_many_outcomes",
    "supervise",
    "task_digest",
]
