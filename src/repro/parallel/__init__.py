"""Deterministic parallel evaluation of independent simulation runs.

See :mod:`repro.parallel.pool` for the design and the determinism
argument (DESIGN.md §10).
"""

from repro.parallel.pool import RunSpec, map_many, run_many

__all__ = ["RunSpec", "map_many", "run_many"]
