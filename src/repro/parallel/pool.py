"""Deterministic process-pool fan-out for independent simulation runs.

The evaluation harness replays many independent ``(trace, scheduler,
engine, faults)`` combinations — five schedulers per figure, speedup
sweeps, cache-policy tables.  Each run is a pure function of its
:class:`RunSpec` (the engine derives every random draw from seeds
carried in the spec's configs; see DESIGN.md §7), so the runs can fan
out across worker processes with **bit-identical** results:

* *stable task ordering* — results come back in spec-list order, never
  completion order, so downstream tables are byte-for-byte identical
  to serial execution;
* *per-task seed isolation* — workers share no RNG or interpreter
  state; all randomness comes from seeds inside the pickled spec, and
  each worker rebuilds its scheduler/engine from scratch;
* *worker-crash retry* — a task whose worker dies abnormally
  (``BrokenProcessPool``) is retried in a fresh pool up to
  ``max_retries`` times, then surfaces as a typed
  :class:`~repro.errors.WorkerCrashError`.  Deterministic simulation
  errors propagate immediately — retrying them cannot succeed.

Nothing in this module may read wall-clock time or process identity
into results (enforced by jawslint rule D006).
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, TypeVar

from repro.config import EngineConfig, FaultConfig, SchedulerConfig
from repro.engine.results import RunResult
from repro.engine.runner import run_trace
from repro.errors import WorkerCrashError
from repro.workload.trace import Trace

__all__ = ["RunSpec", "map_many", "run_many"]

_T = TypeVar("_T")
_R = TypeVar("_R")


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation run: everything a worker needs.

    Attributes
    ----------
    trace:
        The workload to replay (pickled to the worker; queries carry
        their own positions, so no shared state crosses the boundary).
    scheduler:
        Factory name from :data:`repro.engine.runner.SCHEDULER_NAMES`.
    engine:
        Engine configuration; ``None`` uses :class:`EngineConfig`
        defaults.
    scheduler_config:
        Optional scheduler-knob overrides (batch size k, α policy,
        metric config).
    faults:
        Optional fault-injection plan; overrides ``engine.faults``.
    label:
        Free-form bookkeeping tag echoed back by callers (never read
        by the runner).
    """

    trace: Trace
    scheduler: str
    engine: Optional[EngineConfig] = None
    scheduler_config: Optional[SchedulerConfig] = None
    faults: Optional[FaultConfig] = None
    label: str = ""


def _execute_spec(spec: RunSpec) -> RunResult:
    """Worker entry point: run one spec to completion (top-level so it
    pickles by reference)."""
    return run_trace(
        spec.trace,
        spec.scheduler,
        engine=spec.engine,
        config=spec.scheduler_config,
        faults=spec.faults,
    )


@dataclass
class _Attempt:
    index: int
    item: Any
    tries: int = 0
    future: Optional[Future] = field(default=None, repr=False)


def map_many(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    jobs: int = 1,
    max_retries: int = 2,
) -> list[_R]:
    """Apply ``fn`` to every item and return results in item order.

    The generic fan-out primitive behind :func:`run_many` (and the fuzz
    campaign driver, :mod:`repro.fuzz.campaign`): ``fn`` must be a
    top-level callable that is a *pure function* of its pickled item —
    every random draw seeded from inside the item — so the pool path is
    bit-identical to the inline path.

    ``jobs <= 1`` runs inline in this process (no pool, no pickling) —
    the reference execution path.  ``jobs > 1`` fans out over a
    ``ProcessPoolExecutor``; results come back in submission order,
    never completion order.

    Raises
    ------
    WorkerCrashError
        When one task's worker process died abnormally more than
        ``max_retries`` times.  Deterministic exceptions raised by
        ``fn`` itself propagate immediately — retrying cannot succeed.
    """
    if jobs < 0:
        raise ValueError("jobs must be >= 0")
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]

    results: list[Optional[_R]] = [None] * len(items)
    done = [False] * len(items)
    pending = [_Attempt(i, item) for i, item in enumerate(items)]
    while pending:
        crashed: list[_Attempt] = []
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            for attempt in pending:
                attempt.tries += 1
                attempt.future = pool.submit(fn, attempt.item)
            # Collect in submission order: a broken pool fails every
            # outstanding future, and ordered collection keeps retry
            # scheduling — and therefore results — deterministic.
            for attempt in pending:
                assert attempt.future is not None
                try:
                    results[attempt.index] = attempt.future.result()
                    done[attempt.index] = True
                except BrokenProcessPool:
                    if attempt.tries > max_retries:
                        raise WorkerCrashError(
                            "parallel evaluation worker died abnormally and "
                            "exhausted its retry budget",
                            task_index=attempt.index,
                            attempts=attempt.tries,
                        ) from None
                    crashed.append(attempt)
        pending = crashed
    out: list[_R] = []
    for index, result in enumerate(results):
        assert done[index]  # every task either succeeded or raised
        out.append(result)  # type: ignore[arg-type]
    return out


def run_many(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    max_retries: int = 2,
) -> list[RunResult]:
    """Run every spec and return results in spec order.

    A thin wrapper over :func:`map_many` with :func:`_execute_spec` as
    the worker function; see there for the determinism contract.
    """
    return map_many(_execute_spec, specs, jobs=jobs, max_retries=max_retries)
