"""Deterministic process-pool fan-out for independent simulation runs.

The evaluation harness replays many independent ``(trace, scheduler,
engine, faults)`` combinations — five schedulers per figure, speedup
sweeps, cache-policy tables, fuzz campaigns.  Each run is a pure
function of its :class:`RunSpec` (the engine derives every random draw
from seeds carried in the spec's configs; see DESIGN.md §7), so the
runs can fan out across worker processes with **bit-identical**
results:

* *stable task ordering* — results come back in spec-list order, never
  completion order, so downstream tables are byte-for-byte identical
  to serial execution;
* *per-task seed isolation* — workers share no RNG or interpreter
  state; all randomness comes from seeds inside the pickled spec, and
  each worker rebuilds its scheduler/engine from scratch;
* *supervised execution* — the pool is driven by
  :mod:`repro.parallel.supervisor`: hung workers are killed by a
  watchdog and re-dispatched, crashed workers are retried with seeded
  deterministic backoff (only the dead process is respawned — healthy
  workers survive retry rounds), resource guards bound per-worker RSS
  and whole-campaign wall-clock, and in **salvage mode**
  (``salvage=True``) one poison task costs you one
  :class:`~repro.parallel.supervisor.Outcome` record instead of the
  whole campaign.

With ``salvage=False`` (the default) the historical contract holds: a
task whose worker keeps dying/hanging raises a typed
:class:`~repro.errors.WorkerCrashError` carrying the spec's label and
content digest; deterministic exceptions raised by the task function
propagate as themselves — retrying them cannot succeed.

Nothing in this module may read wall-clock time or process identity
into results (enforced by jawslint rule D006; the supervisor's
watchdog clock is confined to ``supervisor._wall_now`` and baselined).
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    List,
    Literal,
    Optional,
    Sequence,
    TypeVar,
    Union,
    cast,
    overload,
)

from repro.config import EngineConfig, FaultConfig, SchedulerConfig, ShardConfig
from repro.engine.results import RunResult
from repro.engine.runner import run_trace
from repro.errors import WorkerCrashError
from repro.parallel.supervisor import Outcome, SupervisorConfig, supervise
from repro.workload.trace import Trace

__all__ = ["RunSpec", "map_many", "run_many", "run_many_outcomes"]

_T = TypeVar("_T")
_R = TypeVar("_R")


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation run: everything a worker needs.

    Attributes
    ----------
    trace:
        The workload to replay (pickled to the worker; queries carry
        their own positions, so no shared state crosses the boundary).
    scheduler:
        Factory name from :data:`repro.engine.runner.SCHEDULER_NAMES`.
    engine:
        Engine configuration; ``None`` uses :class:`EngineConfig`
        defaults.
    scheduler_config:
        Optional scheduler-knob overrides (batch size k, α policy,
        metric config).
    faults:
        Optional fault-injection plan; overrides ``engine.faults``.
    label:
        Free-form bookkeeping tag echoed back by callers (never read
        by the runner).  Carried on failure records so a poison spec
        stays identifiable after sweeps reorder their spec lists.
    n_nodes:
        Cluster size; ``1`` replays on the single-node engine, larger
        values route through :func:`~repro.cluster.cluster.run_cluster`
        (or the sharded path when :attr:`shards` fans out).
    shards:
        Optional sharded-execution plan
        (:class:`~repro.config.ShardConfig`).  Part of the content
        digest: the shard count and range assignment change scheduling
        interleavings, so a sharded campaign can never collide with an
        unsharded one in the journal or the trace cache.
    engine_kind:
        Execution engine, from :data:`repro.engine.runner.ENGINE_KINDS`
        (``"exact"`` or ``"fast"``).  A dataclass field, so it pickles
        with the spec and is folded into :meth:`digest` automatically —
        a fast-engine campaign never aliases an exact one in the
        journal, even though supported configurations produce
        bit-identical results (that redundancy is exactly what the
        cross-validation harness checks).  Fast specs must be
        single-node and unsharded; the worker raises
        :class:`~repro.errors.ConfigurationError` otherwise.
    """

    trace: Trace
    scheduler: str
    engine: Optional[EngineConfig] = None
    scheduler_config: Optional[SchedulerConfig] = None
    faults: Optional[FaultConfig] = None
    label: str = ""
    n_nodes: int = 1
    shards: Optional[ShardConfig] = None
    engine_kind: str = "exact"

    def digest(self) -> str:
        """Stable content digest of this spec (journal/failure key).

        Hashed over the spec's pickle at a pinned protocol: the same
        logical spec — same trace content, scheduler name, configs —
        digests identically across driver restarts, which is what lets
        a resumed campaign skip completed work by content rather than
        by position.

        Cluster/sharded specs additionally fold in the explicit shard
        topology digest (shard count + range assignment), so the same
        trace scheduled under a different coordinator layout never
        aliases in the journal or trace cache.
        """
        payload = pickle.dumps(self, protocol=4)
        if self.n_nodes > 1 or self.shards is not None:
            from repro.shard.topology import ShardTopology  # avoid import cycle

            n_shards = self.shards.n_shards if self.shards is not None else 1
            payload += ShardTopology(self.n_nodes, n_shards).digest().encode("ascii")
        return hashlib.sha256(payload).hexdigest()[:12]


def _execute_spec(spec: RunSpec) -> RunResult:
    """Worker entry point: run one spec to completion (top-level so it
    pickles by reference).  Routes on the spec's cluster shape: sharded
    specs through :func:`repro.shard.run_sharded` (whose ``n_shards=1``
    degenerate case is byte-identical to the cluster path), multi-node
    specs through :func:`repro.cluster.cluster.run_cluster`, and plain
    specs through the single-node runner exactly as before."""
    if spec.engine_kind != "exact":
        from repro.engine.runner import ENGINE_KINDS
        from repro.errors import ConfigurationError
        from repro.fastengine import validate_fast_supported  # avoid import cycle

        if spec.engine_kind not in ENGINE_KINDS:
            raise ConfigurationError(
                f"unknown engine kind {spec.engine_kind!r}; "
                f"choose from {ENGINE_KINDS}"
            )
        validate_fast_supported(
            spec.engine, n_nodes=spec.n_nodes, shards=spec.shards
        )
    if spec.shards is not None:
        from repro.shard import run_sharded  # avoid import cycle

        return run_sharded(
            spec.trace,
            spec.scheduler,
            spec.n_nodes,
            shards=spec.shards,
            engine=spec.engine,
            config=spec.scheduler_config,
            faults=spec.faults,
        ).result
    if spec.n_nodes > 1:
        from repro.cluster.cluster import run_cluster

        return run_cluster(
            spec.trace,
            spec.scheduler,
            spec.n_nodes,
            engine=spec.engine,
            config=spec.scheduler_config,
            faults=spec.faults,
        ).result
    return run_trace(
        spec.trace,
        spec.scheduler,
        engine=spec.engine,
        config=spec.scheduler_config,
        faults=spec.faults,
        engine_kind=spec.engine_kind,
    )


def _raise_first_failure(outcomes: Sequence[Outcome]) -> None:
    """Raising-mode conversion: re-raise the lowest-index failure.

    Deterministic exceptions re-raise as themselves when they survived
    the pickle trip (a text-only fallback raises ``RuntimeError`` with
    the remote traceback).  Quarantined crash/hang/RSS failures raise
    :class:`~repro.errors.WorkerCrashError` with the spec's label and
    content digest.  Scanning in index order keeps the raised error
    independent of completion interleaving.
    """
    failed = next((o for o in outcomes if not o.ok), None)
    if failed is None:
        return
    failure = failed.failure
    assert failure is not None
    if failure.reason == "exception":
        if failure.exception is not None:
            raise failure.exception
        raise RuntimeError(
            f"task {failure.label!r} raised unpicklable "
            f"{failure.error_type}: {failure.message}\n{failure.traceback}"
        )
    raise WorkerCrashError(
        "parallel evaluation worker died abnormally and exhausted its "
        "retry budget"
        if failure.reason == "worker-crash"
        else (
            "parallel evaluation task exceeded its watchdog deadline and "
            "exhausted its retry budget"
            if failure.reason == "timeout"
            else "parallel evaluation worker breached the RSS ceiling and "
            "exhausted its retry budget"
        ),
        task_index=failure.index,
        attempts=failure.attempts,
        label=failure.label,
        digest=failure.digest,
        reason=failure.reason,
    )


@overload
def map_many(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    jobs: int = ...,
    max_retries: int = ...,
    *,
    salvage: Literal[False] = ...,
    supervisor: Optional[SupervisorConfig] = ...,
    on_outcome: Optional[Callable[[Outcome], None]] = ...,
) -> List[_R]: ...


@overload
def map_many(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    jobs: int = ...,
    max_retries: int = ...,
    *,
    salvage: Literal[True],
    supervisor: Optional[SupervisorConfig] = ...,
    on_outcome: Optional[Callable[[Outcome], None]] = ...,
) -> List[Outcome]: ...


def map_many(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    jobs: int = 1,
    max_retries: int = 2,
    *,
    salvage: bool = False,
    supervisor: Optional[SupervisorConfig] = None,
    on_outcome: Optional[Callable[[Outcome], None]] = None,
) -> Union[List[_R], List[Outcome]]:
    """Apply ``fn`` to every item; results come back in item order.

    The generic fan-out primitive behind :func:`run_many` (and the fuzz
    campaign driver, :mod:`repro.fuzz.campaign`): ``fn`` must be a
    top-level callable that is a *pure function* of its pickled item —
    every random draw seeded from inside the item — so the pool path is
    bit-identical to the inline path.

    ``jobs <= 1`` runs inline in this process (no pool, no pickling,
    no watchdog) — the reference execution path.  ``jobs > 1`` fans
    out over supervised worker processes
    (:func:`repro.parallel.supervisor.supervise`); pass ``supervisor``
    to arm the per-task watchdog, the RSS ceiling or the runaway
    deadline (its ``max_retries`` wins over the positional one).

    ``salvage=False`` (default) returns plain results and raises on
    the lowest-index failure; ``salvage=True`` returns ordered
    :class:`~repro.parallel.supervisor.Outcome` records — one per
    item, each a result or a typed ``TaskFailure`` — and never raises
    for task-level problems.  ``on_outcome`` fires once per settled
    task in completion order (the campaign journal hook).

    Raises
    ------
    WorkerCrashError
        Only with ``salvage=False``: a task's worker died abnormally,
        hung past the watchdog deadline, or breached the RSS ceiling
        more than its retry budget allows.  Deterministic exceptions
        raised by ``fn`` itself propagate as themselves — retrying
        them cannot succeed.
    """
    if jobs < 0:
        raise ValueError("jobs must be >= 0")
    config = supervisor or SupervisorConfig(max_retries=max_retries)
    if not salvage and jobs <= 1 and on_outcome is None:
        # Fast inline reference path: identical to a plain list
        # comprehension, raising at the first failing item.
        return [fn(item) for item in items]
    outcomes = supervise(fn, items, jobs=jobs, config=config, on_outcome=on_outcome)
    if salvage:
        return outcomes
    _raise_first_failure(outcomes)
    return [cast(_R, o.value) for o in outcomes]


def run_many(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    max_retries: int = 2,
    *,
    supervisor: Optional[SupervisorConfig] = None,
) -> List[RunResult]:
    """Run every spec and return results in spec order (raising mode).

    A thin wrapper over :func:`map_many` with :func:`_execute_spec` as
    the worker function; see there for the determinism contract.
    """
    return map_many(
        _execute_spec, specs, jobs=jobs, max_retries=max_retries, supervisor=supervisor
    )


def run_many_outcomes(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    max_retries: int = 2,
    *,
    supervisor: Optional[SupervisorConfig] = None,
    on_outcome: Optional[Callable[[Outcome], None]] = None,
) -> List[Outcome]:
    """Salvage-mode :func:`run_many`: ordered Outcome records, one per
    spec — each a :class:`~repro.engine.results.RunResult` or a typed
    ``TaskFailure`` — so one poison spec cannot sink a sweep."""
    return map_many(
        _execute_spec,
        specs,
        jobs=jobs,
        max_retries=max_retries,
        salvage=True,
        supervisor=supervisor,
        on_outcome=on_outcome,
    )
