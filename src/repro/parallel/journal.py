"""Crash-safe campaign journal: append-only, CRC-guarded, digest-keyed.

A long campaign (fuzz run, experiment sweep) records every finished
task here the moment its outcome settles, so a driver killed at *any*
point — SIGKILL included — resumes exactly where it left off: on
restart the journal is replayed, completed task digests are skipped,
and their recorded payloads are merged back in task order.  Because a
task's payload is written from its canonical JSON form and reloaded
through the same codec, a resumed campaign's summary is byte-identical
to an uninterrupted run's (asserted by ``tests/test_fuzz_resume.py``
and the CI ``interrupt-soak`` job).

File format (one record per line, like the recovery WAL —
:mod:`repro.recovery.wal`)::

    {"h": {<campaign identity>}, "v": 1}\t<crc32>\n     # header, line 1
    {"d": "<task digest>", "p": <payload JSON>}\t<crc32>\n
    ...

Torn final lines are *expected*: a SIGKILL can land mid-``write``.  A
final line without its newline (or failing its CRC) is dropped as
never-written; the task simply re-runs on resume.  Corruption anywhere
*else* — an interior CRC mismatch, an unreadable header — raises
:class:`~repro.errors.JournalError`: a journal either replays exactly
or refuses.  The header pins the campaign identity (seed, run count,
scale…); resuming with different parameters is refused rather than
silently merging unrelated results.

Nothing in this module reads wall-clock time or process identity —
records carry task digests and payloads only, so the journal adds no
nondeterminism to resumed output (jawslint D006 holds with no
suppressions).
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import IO, Any, Dict, Mapping, Optional, Tuple

from repro.errors import JournalError

__all__ = ["JOURNAL_FORMAT_VERSION", "CampaignJournal"]

#: Bump on incompatible record-format change.
JOURNAL_FORMAT_VERSION = 1


def _format_line(body_obj: Mapping[str, Any]) -> str:
    body = json.dumps(body_obj, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{body}\t{crc:08x}\n"


def _parse_line(line: str, lineno: int, name: str) -> Dict[str, Any]:
    body, sep, crc_text = line.rpartition("\t")
    if not sep:
        raise JournalError(f"corrupt journal {name}:{lineno}: missing CRC field")
    try:
        crc = int(crc_text, 16)
    except ValueError:
        raise JournalError(
            f"corrupt journal {name}:{lineno}: unparsable CRC {crc_text!r}"
        ) from None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != crc:
        raise JournalError(f"corrupt journal {name}:{lineno}: CRC mismatch")
    try:
        fields = json.loads(body)
    except json.JSONDecodeError as exc:
        raise JournalError(f"corrupt journal {name}:{lineno}: {exc}") from exc
    if not isinstance(fields, dict):
        raise JournalError(f"corrupt journal {name}:{lineno}: record is not an object")
    return fields


class CampaignJournal:
    """One campaign's append-only outcome journal.

    Use :meth:`open` to create-or-resume; it returns the journal plus
    every durably recorded ``digest -> payload`` mapping.  Call
    :meth:`append` as each task settles (the campaign hooks this to the
    supervisor's ``on_outcome`` callback) and :meth:`close` when done.
    Each record is flushed on write, so it is durable the instant
    ``append`` returns even if the driver is SIGKILLed next.
    """

    def __init__(self, path: Path, fh: IO[str]) -> None:
        self.path = path
        self._fh: Optional[IO[str]] = fh

    # -- construction --------------------------------------------------------
    @classmethod
    def open(
        cls, path: Path, meta: Mapping[str, Any]
    ) -> Tuple["CampaignJournal", Dict[str, Any]]:
        """Create ``path`` (writing its header) or resume it.

        Returns ``(journal, completed)`` where ``completed`` maps each
        durably recorded task digest to its payload.  On resume the
        existing header must equal ``meta`` exactly; a mismatch raises
        :class:`~repro.errors.JournalError` (the journal belongs to a
        different campaign).
        """
        path = Path(path)
        if path.exists() and path.stat().st_size > 0:
            completed = cls._replay(path, dict(meta))
            fh = path.open("a", encoding="utf-8", newline="")
            return cls(path, fh), completed
        path.parent.mkdir(parents=True, exist_ok=True)
        fh = path.open("w", encoding="utf-8", newline="")
        fh.write(_format_line({"h": dict(meta), "v": JOURNAL_FORMAT_VERSION}))
        fh.flush()
        return cls(path, fh), {}

    @staticmethod
    def _replay(path: Path, meta: Dict[str, Any]) -> Dict[str, Any]:
        text = path.read_text(encoding="utf-8")
        lines = text.split("\n")
        # A torn final record (SIGKILL mid-write) is dropped as
        # never-written; with a trailing newline the final element is
        # an empty string and nothing is dropped.
        torn = lines.pop() if lines else ""
        records = []
        for lineno, line in enumerate(lines, start=1):
            records.append(_parse_line(line, lineno, path.name))
        if torn:
            try:
                records.append(_parse_line(torn, len(lines) + 1, path.name))
            except JournalError:
                pass  # torn tail: the in-flight record was never durable
        if not records:
            raise JournalError(f"journal {path.name} has no readable header")
        header = records[0]
        if "h" not in header:
            raise JournalError(f"journal {path.name}: first record is not a header")
        version = int(header.get("v", 0))
        if version != JOURNAL_FORMAT_VERSION:
            raise JournalError(
                f"journal {path.name} has format {version}; this build "
                f"reads format {JOURNAL_FORMAT_VERSION}"
            )
        if header["h"] != meta:
            raise JournalError(
                f"journal {path.name} belongs to a different campaign "
                f"(recorded {header['h']!r}, resuming {meta!r}); refusing "
                "to merge unrelated results — use a fresh journal path"
            )
        completed: Dict[str, Any] = {}
        for record in records[1:]:
            if "d" not in record or "p" not in record:
                raise JournalError(
                    f"journal {path.name}: malformed task record {record!r}"
                )
            completed[str(record["d"])] = record["p"]  # duplicate: last wins
        return completed

    # -- writing -------------------------------------------------------------
    def append(self, digest: str, payload: Any) -> None:
        """Durably record one settled task (flushed before returning).

        ``payload`` must be JSON-serializable and must round-trip to
        the exact value the campaign would have produced live — that
        equivalence is what makes resumed summaries byte-identical.
        """
        if self._fh is None:
            raise JournalError(f"journal {self.path.name} is closed")
        self._fh.write(_format_line({"d": digest, "p": payload}))
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
