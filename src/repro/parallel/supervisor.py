"""Supervised execution: watchdogs, salvage, guards, crash resilience.

:func:`supervise` is the execution core under
:func:`repro.parallel.map_many`: it fans tasks out over a pool of
long-lived worker processes and — unlike a bare
``ProcessPoolExecutor`` — keeps long campaigns alive through the three
failure modes that would otherwise sink them (DESIGN.md §13):

*Hangs.*  Each in-flight task carries a wall-clock deadline
(``SupervisorConfig.task_timeout``).  The supervisor heartbeat checks
deadlines every ``heartbeat`` seconds; an overdue worker is SIGKILLed
and its task re-dispatched to a fresh worker.  A task that keeps
hanging exhausts its retry budget and is *quarantined* — surfaced as a
typed :class:`TaskFailure` instead of blocking the campaign forever.

*Poison tasks.*  A task whose worker dies abnormally (segfault, OOM
kill, ``os._exit``) is retried up to ``max_retries`` times with
seeded deterministic backoff, then quarantined.  Only the dead worker
is respawned; healthy workers keep their processes (and their warm
interpreter state) across retry rounds.  Deterministic exceptions
raised by the task function itself are never retried — re-running a
pure function cannot change its answer — and become ``TaskFailure``
records immediately.

*Resource blowups.*  An in-flight worker whose resident set exceeds
``rss_limit_mb`` is killed before it can take the machine down, and
the task consumes one retry.  A campaign that overruns
``runaway_deadline`` wall-clock seconds degrades gracefully: the pool
is torn down, a typed :class:`~repro.errors.SupervisorDegradedWarning`
is issued, and the remaining tasks run serially in this process so the
campaign still completes (without per-task watchdogs — serial
execution cannot kill its own caller).

Every task completes exactly once, as an ordered :class:`Outcome` —
either a result or a ``TaskFailure`` carrying the task's label,
content digest, attempt count, failure reason and traceback.  The
``on_outcome`` callback fires in completion order, which is what the
campaign journal (:mod:`repro.parallel.journal`) hooks to make
campaigns crash-resumable.

Wall-clock containment (jawslint D001/D006/D300, baselined in
``jawslint-baseline.json``): real time is read in exactly one place,
:func:`_wall_now`, and used only for watchdog deadlines, backoff
scheduling and the runaway guard — *supervision* decisions about when
to kill and when to retry.  Nothing time-derived is ever stored in an
:class:`Outcome`, so salvaged results remain bit-identical to inline
execution; attempt counts reflect real-world faults only and are 1 in
any fault-free run.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import random
import time
import traceback
import warnings
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import SupervisorDegradedWarning

__all__ = [
    "Outcome",
    "SupervisorConfig",
    "TaskFailure",
    "supervise",
    "task_digest",
]

_T = TypeVar("_T")

#: Failure reasons a :class:`TaskFailure` can carry.
FAILURE_REASONS = ("exception", "timeout", "worker-crash", "rss-limit")

#: Pickle protocol pinned for stable content digests across processes.
_DIGEST_PICKLE_PROTOCOL = 4


def _wall_now() -> float:
    """The supervisor's single wall-clock read (monotonic seconds).

    Deadlines, backoff release times and the runaway guard all derive
    from this value; it never reaches an :class:`Outcome`.
    """
    return time.monotonic()  # jawslint: disable=D001,D006 - the one confined watchdog clock (DESIGN.md §13); feeds deadlines/backoff only, never Outcomes


def task_digest(item: Any) -> str:
    """Stable content digest of one task item.

    Items that know their own canonical identity (``digest()`` method —
    :class:`~repro.fuzz.spec.ScenarioSpec`,
    :class:`~repro.parallel.pool.RunSpec`) are asked directly;
    everything else is hashed over its pickle at a pinned protocol.
    The digest keys the campaign journal, so it must be identical
    across driver restarts for the same logical task.
    """
    method = getattr(item, "digest", None)
    if callable(method):
        return str(method())
    payload = pickle.dumps(item, protocol=_DIGEST_PICKLE_PROTOCOL)
    return hashlib.sha256(payload).hexdigest()[:12]


def task_label(item: Any, index: int) -> str:
    """Human-facing tag for one task: its ``label`` attribute when it
    has a non-empty one, else ``task-<index>``."""
    label = getattr(item, "label", "")
    return str(label) if label else f"task-{index}"


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision policy knobs.

    Attributes
    ----------
    task_timeout:
        Per-task wall-clock budget in seconds; an in-flight task past
        its deadline has its worker killed and is re-dispatched.
        ``None`` disables the watchdog (the pre-supervisor behavior).
    heartbeat:
        Supervision poll interval in seconds: how often deadlines,
        worker liveness and RSS are checked while waiting for results.
    max_retries:
        How many *additional* attempts a crashed/timed-out/oversized
        task gets before quarantine (total attempts =
        ``max_retries + 1``).
    rss_limit_mb:
        Per-worker resident-set ceiling in MiB, polled from
        ``/proc/<pid>/statm`` every heartbeat; ``None`` disables the
        guard (and on platforms without ``/proc`` it is inert).
    runaway_deadline:
        Whole-campaign wall-clock budget in seconds.  When exceeded,
        the pool is torn down and the remaining tasks run serially with
        a :class:`~repro.errors.SupervisorDegradedWarning`.  ``None``
        disables the guard.
    backoff_seed / backoff_base / backoff_cap:
        Deterministic retry backoff: attempt ``n`` of a task waits
        ``min(cap, base * 2**(n-1)) * u`` seconds where ``u`` is drawn
        from ``Random(f"{seed}:{digest}:{n}")`` — per-task and
        per-attempt, so the delays are reproducible regardless of
        completion interleaving.
    """

    task_timeout: Optional[float] = None
    heartbeat: float = 0.05
    max_retries: int = 2
    rss_limit_mb: Optional[float] = None
    runaway_deadline: Optional[float] = None
    backoff_seed: int = 0
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        if self.heartbeat <= 0:
            raise ValueError("heartbeat must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.rss_limit_mb is not None and self.rss_limit_mb <= 0:
            raise ValueError("rss_limit_mb must be positive (or None)")
        if self.runaway_deadline is not None and self.runaway_deadline < 0:
            raise ValueError("runaway_deadline must be >= 0 (or None)")
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise ValueError("need 0 <= backoff_base <= backoff_cap")

    def backoff(self, digest: str, attempt: int) -> float:
        """Deterministic delay before re-dispatching ``digest``'s
        attempt number ``attempt`` (1-based count of completed tries)."""
        if self.backoff_base == 0.0:
            return 0.0
        ceiling = min(self.backoff_cap, self.backoff_base * 2 ** max(attempt - 1, 0))
        jitter = random.Random(f"{self.backoff_seed}:{digest}:{attempt}").uniform(0.5, 1.0)
        return ceiling * jitter


@dataclass(frozen=True)
class TaskFailure:
    """Typed record of one task that could not produce a result.

    Carried inside an :class:`Outcome` (salvage mode) or rendered into
    a :class:`~repro.errors.WorkerCrashError` (raising mode).  The
    original exception object rides along for raising mode when it
    survived pickling; it is excluded from :meth:`to_json`.
    """

    index: int
    label: str
    digest: str
    reason: str  # one of FAILURE_REASONS
    attempts: int
    error_type: str = ""
    message: str = ""
    traceback: str = ""
    exception: Optional[BaseException] = field(
        default=None, repr=False, compare=False
    )

    def to_json(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "label": self.label,
            "digest": self.digest,
            "reason": self.reason,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
        }

    def describe(self) -> str:
        core = f"task {self.label!r} ({self.digest}) {self.reason} after {self.attempts} attempt(s)"
        if self.error_type:
            return f"{core}: {self.error_type}: {self.message}"
        return core


@dataclass(frozen=True)
class Outcome:
    """One task's terminal state: a value or a typed failure, never both."""

    index: int
    label: str
    digest: str
    value: Any = None
    failure: Optional[TaskFailure] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.failure is None


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------
def _encode_error(
    exc: BaseException,
) -> Tuple[Optional[BaseException], str, str, str]:
    """(picklable-exception-or-None, type name, message, traceback)."""
    tb = traceback.format_exc()
    carried: Optional[BaseException] = exc
    try:
        pickle.dumps(exc)
    except Exception:  # noqa: BLE001 - any pickling failure degrades to text
        carried = None
    return carried, type(exc).__name__, str(exc), tb


def _worker_main(fn: Callable[[Any], Any], conn: Connection) -> None:
    """Worker loop: receive ``(index, item)``, run ``fn``, send back
    ``("ok", index, value)`` or ``("err", index, encoded-error)``.

    Top-level so it works under every multiprocessing start method.
    A ``None`` message (or a closed pipe) is the shutdown signal.
    """
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        index, item = msg
        try:
            value = fn(item)
            payload: Tuple[Any, ...] = ("ok", index, value)
        except BaseException as exc:  # noqa: BLE001 - every failure is data
            payload = ("err", index, _encode_error(exc))
        try:
            conn.send(payload)
        except Exception as exc:  # noqa: BLE001 - e.g. unpicklable result
            conn.send(("err", index, _encode_error(exc)))


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------
@dataclass
class _Task:
    index: int
    item: Any
    label: str
    digest: str
    tries: int = 0  # completed attempts
    not_before: float = 0.0  # wall time gate for the next dispatch


class _Worker:
    """One supervised worker process plus its duplex pipe."""

    def __init__(self, fn: Callable[[Any], Any]) -> None:
        ctx = multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main, args=(fn, child_conn), daemon=True
        )
        self.proc.start()
        child_conn.close()
        self.conn: Connection = parent_conn
        self.task: Optional[_Task] = None
        self.deadline: Optional[float] = None

    def assign(self, task: _Task, timeout: Optional[float], now: float) -> None:
        task.tries += 1
        self.task = task
        self.deadline = now + timeout if timeout is not None else None
        self.conn.send((task.index, task.item))

    def finish_task(self) -> None:
        self.task = None
        self.deadline = None

    @property
    def alive(self) -> bool:
        return self.proc.exitcode is None

    def rss_kb(self) -> Optional[int]:
        """Resident set of the worker in KiB via ``/proc`` (Linux);
        ``None`` where unreadable — the RSS guard is then inert."""
        try:
            with open(f"/proc/{self.proc.pid}/statm", encoding="ascii") as fh:
                fields = fh.read().split()
            pages = int(fields[1])
            return pages * (os.sysconf("SC_PAGE_SIZE") // 1024)
        except (OSError, IndexError, ValueError):
            return None

    def kill(self) -> None:
        """Hard-stop the worker (watchdog / guard path)."""
        try:
            if self.alive:
                self.proc.kill()
            self.proc.join(timeout=5.0)
        finally:
            self.conn.close()

    def shutdown(self) -> None:
        """Graceful stop for an idle worker."""
        try:
            self.conn.send(None)
        except (OSError, ValueError):
            pass
        self.proc.join(timeout=2.0)
        if self.alive:
            self.proc.kill()
            self.proc.join(timeout=5.0)
        self.conn.close()


def _run_inline(
    fn: Callable[[_T], Any],
    tasks: Sequence[_Task],
    on_outcome: Optional[Callable[[Outcome], None]],
    outcomes: dict[int, Outcome],
) -> None:
    """Serial fallback/reference path: no pool, no watchdog."""
    for task in tasks:
        task.tries += 1
        try:
            value = fn(task.item)
        except Exception as exc:  # noqa: BLE001 - every failure is data
            carried, error_type, message, tb = _encode_error(exc)
            outcome = Outcome(
                index=task.index,
                label=task.label,
                digest=task.digest,
                failure=TaskFailure(
                    index=task.index,
                    label=task.label,
                    digest=task.digest,
                    reason="exception",
                    attempts=task.tries,
                    error_type=error_type,
                    message=message,
                    traceback=tb,
                    exception=carried,
                ),
                attempts=task.tries,
            )
        else:
            outcome = Outcome(
                index=task.index,
                label=task.label,
                digest=task.digest,
                value=value,
                attempts=task.tries,
            )
        outcomes[task.index] = outcome
        if on_outcome is not None:
            on_outcome(outcome)


def supervise(
    fn: Callable[[_T], Any],
    items: Sequence[_T],
    jobs: int = 1,
    config: Optional[SupervisorConfig] = None,
    on_outcome: Optional[Callable[[Outcome], None]] = None,
) -> List[Outcome]:
    """Run ``fn`` over every item under supervision; ordered outcomes.

    ``jobs <= 1`` (or a single item) runs serially in this process —
    the bit-identity reference path, with no watchdog (a serial task
    cannot be killed without killing the caller).  ``jobs > 1`` fans
    out over supervised worker processes; see the module docstring for
    the failure-handling contract.  ``on_outcome`` fires once per task
    in *completion* order (the returned list is in *item* order).
    """
    if jobs < 0:
        raise ValueError("jobs must be >= 0")
    cfg = config or SupervisorConfig()
    tasks = [
        _Task(index=i, item=item, label=task_label(item, i), digest=task_digest(item))
        for i, item in enumerate(items)
    ]
    outcomes: dict[int, Outcome] = {}
    if jobs <= 1 or len(tasks) <= 1:
        _run_inline(fn, tasks, on_outcome, outcomes)
        return [outcomes[i] for i in range(len(tasks))]

    pending: List[_Task] = list(tasks)  # kept in index order
    workers: List[_Worker] = [
        _Worker(fn) for _ in range(min(jobs, len(tasks)))
    ]
    started = _wall_now()

    def settle(outcome: Outcome) -> None:
        outcomes[outcome.index] = outcome
        if on_outcome is not None:
            on_outcome(outcome)

    def quarantine(task: _Task, reason: str) -> None:
        settle(
            Outcome(
                index=task.index,
                label=task.label,
                digest=task.digest,
                failure=TaskFailure(
                    index=task.index,
                    label=task.label,
                    digest=task.digest,
                    reason=reason,
                    attempts=task.tries,
                ),
                attempts=task.tries,
            )
        )

    def retry_or_quarantine(task: _Task, reason: str, now: float) -> None:
        if task.tries > cfg.max_retries:
            quarantine(task, reason)
            return
        task.not_before = now + cfg.backoff(task.digest, task.tries)
        # Reinsert in index order so dispatch stays deterministic.
        at = 0
        while at < len(pending) and pending[at].index < task.index:
            at += 1
        pending.insert(at, task)

    def fail_worker(worker: _Worker, reason: str, now: float) -> _Worker:
        """Kill ``worker``, reschedule its task, return a replacement.

        Only the dead worker is replaced — the rest of the pool (and
        its warm processes) survives the retry round.
        """
        task = worker.task
        worker.kill()
        if task is not None:
            retry_or_quarantine(task, reason, now)
        return _Worker(fn)

    degraded = False
    try:
        while len(outcomes) < len(tasks):
            now = _wall_now()
            if (
                cfg.runaway_deadline is not None
                and now - started > cfg.runaway_deadline
            ):
                degraded = True
                break

            # Dispatch: idle workers take the lowest-index ready task.
            for worker in workers:
                if worker.task is not None or not worker.alive:
                    continue
                ready = next(
                    (t for t in pending if t.not_before <= now), None
                )
                if ready is None:
                    break
                pending.remove(ready)
                try:
                    worker.assign(ready, cfg.task_timeout, now)
                except (OSError, ValueError):
                    # The pipe died between liveness check and send:
                    # treat as a worker crash (the attempt was charged).
                    idx = workers.index(worker)
                    workers[idx] = fail_worker(worker, "worker-crash", now)

            # Collect: wait up to one heartbeat for any busy worker.
            busy = [w for w in workers if w.task is not None]
            if not busy and not pending:
                break  # everything settled
            if busy:
                readable = _connection_wait(
                    [w.conn for w in busy], timeout=cfg.heartbeat
                )
            else:
                # All remaining tasks are in backoff; sleep to release.
                gate = min(t.not_before for t in pending)
                time.sleep(min(max(gate - now, 0.0), cfg.heartbeat))
                readable = []
            for conn in readable:
                worker = next(w for w in workers if w.conn is conn)
                task = worker.task
                assert task is not None
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    idx = workers.index(worker)
                    workers[idx] = fail_worker(worker, "worker-crash", _wall_now())
                    continue
                kind, index, payload = message
                assert index == task.index
                worker.finish_task()
                if kind == "ok":
                    settle(
                        Outcome(
                            index=task.index,
                            label=task.label,
                            digest=task.digest,
                            value=payload,
                            attempts=task.tries,
                        )
                    )
                else:
                    # Deterministic failure: never retried.
                    carried, error_type, message_text, tb = payload
                    settle(
                        Outcome(
                            index=task.index,
                            label=task.label,
                            digest=task.digest,
                            failure=TaskFailure(
                                index=task.index,
                                label=task.label,
                                digest=task.digest,
                                reason="exception",
                                attempts=task.tries,
                                error_type=error_type,
                                message=message_text,
                                traceback=tb,
                                exception=carried,
                            ),
                            attempts=task.tries,
                        )
                    )

            # Watchdog sweep: liveness, deadlines, RSS ceiling.
            now = _wall_now()
            for idx, worker in enumerate(workers):
                if worker.task is None:
                    if not worker.alive:
                        # An idle worker died (e.g. interpreter abort):
                        # replace it so capacity is preserved.
                        worker.kill()
                        workers[idx] = _Worker(fn)
                    continue
                if not worker.alive:
                    workers[idx] = fail_worker(worker, "worker-crash", now)
                elif worker.deadline is not None and now > worker.deadline:
                    workers[idx] = fail_worker(worker, "timeout", now)
                elif cfg.rss_limit_mb is not None:
                    rss = worker.rss_kb()
                    if rss is not None and rss > cfg.rss_limit_mb * 1024:
                        workers[idx] = fail_worker(worker, "rss-limit", now)
    finally:
        for worker in workers:
            if worker.task is not None or not worker.alive:
                worker.kill()
            else:
                worker.shutdown()

    if degraded:
        remaining = [t for t in tasks if t.index not in outcomes]
        warnings.warn(
            SupervisorDegradedWarning(
                f"campaign exceeded its runaway deadline "
                f"({cfg.runaway_deadline:.6g}s); degrading to serial "
                f"execution for the remaining {len(remaining)} task(s) "
                "(no per-task watchdog on the serial path)"
            ),
            stacklevel=2,
        )
        _run_inline(fn, remaining, on_outcome, outcomes)

    return [outcomes[i] for i in range(len(tasks))]
