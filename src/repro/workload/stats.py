"""Workload characterization (paper §VI-A, Figs. 8–9)."""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.workload.trace import Trace

__all__ = [
    "DURATION_BUCKETS",
    "job_duration_histogram",
    "estimate_job_durations",
    "queries_per_timestep",
    "workload_summary",
]

#: Fig. 8's execution-time buckets, in seconds: under a minute,
#: 1–30 minutes, 30 minutes–2 hours, over 2 hours.
DURATION_BUCKETS: tuple[tuple[str, float, float], ...] = (
    ("<1min", 0.0, 60.0),
    ("1-30min", 60.0, 1800.0),
    ("30min-2h", 1800.0, 7200.0),
    (">2h", 7200.0, float("inf")),
)


def job_duration_histogram(durations: Mapping[int, float]) -> dict[str, float]:
    """Fraction of jobs per Fig. 8 bucket, from measured durations.

    ``durations`` maps job id to wall-clock execution time in engine
    seconds (first arrival to last completion).
    """
    values = np.asarray(list(durations.values()), dtype=np.float64)
    if len(values) == 0:
        return {label: 0.0 for label, _, _ in DURATION_BUCKETS}
    return {
        label: float(np.mean((values >= lo) & (values < hi)))
        for label, lo, hi in DURATION_BUCKETS
    }


def estimate_job_durations(trace: Trace, exec_time_estimate: float = 1.5) -> dict[int, float]:
    """Pre-run duration estimate: queries × (service + think time).

    Used for trace characterization before any scheduler runs; the
    Fig. 8 bench reports both this estimate and measured durations.
    """
    out: dict[int, float] = {}
    for job in trace.jobs:
        per_query = exec_time_estimate + (job.think_time if job.is_ordered else 0.0)
        out[job.job_id] = job.n_queries * per_query
    return out


def queries_per_timestep(trace: Trace) -> np.ndarray:
    """Query count per stored time step (the Fig. 9 series)."""
    counts = np.zeros(trace.spec.n_timesteps, dtype=np.int64)
    for job in trace.jobs:
        for q in job.queries:
            counts[q.timestep] += 1
    return counts


def _top_share(counts: np.ndarray, top_n: int) -> float:
    """Fraction of queries hitting the ``top_n`` most popular steps."""
    total = counts.sum()
    if total == 0:
        return 0.0
    return float(np.sort(counts)[::-1][:top_n].sum() / total)


def workload_summary(trace: Trace) -> dict[str, float]:
    """Headline characterization numbers the paper reports in §VI-A."""
    n_queries = trace.n_queries
    in_jobs = sum(j.n_queries for j in trace.jobs if j.n_queries > 1)
    single_ts = sum(1 for j in trace.jobs if len(j.timesteps) == 1)
    counts = queries_per_timestep(trace)
    top12 = min(12, trace.spec.n_timesteps)
    return {
        "n_jobs": float(trace.n_jobs),
        "n_queries": float(n_queries),
        "n_positions": float(trace.n_positions),
        "frac_queries_in_jobs": in_jobs / n_queries if n_queries else 0.0,
        "frac_jobs_single_timestep": single_ts / trace.n_jobs if trace.n_jobs else 0.0,
        "top12_timestep_query_share": _top_share(counts, top12),
        "mean_queries_per_job": n_queries / trace.n_jobs if trace.n_jobs else 0.0,
    }
