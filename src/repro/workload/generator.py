"""Synthetic Turbulence workload generator.

Stands in for the paper's SQL-log trace (50 k queries / ~1 k jobs from
the week of 2009-07-20).  The generator is calibrated to the workload
characterization of §VI-A:

* over 95 % of queries belong to multi-query jobs;
* ~88 % of jobs access a single time step, while a small fraction of
  long tracking jobs iterate over a large share of all time steps and
  dominate query count;
* job execution times are heavy-tailed, with a 1–30-minute majority
  (Fig. 8);
* time-step popularity is clustered at the start and end of simulation
  time with a mid-span spike and an overall downward trend (Fig. 9) —
  long jobs that "iterate over all time terminate midway";
* arrivals are bursty: users submit *campaigns* of related jobs close
  together, which is also what creates the inter-job data sharing that
  gated execution exploits.

All randomness flows from a single seed; traces are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.dataset import DatasetSpec
from repro.grid.field import SyntheticTurbulence, advect_positions
from repro.workload.job import Job, JobKind
from repro.workload.query import Query
from repro.workload.trace import Trace

__all__ = ["WorkloadParams", "FlashCrowdParams", "generate_trace", "inject_flash_crowd"]


@dataclass(frozen=True)
class WorkloadParams:
    """Knobs of the synthetic workload.

    Fractions are of *jobs*; because tracking/batched jobs contain many
    queries, the query-level job share lands above 95 % as in the paper.

    Attributes
    ----------
    n_jobs:
        Total jobs in the trace.
    span:
        Job submit times spread over ``[0, span]`` engine seconds
        (before burst clustering).
    frac_tracking / frac_batched:
        Job-mix fractions for ordered particle-tracking jobs and batched
        statistics jobs; the remainder are one-off single queries.
    campaign_prob:
        Probability that a tracking job spawns a *campaign* — follow-up
        jobs from the same user over the same region and time span,
        submitted shortly after.  Campaigns create the inter-job data
        sharing that gated execution (§IV) exploits.
    campaign_size_mean:
        Mean number of follow-up jobs per campaign (geometric).
    tracking_len_mean:
        Mean queries per tracking job (geometric, clamped to the
        remaining time steps).
    long_job_frac:
        Fraction of tracking jobs that iterate over (nearly) the whole
        stored time span, like the paper's 3 % hundred-step jobs.
    particles_mean:
        Mean positions per tracking query (lognormal).
    batched_len_mean:
        Mean queries per batched job.
    think_time_mean:
        Mean client-side seconds between an ordered job's query
        completion and its next query's arrival (exponential).
    n_hotspots:
        Number of spatial regions of interest positions cluster around.
    hotspot_sigma:
        Gaussian radius of a hotspot, voxels.
    burstiness:
        0 = Poisson-uniform submits; 1 = strongly clustered bursts.
    n_users:
        Distinct users submitting jobs.
    seed:
        RNG seed for everything (field included).
    """

    n_jobs: int = 150
    span: float = 2400.0
    frac_tracking: float = 0.15
    frac_batched: float = 0.45
    campaign_prob: float = 0.35
    campaign_size_mean: float = 1.5
    tracking_len_mean: float = 16.0
    long_job_frac: float = 0.04
    particles_mean: float = 260.0
    batched_len_mean: float = 12.0
    think_time_mean: float = 4.0
    n_hotspots: int = 5
    hotspot_sigma: float = 48.0
    burstiness: float = 0.6
    n_users: int = 12
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if self.frac_tracking + self.frac_batched > 1.0:
            raise ValueError("job-mix fractions exceed 1")
        if not 0.0 <= self.burstiness <= 1.0:
            raise ValueError("burstiness must be in [0, 1]")
        if self.span <= 0:
            raise ValueError("span must be positive")


def _timestep_popularity(n_timesteps: int) -> np.ndarray:
    """Fig. 9-shaped popularity weights over time steps.

    Start and end clusters, a spike around 30–40 % of the span, and a
    downward linear trend (jobs iterating over all time terminate
    midway through).
    """
    t = np.arange(n_timesteps, dtype=np.float64)
    T = max(n_timesteps - 1, 1)
    tau = max(n_timesteps / 14.0, 1.0)
    w = (
        2.4 * np.exp(-t / tau)
        + 1.5 * np.exp(-(T - t) / tau)
        + 0.6 * np.exp(-0.5 * ((t - 0.35 * T) / (0.05 * T + 0.5)) ** 2)
        + 0.14 * (1.0 - 0.6 * t / T)
    )
    return w / w.sum()


def _burst_times(rng: np.random.Generator, n: int, span: float, burstiness: float) -> np.ndarray:
    """Sorted submit times: a mix of uniform arrivals and tight bursts."""
    uniform = rng.uniform(0.0, span, n)
    n_bursts = max(1, n // 8)
    centers = rng.uniform(0.0, span, n_bursts)
    burst = centers[rng.integers(0, n_bursts, n)] + rng.exponential(span / 200.0, n)
    pick = rng.random(n) < burstiness
    times = np.where(pick, burst, uniform)
    return np.sort(np.clip(times, 0.0, span))


class _TraceBuilder:
    def __init__(self, spec: DatasetSpec, params: WorkloadParams) -> None:
        self.spec = spec
        self.params = params
        self.rng = np.random.default_rng(params.seed)
        self.field = SyntheticTurbulence(
            box_size=spec.grid_side,
            seed=params.seed + 1,
            u_rms=0.35 * spec.grid_side / max(spec.duration, spec.dt),
        )
        self.ts_popularity = _timestep_popularity(spec.n_timesteps)
        self.hotspots = self.rng.uniform(0.0, spec.grid_side, (params.n_hotspots, 3))
        self.next_query_id = 0
        self.next_job_id = 0
        self.jobs: list[Job] = []

    # -- helpers ----------------------------------------------------------
    def _new_query_id(self) -> int:
        self.next_query_id += 1
        return self.next_query_id - 1

    def _new_job_id(self) -> int:
        self.next_job_id += 1
        return self.next_job_id - 1

    def _start_timestep(self) -> int:
        return int(self.rng.choice(self.spec.n_timesteps, p=self.ts_popularity))

    def _hotspot_positions(self, n: int, hotspot: np.ndarray) -> np.ndarray:
        pos = hotspot[None, :] + self.rng.normal(0.0, self.params.hotspot_sigma, (n, 3))
        return np.mod(pos, self.spec.grid_side)

    def _n_particles(self) -> int:
        n = int(self.rng.lognormal(np.log(self.params.particles_mean), 0.5))
        return max(8, n)

    # -- job constructors --------------------------------------------------
    def tracking_job(
        self,
        user_id: int,
        submit_time: float,
        hotspot: np.ndarray | None = None,
        t0: int | None = None,
        length: int | None = None,
    ) -> Job:
        """Ordered particle-tracking job: advect a particle cloud one
        stored time step per query."""
        p = self.params
        if hotspot is None:
            hotspot = self.hotspots[self.rng.integers(len(self.hotspots))]
        if t0 is None:
            t0 = self._start_timestep()
        max_len = self.spec.n_timesteps - t0
        if length is None:
            if self.rng.random() < p.long_job_frac:
                length = max_len  # iterate to the end of stored time
            else:
                length = 1 + int(self.rng.geometric(1.0 / p.tracking_len_mean))
        length = int(np.clip(length, 1, max_len))

        job_id = self._new_job_id()
        positions = self._hotspot_positions(self._n_particles(), hotspot)
        queries = []
        for i in range(length):
            timestep = t0 + i
            queries.append(
                Query(
                    query_id=self._new_query_id(),
                    job_id=job_id,
                    seq=i,
                    user_id=user_id,
                    op="interp",
                    timestep=timestep,
                    positions=positions.copy(),
                )
            )
            positions = advect_positions(
                self.field, positions, t=timestep * self.spec.dt, dt=self.spec.dt
            )
        think = self.rng.exponential(p.think_time_mean)
        return Job(job_id, JobKind.ORDERED, user_id, submit_time, think, queries)

    def batched_job(self, user_id: int, submit_time: float) -> Job:
        """Batched statistics job: independent region scans of one
        (mostly) fixed time step."""
        p = self.params
        job_id = self._new_job_id()
        n_queries = 1 + int(self.rng.geometric(1.0 / p.batched_len_mean))
        timestep = self._start_timestep()
        hotspot = self.hotspots[self.rng.integers(len(self.hotspots))]
        # §IV-A: "in a typical batched job, the number of queried
        # positions remains constant" — one draw per job.
        n_pos = max(16, int(self.rng.lognormal(np.log(p.particles_mean * 0.6), 0.4)))
        queries = []
        for i in range(n_queries):
            positions = self._hotspot_positions(n_pos, hotspot)
            queries.append(
                Query(
                    query_id=self._new_query_id(),
                    job_id=job_id,
                    seq=i,
                    user_id=user_id,
                    op="stats",
                    timestep=timestep,
                    positions=positions,
                )
            )
        return Job(job_id, JobKind.BATCHED, user_id, submit_time, 0.0, queries)

    def oneoff_job(self, user_id: int, submit_time: float) -> Job:
        """A single short, highly selective query (§I: "short-lived,
        focus on a small spatial region")."""
        job_id = self._new_job_id()
        n_pos = int(self.rng.integers(4, 40))
        center = self.rng.uniform(0.0, self.spec.grid_side, 3)
        positions = np.mod(
            center[None, :] + self.rng.normal(0.0, 10.0, (n_pos, 3)), self.spec.grid_side
        )
        query = Query(
            query_id=self._new_query_id(),
            job_id=job_id,
            seq=0,
            user_id=user_id,
            op="velocity",
            timestep=self._start_timestep(),
            positions=positions,
        )
        return Job(job_id, JobKind.ORDERED, user_id, submit_time, 0.0, [query])

    # -- top level -----------------------------------------------------------
    def build(self) -> Trace:
        p = self.params
        submit_times = _burst_times(self.rng, p.n_jobs, p.span, p.burstiness)
        kinds = self.rng.random(p.n_jobs)
        for submit_time, kind_draw in zip(submit_times, kinds):
            user_id = int(self.rng.integers(p.n_users))
            if kind_draw < p.frac_tracking:
                job = self.tracking_job(user_id, float(submit_time))
                self.jobs.append(job)
                # Campaign: related tracking jobs over the same region &
                # span, submitted soon after (same user).
                if job.n_queries > 1 and self.rng.random() < p.campaign_prob:
                    n_follow = 1 + int(self.rng.geometric(1.0 / p.campaign_size_mean))
                    t0 = job.queries[0].timestep
                    base_hotspot = job.queries[0].positions.mean(axis=0)
                    for _ in range(n_follow):
                        delay = self.rng.exponential(p.span / 80.0)
                        follow = self.tracking_job(
                            user_id,
                            float(submit_time + delay),
                            hotspot=base_hotspot,
                            t0=t0,
                            length=job.n_queries,
                        )
                        self.jobs.append(follow)
            elif kind_draw < p.frac_tracking + p.frac_batched:
                self.jobs.append(self.batched_job(user_id, float(submit_time)))
            else:
                self.jobs.append(self.oneoff_job(user_id, float(submit_time)))
        self.jobs.sort(key=lambda j: j.submit_time)
        return Trace(self.spec, self.jobs)


def generate_trace(spec: DatasetSpec, params: WorkloadParams) -> Trace:
    """Generate a deterministic synthetic trace for ``spec``.

    Campaign follow-ups are appended beyond ``params.n_jobs``, so the
    returned trace typically has somewhat more jobs than requested —
    matching how real users resubmit variations of an experiment.
    """
    return _TraceBuilder(spec, params).build()


@dataclass(frozen=True)
class FlashCrowdParams:
    """A seeded flash-crowd burst layered on top of an existing trace.

    Models the service's nightmare scenario (ROADMAP north star: "a
    simulation available to millions of users"): a sudden wave of
    first-time visitors — e.g. the dataset is linked from a popular
    article — each firing a one-off interactive point query.  Every
    burst job is a distinct client (fresh ``user_id``), which is
    exactly what defeats naive per-client rate limiting and makes the
    bounded-queue / brownout layers earn their keep.

    Attributes
    ----------
    factor:
        Burst size as a multiple of the base trace's average arrival
        rate over the burst window: the burst adds
        ``(factor - 1) x base_rate x duration`` jobs (a ``factor`` of
        10 makes the window carry ~10x normal load).
    start / duration:
        Burst window in engine seconds.
    positions_mean:
        Mean positions per burst query (small: visitors poke at a
        point, they do not run scans).
    seed:
        Burst RNG seed, independent of the base trace's.
    """

    factor: float = 10.0
    start: float = 0.0
    duration: float = 60.0
    positions_mean: float = 16.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.factor <= 1.0:
            raise ValueError("factor must be > 1 (1 = no burst)")
        if self.start < 0 or self.duration <= 0:
            raise ValueError("start must be >= 0 and duration positive")
        if self.positions_mean < 1:
            raise ValueError("positions_mean must be >= 1")


def inject_flash_crowd(trace: Trace, params: FlashCrowdParams) -> Trace:
    """Return a new trace with a seeded flash-crowd burst merged in.

    Burst jobs are one-off interactive queries from distinct new users,
    with job/query/user ids continuing past the base trace's maxima so
    the merge never collides.  Deterministic: same base trace + same
    params ⇒ identical output.
    """
    spec = trace.spec
    base_rate = max(trace.n_jobs / trace.span, 1e-9) if trace.span > 0 else 1.0
    n_burst = max(1, int(round((params.factor - 1.0) * base_rate * params.duration)))
    rng = np.random.default_rng(params.seed)
    next_job = max((j.job_id for j in trace.jobs), default=-1) + 1
    next_query = max(
        (q.query_id for j in trace.jobs for q in j.queries), default=-1
    ) + 1
    next_user = max((j.user_id for j in trace.jobs), default=-1) + 1
    submit_times = np.sort(rng.uniform(params.start, params.start + params.duration, n_burst))
    timesteps = rng.integers(0, spec.n_timesteps, n_burst)
    burst_jobs: list[Job] = []
    for i, (submit, timestep) in enumerate(zip(submit_times, timesteps)):
        n_pos = max(4, int(rng.poisson(params.positions_mean)))
        center = rng.uniform(0.0, spec.grid_side, 3)
        positions = np.mod(
            center[None, :] + rng.normal(0.0, 6.0, (n_pos, 3)), spec.grid_side
        )
        query = Query(
            query_id=next_query + i,
            job_id=next_job + i,
            seq=0,
            user_id=next_user + i,
            op="velocity",
            timestep=int(timestep),
            positions=positions,
        )
        burst_jobs.append(
            Job(
                job_id=next_job + i,
                kind=JobKind.ORDERED,
                user_id=next_user + i,
                submit_time=float(submit),
                think_time=0.0,
                queries=[query],
            )
        )
    merged = sorted(trace.jobs + burst_jobs, key=lambda j: (j.submit_time, j.job_id))
    return Trace(spec, merged)
