"""Content-addressed on-disk memoization of generated traces.

Experiment sweeps reuse the same workload trace many times — Fig. 10
replays one trace under five schedulers, Fig. 11 regenerates per
speedup, and every CLI invocation starts from scratch.  Trace
generation is a pure function of ``(DatasetSpec, WorkloadParams,
speedup)`` (the seed lives inside :class:`WorkloadParams`), so its
output can be cached on disk keyed by a hash of those inputs.

Guarantees:

* **bit-identity** — the npz trace format round-trips positions and
  float times exactly (JSON ``repr`` floats + raw float64 arrays), so
  a cache hit is indistinguishable from regeneration;
* **versioned format** — the cache key embeds a format version; any
  change to trace serialization or generation semantics bumps it and
  silently invalidates old entries;
* **corruption safety** — unreadable or mismatched cache files are
  unlinked and the trace is regenerated; writes are atomic
  (temp file + ``os.replace``), so a killed process never leaves a
  half-written entry behind.  A cache directory that cannot be written
  (read-only, full disk) degrades to uncached generation with a
  ``RuntimeWarning`` — never an exception, never a stale entry left
  behind.

Control via the ``REPRO_TRACE_CACHE`` environment variable: unset uses
``.repro_cache/traces`` under the working directory, a path overrides
the location, and ``off``/``0`` disables caching entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
import warnings
from dataclasses import asdict
from pathlib import Path
from typing import Optional

from repro.grid.dataset import DatasetSpec
from repro.workload.generator import WorkloadParams, generate_trace
from repro.workload.trace import Trace

__all__ = ["cached_generate_trace", "trace_cache_dir", "trace_cache_key"]

#: Bump on any change to trace serialization or generation semantics.
_FORMAT_VERSION = 1

_ENV_VAR = "REPRO_TRACE_CACHE"
_DISABLED_VALUES = ("off", "0", "none", "disabled")


def trace_cache_dir() -> Optional[Path]:
    """Resolve the cache directory, or ``None`` when caching is off."""
    value = os.environ.get(_ENV_VAR)
    if value is None:
        return Path(".repro_cache") / "traces"
    if value.strip().lower() in _DISABLED_VALUES:
        return None
    return Path(value)


def trace_cache_key(
    spec: DatasetSpec, params: WorkloadParams, speedup: float, topology: str = "",
    engine: str = "",
) -> str:
    """Content hash of everything trace generation depends on.

    Floats are keyed by ``repr`` so two inputs hash equal exactly when
    they would generate bit-identical traces.  ``topology`` is the
    optional shard-topology digest
    (:meth:`~repro.shard.topology.ShardTopology.digest`): callers that
    pre-bake topology-dependent artifacts alongside the trace pass it
    so entries for different coordinator layouts never alias (an empty
    string — the default — keys exactly as before).  ``engine`` works
    the same way for the execution engine kind: traces themselves are
    engine-independent, but callers that store engine-specific
    artifacts next to a trace (benchmark snapshots, cross-validation
    fixtures) key them apart by passing ``"fast"``; the empty default
    keys exactly as before.
    """
    payload = {
        "format": _FORMAT_VERSION,
        "spec": {k: repr(v) for k, v in sorted(asdict(spec).items())},
        "params": {k: repr(v) for k, v in sorted(asdict(params).items())},
        "speedup": repr(float(speedup)),
    }
    if topology:
        payload["topology"] = str(topology)
    if engine:
        payload["engine"] = str(engine)
    digest = hashlib.sha256(json.dumps(payload, sort_keys=True).encode())
    return digest.hexdigest()[:32]


def _load_if_valid(path: Path, spec: DatasetSpec) -> Optional[Trace]:
    """Load a cache entry, discarding it on any sign of corruption."""
    try:
        trace = Trace.load(path)
    except Exception:
        # Truncated npz, bad zip, mangled JSON header, wrong dtypes —
        # all repairable by regeneration; never let a broken cache
        # entry break an experiment.
        try:
            path.unlink()
        except OSError:
            pass
        return None
    if trace.spec != spec:
        # Hash collision or stale file under a reused name: discard it
        # too, or every later lookup re-reads the useless entry.
        try:
            path.unlink()
        except OSError:
            pass
        return None
    return trace


def cached_generate_trace(
    spec: DatasetSpec,
    params: WorkloadParams,
    speedup: float = 1.0,
    cache_dir: Optional[Path] = None,
    topology: str = "",
    engine: str = "",
) -> Trace:
    """``generate_trace`` + ``rescale`` with on-disk memoization.

    ``cache_dir=None`` resolves the directory from the environment
    (see module docstring); caching disabled falls straight through to
    generation.  ``topology`` and ``engine`` feed
    :func:`trace_cache_key` so sharded campaigns and engine-keyed
    artifacts keep their own cache entries.
    """
    directory = cache_dir if cache_dir is not None else trace_cache_dir()
    if directory is None:
        trace = generate_trace(spec, params)
        return trace.rescale(speedup) if speedup != 1.0 else trace

    key = trace_cache_key(spec, params, speedup, topology=topology, engine=engine)
    path = directory / f"trace-v{_FORMAT_VERSION}-{key}.npz"
    if path.exists():
        cached = _load_if_valid(path, spec)
        if cached is not None:
            return cached

    trace = generate_trace(spec, params)
    if speedup != 1.0:
        trace = trace.rescale(speedup)
    tmp: Optional[Path] = None
    try:
        directory.mkdir(parents=True, exist_ok=True)
        # Unique temp name per writer so concurrent workers filling the
        # same key never interleave; os.replace is atomic and the last
        # writer wins with identical content.
        # Name must keep the .npz suffix: np.savez appends it otherwise.
        tmp = directory / f".tmp-{uuid.uuid4().hex}-{path.name}"
        trace.save(tmp)
        os.replace(tmp, path)
    except OSError as exc:
        # A read-only or full filesystem degrades to regeneration-only:
        # the freshly generated trace is still returned, nothing raises.
        # Clean up defensively — a half-written temp file, and any
        # unreadable entry _load_if_valid could not remove earlier, must
        # not survive to poison later lookups.
        for leftover in (tmp, path):
            if leftover is None:
                continue
            try:
                leftover.unlink()
            except OSError:
                pass
        warnings.warn(
            f"trace cache write to {path} failed ({exc}); "
            "continuing without caching",
            RuntimeWarning,
            stacklevel=2,
        )
    return trace
