"""Server-side job encapsulation (paper §VII, future work).

Today's Turbulence users "write a series of loops that iterate through
each time step", computing new positions client-side between queries —
which is what creates the think-time gaps and hides a job's future
queries from the scheduler.  The Discussion proposes encapsulating the
iteration *inside* the database: the scheduler then has a-priori
knowledge of the whole job and no client round-trips.

In the simulator, gated JAWS already has trace-level knowledge of job
query sequences (DESIGN.md), so the observable effect of encapsulation
is the removal of the client round-trip: ordered jobs lose their think
time (query ``i+1`` becomes schedulable the moment ``i`` completes).
:func:`encapsulate_trace` applies exactly that transformation, and the
encapsulation bench measures what the proposal would buy.
"""

from __future__ import annotations

from dataclasses import replace

from repro.workload.trace import Trace

__all__ = ["encapsulate_trace"]


def encapsulate_trace(trace: Trace) -> Trace:
    """Return a copy of ``trace`` with ordered jobs' think times set to
    zero (server-side iteration, no client round-trip).

    Query contents and ordering constraints are unchanged — dependencies
    still serialize each job's queries.
    """
    jobs = [replace(job, think_time=0.0) if job.is_ordered else job for job in trace.jobs]
    return Trace(trace.spec, jobs)
