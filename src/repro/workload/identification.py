"""Job identification from a flat query log (paper §IV-A).

The Turbulence front end receives bare queries; JAWS reconstructs job
membership heuristically "using a combination of user IDs, spatial or
temporal operation performed, time steps queried, and wall-clock time
between consecutive queries" — heuristic but "highly accurate in
practice".

:class:`JobIdentifier` implements that heuristic over a stream of
:class:`LogRecord`; :func:`identification_accuracy` scores a predicted
grouping against ground truth with pairwise precision/recall/F1.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Optional

from repro.workload.trace import Trace

__all__ = [
    "LogRecord",
    "JobIdentifier",
    "flatten_trace",
    "identification_accuracy",
]


@dataclass(frozen=True)
class LogRecord:
    """One query submission as seen by the front end."""

    query_id: int
    user_id: int
    op: str
    timestep: int
    arrival_time: float
    n_positions: int
    true_job_id: Optional[int] = None  # carried for accuracy scoring only


@dataclass
class _OpenJob:
    predicted_id: int
    user_id: int
    op: str
    last_timestep: int
    last_arrival: float
    step_delta: Optional[int] = None  # observed time-step stride
    n_positions: int = 0


class JobIdentifier:
    """Stateful heuristic grouping of a time-ordered query log.

    Users run several experiments concurrently, so the identifier keeps
    *every* open job per (user, operation) and assigns each incoming
    query to the best-matching one.  A job is a match when all of:

    * same user and operation;
    * the gap since the job's last query is below ``gap_threshold``
      seconds (users in a workflow resubmit promptly);
    * the time step continues the job's stride — equal to the last
      time step, or advancing by the job's established per-query delta
      (first observed delta fixes the stride, tolerance ±1);
    * the position count is stable within ``size_tolerance`` (§IV-A:
      "in a typical batched job, the number of queried positions
      remains constant"; a tracking cloud likewise keeps its size).

    Among matches the closest by (stride exactness, position-count
    similarity, recency) wins; with no match a new job opens.  Jobs
    silent for ``gap_threshold`` seconds are closed.
    """

    def __init__(
        self,
        gap_threshold: float = 120.0,
        size_tolerance: float = 0.1,
        max_step_delta: int = 2,
    ) -> None:
        if gap_threshold <= 0:
            raise ValueError("gap_threshold must be positive")
        self.gap_threshold = gap_threshold
        self.size_tolerance = size_tolerance
        self.max_step_delta = max_step_delta
        self._open: dict[tuple[int, str], list[_OpenJob]] = {}
        self._next_id = 0
        self.assignments: dict[int, int] = {}  # query_id -> predicted job id

    def _new_job(self, rec: LogRecord) -> _OpenJob:
        job = _OpenJob(
            predicted_id=self._next_id,
            user_id=rec.user_id,
            op=rec.op,
            last_timestep=rec.timestep,
            last_arrival=rec.arrival_time,
            n_positions=rec.n_positions,
        )
        self._next_id += 1
        return job

    def _continues(self, job: _OpenJob, rec: LogRecord) -> bool:
        if rec.arrival_time - job.last_arrival > self.gap_threshold:
            return False
        delta = rec.timestep - job.last_timestep
        if job.step_delta is None:
            if not (0 <= delta <= self.max_step_delta):
                return False
        else:
            if abs(delta - job.step_delta) > 1:
                return False
        if job.n_positions > 0:
            ratio = abs(rec.n_positions - job.n_positions) / job.n_positions
            if ratio > self.size_tolerance:
                return False
        return True

    def _match_quality(self, job: _OpenJob, rec: LogRecord) -> tuple:
        delta = rec.timestep - job.last_timestep
        stride_exact = job.step_delta is not None and delta == job.step_delta
        size_err = (
            abs(rec.n_positions - job.n_positions) / job.n_positions
            if job.n_positions
            else 0.0
        )
        # Higher tuple = better match.
        return (stride_exact, -size_err, job.last_arrival)

    def observe(self, rec: LogRecord) -> int:
        """Assign one record to a (possibly new) predicted job id."""
        key = (rec.user_id, rec.op)
        jobs = self._open.setdefault(key, [])
        # Expire silent jobs.
        jobs[:] = [
            j for j in jobs if rec.arrival_time - j.last_arrival <= self.gap_threshold
        ]
        candidates = [j for j in jobs if self._continues(j, rec)]
        if candidates:
            job = max(candidates, key=lambda j: self._match_quality(j, rec))
            delta = rec.timestep - job.last_timestep
            if job.step_delta is None and delta > 0:
                job.step_delta = delta
            job.last_timestep = rec.timestep
            job.last_arrival = rec.arrival_time
            job.n_positions = rec.n_positions
        else:
            job = self._new_job(rec)
            jobs.append(job)
        self.assignments[rec.query_id] = job.predicted_id
        return job.predicted_id

    def run(self, records: Iterable[LogRecord]) -> dict[int, int]:
        """Process a full log in arrival order; returns the assignment map."""
        for rec in sorted(records, key=lambda r: r.arrival_time):
            self.observe(rec)
        return dict(self.assignments)


def flatten_trace(trace: Trace, exec_time_estimate: float = 1.5) -> list[LogRecord]:
    """Turn a trace into the flat log the front end would observe.

    An ordered job's query ``i+1`` arrives after query ``i`` completes
    plus think time; ``exec_time_estimate`` approximates per-query
    service time so arrival gaps look like the production log's.
    Ground-truth job ids are carried through for scoring.
    """
    records: list[LogRecord] = []
    for job in trace.jobs:
        t = job.submit_time
        for q in job.queries:
            if job.is_ordered and q.seq > 0:
                t += exec_time_estimate + job.think_time
            records.append(
                LogRecord(
                    query_id=q.query_id,
                    user_id=q.user_id,
                    op=q.op,
                    timestep=q.timestep,
                    arrival_time=t,
                    n_positions=q.n_positions,
                    true_job_id=job.job_id,
                )
            )
    records.sort(key=lambda r: r.arrival_time)
    return records


def identification_accuracy(
    records: list[LogRecord], assignments: dict[int, int]
) -> dict[str, float]:
    """Pairwise precision/recall/F1 of a predicted grouping.

    A *pair* is two queries placed in the same group.  Precision counts
    predicted pairs that are truly co-job; recall counts true co-job
    pairs recovered.  Both computed over within-group pairs only, so
    the cost is quadratic in group sizes, not the log size.
    """
    pred_groups: dict[int, list[int]] = {}
    for qid, pid in assignments.items():
        pred_groups.setdefault(pid, []).append(qid)
    true_groups: dict[int, list[int]] = {}
    for r in records:
        true_groups.setdefault(r.true_job_id, []).append(r.query_id)

    pred_pairs = {
        frozenset(p)
        for members in pred_groups.values()
        for p in combinations(sorted(members), 2)
    }
    true_pairs = {
        frozenset(p)
        for members in true_groups.values()
        for p in combinations(sorted(members), 2)
    }
    tp = len(pred_pairs & true_pairs)
    precision = tp / len(pred_pairs) if pred_pairs else 1.0
    recall = tp / len(true_pairs) if true_pairs else 1.0
    f1 = (
        2 * precision * recall / (precision + recall) if precision + recall > 0 else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1}
