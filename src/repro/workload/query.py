"""Queries, sub-queries, and the query pre-processor.

A Turbulence query is "a list of positions on which to perform
computation" at one time step (paper §III-B).  The pre-processor
identifies the atom containing each position and emits one *sub-query*
per touched atom; sub-queries can execute in any order and the query's
result is the combination of its sub-queries' results.  Sub-queries are
emitted in Morton order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.grid.atoms import AtomMapper
from repro.grid.dataset import DatasetSpec
from repro.grid.interpolation import (
    InterpolationSpec,
    neighbor_atoms_from_keys,
    stencil_atoms,
    stencil_overshoot_keys,
)

__all__ = ["Query", "SubQuery", "preprocess_query"]

#: Operations a query can perform, mirroring the paper's workload
#: classes: velocity/pressure lookup, Lagrangian interpolation (particle
#: tracking), and statistics over a region.
OPERATIONS = ("velocity", "interp", "stats")


@dataclass
class Query:
    """One query: a set of positions evaluated at one time step.

    Attributes
    ----------
    query_id:
        Globally unique id.
    job_id:
        Owning job (every query belongs to a job; one-off queries are
        single-query jobs).
    seq:
        0-based index within the job's query sequence.
    user_id:
        Submitting user (input to job identification).
    op:
        One of :data:`OPERATIONS`.
    timestep:
        Stored time step the positions are evaluated against.
    positions:
        ``(N, 3)`` float array in voxel units.
    atom_set:
        Packed primary-atom ids touched by the positions; filled by
        :func:`preprocess_query` and used by job alignment
        (``A(q)`` in §IV-B).
    """

    query_id: int
    job_id: int
    seq: int
    user_id: int
    op: str
    timestep: int
    positions: np.ndarray
    atom_set: Optional[frozenset[int]] = field(default=None, repr=False)
    # Stencil-overshoot keys for all positions, computed vectorized on
    # first sub-query stencil evaluation and shared by every sub-query
    # of the query: (cache key, per-position key array).
    _stencil_keys: Optional[tuple[tuple[int, int, int, int], np.ndarray]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.op not in OPERATIONS:
            raise ValueError(f"unknown operation {self.op!r}")
        self.positions = np.asarray(self.positions, dtype=np.float64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError("positions must have shape (N, 3)")
        if len(self.positions) == 0:
            raise ValueError("query must contain at least one position")

    @property
    def n_positions(self) -> int:
        return len(self.positions)

    def atoms(self, spec: DatasetSpec) -> frozenset[int]:
        """Primary atom set ``A(q)``, computing and caching on demand."""
        if self.atom_set is None:
            mapper = AtomMapper(spec)
            ids = mapper.atom_ids(self.positions, self.timestep)
            self.atom_set = frozenset(int(a) for a in np.unique(ids))
        return self.atom_set


@dataclass
class SubQuery:
    """The positions of one query falling within one atom.

    ``position_indices`` index into the owning query's ``positions``
    array; the engine uses them to evaluate the interpolation stencil
    and count neighbor-atom reads.
    """

    query: Query
    atom_id: int
    position_indices: np.ndarray

    @property
    def n_positions(self) -> int:
        return len(self.position_indices)

    def positions(self) -> np.ndarray:
        """The sub-query's positions, ``(n, 3)``."""
        return self.query.positions[self.position_indices]

    def required_atoms(self, spec: DatasetSpec, interp: InterpolationSpec) -> np.ndarray:
        """All atom ids (primary + stencil neighbors) this sub-query reads."""
        if self.query.op == "interp":
            return stencil_atoms(spec, self.positions(), self.query.timestep, interp)
        return np.array([self.atom_id], dtype=np.int64)

    def neighbor_atoms(self, spec: DatasetSpec, interp: InterpolationSpec) -> list[int]:
        """Stencil-neighbor atom ids only (primary excluded, hot path).

        The per-position overshoot keys are computed vectorized over
        the *whole query* once and cached on it; each sub-query then
        slices its own positions' keys — one numpy pass per query
        instead of one per sub-query.
        """
        if self.query.op != "interp":
            return []
        if interp.half_width <= spec.halo:
            return []
        cache_key = (interp.order, spec.halo, spec.atom_side, spec.grid_side)
        cached = self.query._stencil_keys
        if cached is None or cached[0] != cache_key:
            keys = stencil_overshoot_keys(spec, self.query.positions, interp)
            self.query._stencil_keys = (cache_key, keys)
        else:
            keys = cached[1]
        return neighbor_atoms_from_keys(spec, keys[self.position_indices], self.atom_id)


def preprocess_query(query: Query, mapper: AtomMapper) -> list[SubQuery]:
    """Split a query into per-atom sub-queries in Morton order.

    Implements the pre-processing stage of Figure 1: each sub-query is
    the set of the query's positions that fall within one atom;
    sub-queries are independent; their union reconstructs the query.
    Also fills the query's cached ``atom_set``.
    """
    groups = mapper.group_by_atom(query.positions, query.timestep)
    subqueries = [SubQuery(query, atom_id, idx) for atom_id, idx in groups]
    query.atom_set = frozenset(sq.atom_id for sq in subqueries)
    return subqueries
