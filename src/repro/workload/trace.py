"""Trace container: a replayable workload.

The paper evaluates against a 50 k-query (~1 k-job) trace from the
Turbulence SQL log, rescaled by a *speed-up* factor to vary workload
saturation (§VI-B: "a speed-up of two indicates that j_i is now
submitted in one minute" instead of two).  :meth:`Trace.rescale`
implements exactly that: inter-job submit gaps shrink by the factor;
think times (client-side computation) are unchanged.

Traces serialize to a single ``.npz`` file (no pickle) so experiment
inputs are reproducible artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.grid.dataset import DatasetSpec
from repro.workload.job import Job, JobKind
from repro.workload.query import Query

__all__ = ["Trace"]


@dataclass
class Trace:
    """A dataset spec plus the jobs to replay against it."""

    spec: DatasetSpec
    jobs: list[Job]

    def __post_init__(self) -> None:
        ids = [j.job_id for j in self.jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate job ids in trace")

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def n_queries(self) -> int:
        return sum(j.n_queries for j in self.jobs)

    @property
    def n_positions(self) -> int:
        return sum(j.n_positions for j in self.jobs)

    def queries(self) -> list[Query]:
        """All queries in (job, seq) order."""
        return [q for j in self.jobs for q in j.queries]

    @property
    def span(self) -> float:
        """Submit-time span of the trace in engine seconds."""
        if not self.jobs:
            return 0.0
        times = [j.submit_time for j in self.jobs]
        return max(times) - min(times)

    def rescale(self, speedup: float) -> "Trace":
        """Return a copy with inter-job arrival gaps divided by ``speedup``.

        ``speedup > 1`` saturates the workload (jobs arrive faster);
        ``speedup < 1`` relaxes it.  Think times are untouched — they
        model user-side computation, not arrival rate.
        """
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        if not self.jobs:
            return Trace(self.spec, [])
        t0 = min(j.submit_time for j in self.jobs)
        jobs = [
            replace(j, submit_time=t0 + (j.submit_time - t0) / speedup) for j in self.jobs
        ]
        return Trace(self.spec, jobs)

    # ------------------------------------------------------------------
    # Serialization (pickle-free npz)
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the trace to ``path`` as a compressed ``.npz``."""
        job_meta = []
        query_meta = []
        position_blocks = []
        offset = 0
        for job in self.jobs:
            job_meta.append(
                {
                    "job_id": job.job_id,
                    "kind": job.kind.value,
                    "user_id": job.user_id,
                    "submit_time": job.submit_time,
                    "think_time": job.think_time,
                    "client_class": job.client_class,
                }
            )
            for q in job.queries:
                n = q.n_positions
                query_meta.append(
                    {
                        "query_id": q.query_id,
                        "job_id": q.job_id,
                        "seq": q.seq,
                        "user_id": q.user_id,
                        "op": q.op,
                        "timestep": q.timestep,
                        "offset": offset,
                        "n": n,
                    }
                )
                position_blocks.append(q.positions)
                offset += n
        positions = (
            np.concatenate(position_blocks, axis=0)
            if position_blocks
            else np.empty((0, 3), dtype=np.float64)
        )
        spec = {
            "grid_side": self.spec.grid_side,
            "atom_side": self.spec.atom_side,
            "n_timesteps": self.spec.n_timesteps,
            "dt": self.spec.dt,
            "halo": self.spec.halo,
            "atom_bytes": self.spec.atom_bytes,
        }
        np.savez_compressed(
            Path(path),
            header=np.frombuffer(
                json.dumps({"spec": spec, "jobs": job_meta, "queries": query_meta}).encode(),
                dtype=np.uint8,
            ),
            positions=positions,
        )

    @staticmethod
    def load(path: str | Path) -> "Trace":
        """Read a trace written by :meth:`save`."""
        with np.load(Path(path)) as data:
            header = json.loads(bytes(data["header"]).decode())
            positions = data["positions"]
        spec = DatasetSpec(**header["spec"])
        queries_by_job: dict[int, list[Query]] = {}
        for qm in header["queries"]:
            q = Query(
                query_id=qm["query_id"],
                job_id=qm["job_id"],
                seq=qm["seq"],
                user_id=qm["user_id"],
                op=qm["op"],
                timestep=qm["timestep"],
                positions=positions[qm["offset"] : qm["offset"] + qm["n"]],
            )
            queries_by_job.setdefault(q.job_id, []).append(q)
        jobs = []
        for jm in header["jobs"]:
            qs = sorted(queries_by_job.get(jm["job_id"], []), key=lambda q: q.seq)
            jobs.append(
                Job(
                    job_id=jm["job_id"],
                    kind=JobKind(jm["kind"]),
                    user_id=jm["user_id"],
                    submit_time=jm["submit_time"],
                    think_time=jm["think_time"],
                    queries=qs,
                    # Traces written before overload protection carry no
                    # class tag; Job derives one from the job shape.
                    client_class=jm.get("client_class", ""),
                )
            )
        return Trace(spec, jobs)
