"""Jobs: ordered and batched query sequences (paper §IV).

A *job* is a collection of queries belonging to one experiment.
*Ordered* jobs (e.g. particle tracking) have data dependencies — query
``i+1``'s positions are computed from query ``i``'s results, so queries
must run one after the other, with user *think time* in between while
positions are integrated client-side.  *Batched* jobs (e.g. aggregate
statistics) have independent queries that may run in any order; JAWS
treats them like one-off queries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.workload.query import Query

__all__ = ["JobKind", "Job"]


class JobKind(enum.Enum):
    """Execution-order semantics of a job's queries."""

    ORDERED = "ordered"
    BATCHED = "batched"


@dataclass
class Job:
    """A sequence of queries from one experiment.

    Attributes
    ----------
    job_id:
        Globally unique id.
    kind:
        Ordering semantics (see :class:`JobKind`).
    user_id:
        Submitting user.
    submit_time:
        Engine time at which the job (its first query, for ordered
        jobs; all queries, for batched jobs) arrives.
    think_time:
        Ordered jobs only: seconds of client-side computation between
        a query's completion and the arrival of the next query.
    queries:
        The job's query sequence, ``seq`` ascending.
    client_class:
        Traffic class used by overload protection (admission classes,
        weighted fair quotas, shed ordering — DESIGN.md §9).  Derived
        from the job shape when left empty: ``"batch"`` for batched
        statistics jobs, ``"tracking"`` for multi-query ordered jobs,
        ``"interactive"`` for one-off point queries.
    """

    job_id: int
    kind: JobKind
    user_id: int
    submit_time: float
    think_time: float = 0.0
    queries: list[Query] = field(default_factory=list)
    client_class: str = ""

    def __post_init__(self) -> None:
        if self.submit_time < 0:
            raise ValueError("submit_time must be non-negative")
        if self.think_time < 0:
            raise ValueError("think_time must be non-negative")
        if not self.client_class:
            if self.kind is JobKind.BATCHED:
                self.client_class = "batch"
            elif len(self.queries) > 1:
                self.client_class = "tracking"
            else:
                self.client_class = "interactive"
        for i, q in enumerate(self.queries):
            if q.seq != i:
                raise ValueError(f"query seq {q.seq} at index {i}: must be contiguous from 0")
            if q.job_id != self.job_id:
                raise ValueError("query.job_id does not match job")

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    @property
    def n_positions(self) -> int:
        return sum(q.n_positions for q in self.queries)

    @property
    def is_ordered(self) -> bool:
        return self.kind is JobKind.ORDERED

    @property
    def timesteps(self) -> set[int]:
        """Distinct time steps the job's queries access."""
        return {q.timestep for q in self.queries}

    def validate_ordered_chain(self) -> None:
        """Sanity check for generated ordered jobs: each query advances
        the time step monotonically (particle tracking semantics)."""
        if not self.is_ordered:
            return
        steps = [q.timestep for q in self.queries]
        if any(b < a for a, b in zip(steps, steps[1:])):
            raise ValueError(f"ordered job {self.job_id} has non-monotonic time steps: {steps}")
