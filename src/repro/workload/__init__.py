"""Workload substrate: queries, jobs, traces, and the synthetic
generator calibrated to the paper's Turbulence workload
characterization (§VI-A, Figs. 8–9)."""

from repro.workload.generator import WorkloadParams, generate_trace
from repro.workload.identification import JobIdentifier, identification_accuracy
from repro.workload.job import Job, JobKind
from repro.workload.query import Query, SubQuery, preprocess_query
from repro.workload.stats import job_duration_histogram, queries_per_timestep, workload_summary
from repro.workload.trace import Trace

__all__ = [
    "Query",
    "SubQuery",
    "preprocess_query",
    "Job",
    "JobKind",
    "Trace",
    "WorkloadParams",
    "generate_trace",
    "JobIdentifier",
    "identification_accuracy",
    "job_duration_histogram",
    "queries_per_timestep",
    "workload_summary",
]
