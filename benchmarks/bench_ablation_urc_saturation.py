"""§VII claim — "the relative benefit of URC improves with increased
workload saturation"."""

from conftest import run_once

from repro.experiments import ablations


def test_urc_gain_grows_with_saturation(benchmark, scale):
    data = run_once(
        benchmark, ablations.urc_vs_saturation, scale, speedups=(1.0, 4.0, 16.0)
    )
    print()
    print(ablations.render_urc(data))
    gains = data["urc_gain"]
    # URC at the highest saturation beats URC at the lowest.
    assert gains[-1] >= gains[0] * 0.97
    assert gains[-1] > 0.98  # URC never badly hurts
