"""Shared benchmark fixtures.

Figure/table benches run full discrete-event simulations, so each is
executed exactly once per session (``pedantic(rounds=1)``) and prints
the paper-style table it regenerates; micro-benches use normal
pytest-benchmark statistics.
"""

import pytest

from repro.experiments.common import ExperimentScale


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def scale():
    """Experiment scale for benches (SMALL keeps the suite minutes-long;
    switch to FULL to regenerate the EXPERIMENTS.md numbers)."""
    return ExperimentScale.SMALL
