"""Micro-benchmarks of the hot substrate operations (true
pytest-benchmark statistics, many rounds)."""

import numpy as np
import pytest

from repro.config import CostModel, MetricConfig
from repro.core.alignment import align_jobs
from repro.core.gating import PrecedenceGraph
from repro.core.merge import build_gating_offline
from repro.core.metrics import aged_metric, workload_throughput
from repro.grid.dataset import DatasetSpec
from repro.grid.interpolation import InterpolationSpec, subquery_neighbor_atoms
from repro.morton.codec import morton_decode, morton_encode
from repro.storage.btree import BPlusTree


@pytest.fixture(scope="module")
def coords():
    rng = np.random.default_rng(0)
    return tuple(rng.integers(0, 1 << 16, 100_000) for _ in range(3))


def test_morton_encode_100k(benchmark, coords):
    x, y, z = coords
    codes = benchmark(morton_encode, x, y, z)
    assert len(codes) == 100_000


def test_morton_decode_100k(benchmark, coords):
    x, y, z = coords
    codes = morton_encode(x, y, z)
    benchmark(morton_decode, codes)


def test_btree_point_lookups(benchmark):
    tree = BPlusTree.build_clustered(4096, order=64)
    keys = np.random.default_rng(1).integers(0, 4096, 1000)

    def lookups():
        return sum(tree.get(int(k)) for k in keys)

    benchmark(lookups)


def test_btree_range_scan(benchmark):
    tree = BPlusTree.build_clustered(4096, order=64)
    benchmark(lambda: sum(1 for _ in tree.range(0, 4096)))


def test_workload_metric_1000_atoms(benchmark):
    rng = np.random.default_rng(2)
    counts = rng.integers(1, 1000, 1000)
    cached = rng.random(1000) < 0.3
    oldest = rng.uniform(0, 100, 1000)
    cost = CostModel()
    cfg = MetricConfig()

    def metric():
        u_t = workload_throughput(counts, cached, cost)
        return aged_metric(u_t, oldest, 200.0, 0.5, cfg)

    benchmark(metric)


def test_alignment_30x30(benchmark):
    rng = np.random.default_rng(3)
    a = [frozenset(rng.integers(0, 40, 3).tolist()) for _ in range(30)]
    b = [frozenset(rng.integers(0, 40, 3).tolist()) for _ in range(30)]
    benchmark(align_jobs, a, b)


def test_offline_merge_20_jobs(benchmark):
    rng = np.random.default_rng(4)

    def build_and_merge():
        g = PrecedenceGraph()
        qid = 0
        for j in range(20):
            length = 8
            atoms = [frozenset(rng.integers(0, 30, 2).tolist()) for _ in range(length)]
            g.add_job(j, list(range(qid, qid + length)), atoms)
            qid += length
        return build_gating_offline(g)

    benchmark(build_and_merge)


def test_neighbor_atoms_boundary_cloud(benchmark):
    spec = DatasetSpec.small(n_timesteps=4, atoms_per_axis=8)
    rng = np.random.default_rng(5)
    # Cloud hugging an atom face: worst-case expansion.
    positions = np.column_stack(
        [
            rng.uniform(62.0, 66.0, 200) % spec.grid_side,
            rng.uniform(0, 64, 200),
            rng.uniform(0, 64, 200),
        ]
    )
    interp = InterpolationSpec(order=12)
    primary = 0  # not used for correctness here beyond decode

    def run():
        return subquery_neighbor_atoms(spec, positions[:100], primary, interp)

    benchmark(run)


def test_bigmin_skip_scan(benchmark):
    from repro.morton.bigmin import zrange_scan
    from repro.morton.codec import morton_encode_scalar

    zmin = morton_encode_scalar(3, 3, 3)
    zmax = morton_encode_scalar(12, 12, 12)
    count = benchmark(lambda: sum(1 for _ in zrange_scan(zmin, zmax)))
    assert count == 10**3
