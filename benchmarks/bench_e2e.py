"""End-to-end per-scheduler benchmarks and hot-path micro-benchmarks.

The e2e benches time one full SMALL-scale replay per scheduler — the
same measurement ``repro bench`` records into ``BENCH_PR5.json`` —
under pytest-benchmark so regressions show up next to the micro stats.

The ``remove_query`` pair demonstrates the inverted per-query index:
cancellation cost tracks the *cancelled query's* atom count, not the
total number of active atoms, so the 1k-atom and 16k-atom variants
should report the same order of magnitude (pre-index, the 16k variant
scanned every active slot and scaled linearly).
"""

import numpy as np
import pytest
from conftest import run_once

from repro.core.queues import WorkloadQueues
from repro.engine.runner import SCHEDULER_NAMES, run_trace
from repro.experiments.bench import run_bench
from repro.experiments.common import standard_engine, standard_trace
from repro.workload.query import Query, SubQuery


# ---------------------------------------------------------------------------
# End-to-end: one SMALL replay per scheduler
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_setup(scale):
    return standard_trace(scale), standard_engine()


@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_e2e_scheduler(benchmark, small_setup, name):
    trace, engine = small_setup
    result = run_once(benchmark, run_trace, trace, name, engine)
    assert result.n_queries == trace.n_queries


def test_e2e_bench_report_quick(benchmark):
    """The `repro bench --quick` path end to end (all five schedulers)."""
    report = run_once(benchmark, run_bench, quick=True)
    assert set(report["schedulers"]) == set(SCHEDULER_NAMES)


# ---------------------------------------------------------------------------
# remove_query: cost must track the query's atoms, not total active atoms
# ---------------------------------------------------------------------------
TARGET_ATOMS = 50


def _loaded_queues(n_background_atoms):
    """Queues holding one sub-query on each of ``n_background_atoms``
    distinct atoms (each from its own query)."""
    queues = WorkloadQueues(atoms_per_timestep=1 << 30)
    for atom in range(n_background_atoms):
        q = Query(
            query_id=atom,
            job_id=atom,
            seq=0,
            user_id=0,
            op="velocity",
            timestep=0,
            positions=np.zeros((1, 3)),
        )
        queues.add(SubQuery(q, atom_id=atom, position_indices=np.array([0])), now=0.0)
    return queues


def _remove_query_bench(benchmark, n_background_atoms):
    queues = _loaded_queues(n_background_atoms)
    target = Query(
        query_id=10 ** 9,
        job_id=10 ** 9,
        seq=0,
        user_id=0,
        op="velocity",
        timestep=0,
        positions=np.zeros((TARGET_ATOMS, 3)),
    )

    def setup():
        for i in range(TARGET_ATOMS):
            queues.add(
                SubQuery(target, atom_id=i, position_indices=np.array([i])), now=1.0
            )
        return (), {}

    def cancel():
        assert queues.remove_query(target.query_id) == TARGET_ATOMS

    benchmark.pedantic(cancel, setup=setup, rounds=50, iterations=1)
    assert queues.check_consistency() == []


def test_remove_query_amid_1k_atoms(benchmark):
    _remove_query_bench(benchmark, 1_000)


def test_remove_query_amid_16k_atoms(benchmark):
    """Must match the 1k variant (per-query index); pre-index this
    scanned all 16k slots and was ~16x slower."""
    _remove_query_bench(benchmark, 16_000)
