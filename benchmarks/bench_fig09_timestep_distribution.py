"""Regenerates Fig. 9 — distribution of queries by time step accessed."""

from conftest import run_once

from repro.experiments import fig09


def test_fig09_timestep_distribution(benchmark, scale):
    data = run_once(benchmark, fig09.run, scale)
    print()
    print(fig09.render(data))
    # Paper: ~70% of queries hit a dozen steps clustered at the ends,
    # with a downward trend over simulation time.  With 31 stored steps
    # (vs the paper's 1024) a dozen steps is 39% of the axis, so the
    # assertable shape is a wide margin over uniform plus the start/end
    # clustering and downward trend (see fig09's scale note).
    uniform = 12 / len(data["counts"])
    assert data["top12_share"] > uniform + 0.10
    assert data["edge_share"] > 0.42
    assert data["first_half_share"] > 0.5
