"""Benches for the §VII future-work extensions: QoS deadlines,
trajectory prefetching, and server-side job encapsulation."""

from conftest import run_once

from repro.core.prefetch import PrefetchingJAWSScheduler
from repro.core.qos import QoSJAWSScheduler
from repro.engine.runner import run_trace
from repro.experiments.common import (
    standard_engine,
    standard_scheduler_config,
    standard_trace,
)
from repro.workload.encapsulated import encapsulate_trace


def test_qos_deadline_scheduling(benchmark, scale):
    trace = standard_trace(scale)
    engine = standard_engine()

    def experiment():
        cfg = standard_scheduler_config()
        plain = run_trace(trace, "jaws2", engine, cfg)
        qos = QoSJAWSScheduler(
            trace.spec, engine.cost, standard_scheduler_config(), slack_factor=30.0
        )
        qos_result = run_trace(trace, qos, engine)
        return plain, qos, qos_result

    plain, qos, qos_result = run_once(benchmark, experiment)
    print()
    print(f"  plain JAWS2: tp={plain.throughput_qps:.3f} mean_rt={plain.mean_response_time:.1f}")
    print(
        f"  QoS-JAWS:    tp={qos_result.throughput_qps:.3f} "
        f"mean_rt={qos_result.mean_response_time:.1f} "
        f"miss_rate={qos.miss_rate:.2%} mean_tardiness={qos.mean_tardiness:.1f}s"
    )
    # Elasticity claim: QoS guarantees cost little throughput.
    assert qos_result.throughput_qps > plain.throughput_qps * 0.7
    assert qos_result.n_queries == plain.n_queries


def test_trajectory_prefetching(benchmark, scale):
    trace = standard_trace(scale)
    engine = standard_engine()

    def experiment():
        plain = run_trace(trace, "jaws2", engine, standard_scheduler_config())
        sched = PrefetchingJAWSScheduler(
            trace.spec, engine.cost, standard_scheduler_config()
        )
        fetched = run_trace(trace, sched, engine)
        return plain, sched, fetched

    plain, sched, fetched = run_once(benchmark, experiment)
    print()
    print(
        f"  plain JAWS2:   rt={plain.mean_response_time:6.1f}s "
        f"hit={plain.cache_hit_ratio:.2f}"
    )
    print(
        f"  JAWS+prefetch: rt={fetched.mean_response_time:6.1f}s "
        f"hit={fetched.cache_hit_ratio:.2f} "
        f"prefetched={sched.prefetched_atoms} "
        f"prediction_accuracy={sched.prediction_accuracy:.2%}"
    )
    assert sched.prefetched_atoms > 0
    assert sched.prediction_accuracy > 0.3
    assert fetched.n_queries == plain.n_queries


def test_job_encapsulation(benchmark, scale):
    trace = standard_trace(scale)
    engine = standard_engine()

    def experiment():
        loop = run_trace(trace, "jaws2", engine, standard_scheduler_config())
        enc = run_trace(
            encapsulate_trace(trace), "jaws2", engine, standard_scheduler_config()
        )
        return loop, enc

    loop, enc = run_once(benchmark, experiment)
    ordered = [j.job_id for j in trace.jobs if j.is_ordered and j.n_queries > 1]
    loop_dur = sum(loop.job_durations[j] for j in ordered) / max(len(ordered), 1)
    enc_dur = sum(enc.job_durations[j] for j in ordered) / max(len(ordered), 1)
    print()
    print(f"  client loop:  mean ordered-job duration={loop_dur:8.1f}s reads={loop.disk['reads']}")
    print(f"  encapsulated: mean ordered-job duration={enc_dur:8.1f}s reads={enc.disk['reads']}")
    assert enc_dur < loop_dur
