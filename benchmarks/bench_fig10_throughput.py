"""Regenerates Fig. 10 — query throughput by scheduling algorithm."""

from conftest import run_once

from repro.experiments import fig10


def test_fig10_throughput_by_algorithm(benchmark, scale):
    data = run_once(benchmark, fig10.run, scale)
    print()
    print(fig10.render(data))
    rows = data["rows"]
    tp = {name: rows[name]["throughput_qps"] for name in rows}
    # Shape: contention-based batching wins, job-awareness wins more.
    assert tp["liferaft1"] > tp["noshare"]
    assert tp["liferaft2"] > tp["liferaft1"]
    assert tp["jaws2"] > tp["liferaft1"]
    assert tp["jaws2"] >= 0.95 * tp["liferaft2"]  # usually strictly above
    assert rows["jaws2"]["relative"] > 1.8  # paper: ~2.6x NoShare
    # Job-aware JAWS does strictly less I/O than anything else.
    assert rows["jaws2"]["disk_reads"] < rows["liferaft2"]["disk_reads"]
    assert rows["jaws2"]["disk_reads"] < rows["jaws1"]["disk_reads"]
