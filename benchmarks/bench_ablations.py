"""Ablation benches for design choices called out in DESIGN.md:
metric normalization, gating on/off, sequential-read disk discount."""

from conftest import run_once

from repro.experiments import ablations


def test_metric_normalization(benchmark, scale):
    data = run_once(benchmark, ablations.metric_normalization, scale)
    print()
    for label, v in data.items():
        print(f"  {label:12s} tp={v['throughput_qps']:.3f} rt={v['mean_rt']:.1f}")
    # The raw unit-mixing formula lets age (ms) swamp U_t at alpha=0.5,
    # degenerating to near arrival order; normalization must not lose
    # to it on throughput.
    assert (
        data["normalized"]["throughput_qps"] >= data["raw"]["throughput_qps"] * 0.9
    )


def test_gating_ablation(benchmark, scale):
    data = run_once(benchmark, ablations.gating_ablation, scale)
    print()
    for label in ("gated", "ungated"):
        v = data[label]
        print(
            f"  {label:8s} tp={v['throughput_qps']:.3f} reads={v['disk_reads']}"
            f" rt={v['mean_rt']:.1f}"
        )
    print(f"  gating throughput gain: {data['throughput_gain']:.2f}x")
    # Gating must reduce I/O; throughput should not regress materially.
    assert data["gated"]["disk_reads"] < data["ungated"]["disk_reads"]
    assert data["throughput_gain"] > 0.95


def test_seq_discount_disk_model(benchmark, scale):
    data = run_once(benchmark, ablations.seq_discount, scale, discounts=(1.0, 0.25))
    print()
    print(ablations.render_seq(data))
    rows = {r["discount"]: r for r in data["rows"]}
    # Morton-ordered batching yields a higher sequential fraction than
    # NoShare's per-query interleave, so a seek-bound disk helps JAWS
    # disproportionately.
    assert rows[0.25]["jaws2_seq_frac"] > rows[0.25]["noshare_seq_frac"]
    jaws_gain = rows[0.25]["jaws2_qps"] / rows[1.0]["jaws2_qps"]
    noshare_gain = rows[0.25]["noshare_qps"] / rows[1.0]["noshare_qps"]
    assert jaws_gain > noshare_gain * 0.95
