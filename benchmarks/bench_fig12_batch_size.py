"""Regenerates Fig. 12 — performance impact of the batch size k."""

from conftest import run_once

from repro.experiments import fig12


def test_fig12_batch_size_sensitivity(benchmark, scale):
    data = run_once(benchmark, fig12.run, scale, ks=(1, 2, 5, 10, 15, 20, 30, 50))
    print()
    print(fig12.render(data))
    ks = data["ks"]
    tps = data["throughput"]
    by_k = dict(zip(ks, tps))
    # Reproducible parts of the paper's shape (see fig12's deviation
    # note): large k degrades vs the 10-15 region, impact beyond ~50 is
    # marginal (above-mean filter), and k = 1 beats LifeRaft2 thanks to
    # job-awareness.  The paper's k=1 penalty does not occur here.
    mid = max(by_k[10], by_k[15])
    assert by_k[50] <= mid * 1.02
    assert abs(by_k[50] - by_k[30]) / max(by_k[30], 1e-9) < 0.25
    assert by_k[1] > data["liferaft2"] * 0.95
