"""Regenerates Fig. 8 — distribution of jobs by execution time."""

from conftest import run_once

from repro.experiments import fig08


def test_fig08_job_duration_distribution(benchmark, scale):
    data = run_once(benchmark, fig08.run, scale)
    print()
    print(fig08.render(data))
    # Shape assertions: most jobs land in the short/medium buckets and
    # every bucket fraction is a valid probability.
    measured = data["measured"]
    assert abs(sum(measured.values()) - 1.0) < 1e-9
    assert measured["<1min"] + measured["1-30min"] > 0.5
