"""§IV-A claim check — heuristic job identification accuracy."""

from conftest import run_once

from repro.experiments import jobid


def test_job_identification_accuracy(benchmark, scale):
    data = run_once(benchmark, jobid.run, scale)
    print()
    print(jobid.render(data))
    # "Highly accurate in practice."
    assert data["precision"] > 0.9
    assert data["recall"] > 0.9
    assert data["f1"] > 0.9
