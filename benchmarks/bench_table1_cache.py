"""Regenerates Table I — performance and overhead of caching
algorithms (LRU-K vs SLRU vs URC under JAWS2)."""

from conftest import run_once

from repro.experiments import table1


def test_table1_cache_policies(benchmark, scale):
    data = run_once(benchmark, table1.run, scale)
    print()
    print(table1.render(data))
    rows = data["rows"]
    # Paper ordering: URC > SLRU > LRU-K on hit ratio; URC fastest per
    # query; SLRU bookkeeping cost well below URC's.
    assert rows["urc"]["cache_hit"] > rows["lruk"]["cache_hit"]
    assert rows["slru"]["cache_hit"] >= rows["lruk"]["cache_hit"] * 0.98
    assert rows["urc"]["sec_per_qry"] < rows["lruk"]["sec_per_qry"]
    assert rows["urc"]["overhead_ms"] > rows["slru"]["overhead_ms"]
