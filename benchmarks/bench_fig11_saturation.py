"""Regenerates Fig. 11 — throughput (a) and response time (b) vs
workload saturation."""

from conftest import run_once

from repro.experiments import fig11


def test_fig11_saturation_sensitivity(benchmark, scale):
    data = run_once(
        benchmark, fig11.run, scale, speedups=(1.0, 2.0, 4.0, 8.0, 16.0)
    )
    print()
    print(fig11.render(data))
    tp = data["throughput"]
    rt = data["response_time"]

    # (a) Contention-based schedulers scale with saturation; arrival-
    # order schedulers plateau: NoShare's high-saturation gain is small
    # next to JAWS2's.
    def gain(series):
        return series[-1] / series[0]

    assert gain(tp["jaws2"]) > gain(tp["noshare"])
    assert gain(tp["liferaft2"]) > gain(tp["noshare"])
    # JAWS2 wins throughput at every saturation level.
    for i in range(len(data["speedups"])):
        assert tp["jaws2"][i] >= max(tp["noshare"][i], tp["liferaft1"][i]) * 0.95

    # (b) NoShare's response time is worst at high saturation, and JAWS
    # responds faster than the pure contention scheduler there.
    assert rt["noshare"][-1] > rt["jaws2"][-1]
    assert rt["liferaft2"][-1] > rt["jaws2"][-1]
