"""Shim for environments without the ``wheel`` package (pip's PEP 517
editable path needs bdist_wheel; ``setup.py develop`` does not)."""

from setuptools import setup

setup()
