"""Tests for the adaptive age-bias controller (§V-A)."""

import pytest

from repro.core.adaptive import AdaptiveAlphaController


class TestRules:
    def test_first_run_seeds_series(self):
        c = AdaptiveAlphaController(alpha=0.5)
        assert c.update(rt=10.0, tp=1.0) == 0.5

    def test_rising_saturation_biases_toward_contention(self):
        """Rule 1: response time climbing with flat throughput -> α down."""
        c = AdaptiveAlphaController(alpha=0.5, ewma_weight=0.5)
        c.update(rt=10.0, tp=1.0)
        for step in range(1, 6):
            c.update(rt=10.0 * (1.5**step), tp=1.0)
        assert c.alpha < 0.5

    def test_falling_saturation_biases_toward_age(self):
        """Rule 2: response time falling but throughput falling faster
        -> α up (spend spare capacity on latency)."""
        c = AdaptiveAlphaController(alpha=0.5, ewma_weight=0.5)
        c.update(rt=100.0, tp=10.0)
        rt, tp = 100.0, 10.0
        for _ in range(6):
            rt *= 0.95
            tp *= 0.5
            c.update(rt=rt, tp=tp)
        assert c.alpha > 0.5

    def test_commensurate_growth_leaves_alpha(self):
        """rt and tp ratios equal: neither rule fires."""
        c = AdaptiveAlphaController(alpha=0.4, ewma_weight=1.0, stasis_epsilon=0.0)
        c.update(rt=10.0, tp=1.0)
        c.update(rt=20.0, tp=2.0)
        assert c.alpha == pytest.approx(0.4)

    def test_alpha_clamped_to_unit_interval(self):
        c = AdaptiveAlphaController(alpha=0.05, ewma_weight=1.0)
        c.update(rt=1.0, tp=1.0)
        for _ in range(10):
            c.update(rt=100.0, tp=1.0)  # huge rule-1 pressure
            c.update(rt=1.0, tp=1.0)
        assert 0.0 <= c.alpha <= 1.0


class TestSmoothing:
    def test_ewma_damps_single_spike(self):
        """One noisy run moves α much less under smoothing than raw."""
        smoothed = AdaptiveAlphaController(alpha=0.5, ewma_weight=0.2)
        raw = AdaptiveAlphaController(alpha=0.5, ewma_weight=1.0)
        for c in (smoothed, raw):
            c.update(rt=10.0, tp=1.0)
            c.update(rt=12.0, tp=1.0)  # 20% rt spike, flat throughput
        assert smoothed.alpha > raw.alpha
        assert smoothed.alpha == pytest.approx(0.5 - 0.04, abs=1e-9)

    def test_history_recorded(self):
        c = AdaptiveAlphaController(alpha=0.5)
        for i in range(4):
            c.update(rt=10.0 + i, tp=1.0)
        assert len(c.history) == 4


class TestExploration:
    def test_stasis_triggers_perturbation(self):
        c = AdaptiveAlphaController(alpha=0.5, stasis_epsilon=0.05, explore_step=0.1)
        for _ in range(4):
            c.update(rt=10.0, tp=1.0)
        assert c.alpha != 0.5  # explored off the initial value

    def test_exploration_alternates_direction(self):
        c = AdaptiveAlphaController(alpha=0.5, stasis_epsilon=0.05, explore_step=0.1)
        seen = set()
        for _ in range(12):
            c.update(rt=10.0, tp=1.0)
            seen.add(round(c.alpha, 3))
        assert len(seen) >= 2  # wanders both ways, not stuck


class TestValidation:
    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            AdaptiveAlphaController(alpha=1.5)

    def test_negative_inputs_rejected(self):
        c = AdaptiveAlphaController()
        with pytest.raises(ValueError):
            c.update(rt=-1.0, tp=1.0)
