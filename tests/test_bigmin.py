"""Property tests for BIGMIN Z-order skip-scanning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.morton.bigmin import bigmin, in_box, zrange_scan
from repro.morton.codec import morton_encode_scalar
from repro.morton.index import MortonIndex

SIDE = 8  # 6-bit boxes keep brute force cheap
IDX = MortonIndex(SIDE)

COORD = st.integers(0, SIDE - 1)


def box_codes_brute(lo, hi):
    out = []
    for x in range(lo[0], hi[0] + 1):
        for y in range(lo[1], hi[1] + 1):
            for z in range(lo[2], hi[2] + 1):
                out.append(morton_encode_scalar(x, y, z))
    return sorted(out)


@st.composite
def boxes(draw):
    lo = [draw(COORD) for _ in range(3)]
    hi = [draw(st.integers(lo[a], SIDE - 1)) for a in range(3)]
    return tuple(lo), tuple(hi)


class TestInBox:
    def test_corners(self):
        zmin = morton_encode_scalar(1, 2, 3)
        zmax = morton_encode_scalar(4, 5, 6)
        assert in_box(zmin, zmin, zmax)
        assert in_box(zmax, zmin, zmax)
        assert not in_box(morton_encode_scalar(0, 2, 3), zmin, zmax)


class TestBigmin:
    def test_known_gap(self):
        # Box x,y in [1,2] (2-D classic example lifted to 3-D, z fixed 0..0).
        zmin = morton_encode_scalar(1, 1, 0)
        zmax = morton_encode_scalar(2, 2, 0)
        codes = box_codes_brute((1, 1, 0), (2, 2, 0))
        # Pick a z between two in-box codes with a gap.
        z = codes[1]
        expected = codes[2]
        assert bigmin(z, zmin, zmax) == expected

    def test_no_successor(self):
        zmin = morton_encode_scalar(0, 0, 0)
        zmax = morton_encode_scalar(1, 1, 1)
        assert bigmin(zmax, zmin, zmax) is None
        assert bigmin(zmax + 5, zmin, zmax) is None

    @settings(max_examples=150, deadline=None)
    @given(boxes(), st.integers(0, SIDE**3))
    def test_matches_brute_force(self, box, z):
        lo, hi = box
        zmin = morton_encode_scalar(*lo)
        zmax = morton_encode_scalar(*hi)
        codes = box_codes_brute(lo, hi)
        expected = next((c for c in codes if c > z), None)
        assert bigmin(z, zmin, zmax) == expected

    @settings(max_examples=60, deadline=None)
    @given(boxes())
    def test_result_always_in_box_and_greater(self, box):
        lo, hi = box
        zmin = morton_encode_scalar(*lo)
        zmax = morton_encode_scalar(*hi)
        for z in range(zmin, min(zmax, zmin + 50)):
            out = bigmin(z, zmin, zmax)
            if out is not None:
                assert out > z
                assert in_box(out, zmin, zmax)


class TestZRangeScan:
    @settings(max_examples=60, deadline=None)
    @given(boxes())
    def test_enumerates_exactly_the_box(self, box):
        lo, hi = box
        zmin = morton_encode_scalar(*lo)
        zmax = morton_encode_scalar(*hi)
        assert list(zrange_scan(zmin, zmax)) == box_codes_brute(lo, hi)

    @settings(max_examples=40, deadline=None)
    @given(boxes())
    def test_agrees_with_octree_decomposition(self, box):
        """The two access-path strategies (BIGMIN skip-scan vs octree
        range decomposition) must enumerate identical code sets."""
        lo, hi = box
        zmin = morton_encode_scalar(*lo)
        zmax = morton_encode_scalar(*hi)
        via_octree = [int(c) for c in IDX.box_codes(lo, hi)]
        assert list(zrange_scan(zmin, zmax)) == via_octree

    def test_full_grid_is_contiguous(self):
        zmax = SIDE**3 - 1
        assert list(zrange_scan(0, zmax)) == list(range(SIDE**3))
