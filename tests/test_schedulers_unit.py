"""Unit tests for NoShare / LifeRaft / JAWS scheduler behaviour
(driven directly through the Scheduler interface, no engine)."""

import numpy as np
import pytest

from repro.config import CostModel, SchedulerConfig
from repro.core.jaws import JAWSScheduler
from repro.core.liferaft import LifeRaftScheduler
from repro.core.noshare import NoShareScheduler
from repro.grid.atoms import AtomMapper
from repro.grid.dataset import DatasetSpec
from repro.workload.job import Job, JobKind
from repro.workload.query import Query, preprocess_query

SPEC = DatasetSpec.small(n_timesteps=4, atoms_per_axis=4)
MAPPER = AtomMapper(SPEC)
COST = CostModel()


def make_query(qid, positions, timestep=0, job_id=None, seq=0, op="velocity"):
    q = Query(
        query_id=qid,
        job_id=job_id if job_id is not None else qid,
        seq=seq,
        user_id=0,
        op=op,
        timestep=timestep,
        positions=np.asarray(positions, dtype=float),
    )
    return q, preprocess_query(q, MAPPER)


def atom_center(ax, ay, az):
    return [64 * ax + 32.0, 64 * ay + 32.0, 64 * az + 32.0]


class TestNoShare:
    def test_arrival_order_single_query(self):
        s = NoShareScheduler()
        q, subs = make_query(0, [atom_center(0, 0, 0), atom_center(1, 0, 0)])
        s.on_query_arrival(q, subs, 0.0)
        b1 = s.next_batch(0.0)
        b2 = s.next_batch(0.0)
        assert b1.n_atoms == 1 and b2.n_atoms == 1
        assert s.next_batch(0.0) is None
        assert not s.has_pending()

    def test_round_robin_interleaving(self):
        s = NoShareScheduler()
        qa, subs_a = make_query(0, [atom_center(0, 0, 0), atom_center(1, 0, 0)])
        qb, subs_b = make_query(1, [atom_center(2, 0, 0), atom_center(3, 0, 0)])
        s.on_query_arrival(qa, subs_a, 0.0)
        s.on_query_arrival(qb, subs_b, 0.0)
        owners = [s.next_batch(0.0).atoms[0][1][0].query.query_id for _ in range(4)]
        assert owners == [0, 1, 0, 1]

    def test_no_co_scheduling_across_queries(self):
        """Both queries hit the same atom; NoShare still issues two
        separate single-sub-query batches."""
        s = NoShareScheduler()
        qa, subs_a = make_query(0, [atom_center(0, 0, 0)])
        qb, subs_b = make_query(1, [atom_center(0, 0, 0)])
        s.on_query_arrival(qa, subs_a, 0.0)
        s.on_query_arrival(qb, subs_b, 0.0)
        b1, b2 = s.next_batch(0.0), s.next_batch(0.0)
        assert len(b1.atoms[0][1]) == 1
        assert len(b2.atoms[0][1]) == 1
        assert b1.atoms[0][0] == b2.atoms[0][0]

    def test_max_concurrent_admission(self):
        s = NoShareScheduler(max_concurrent=1)
        qa, subs_a = make_query(0, [atom_center(0, 0, 0), atom_center(1, 0, 0)])
        qb, subs_b = make_query(1, [atom_center(2, 0, 0)])
        s.on_query_arrival(qa, subs_a, 0.0)
        s.on_query_arrival(qb, subs_b, 0.0)
        owners = [s.next_batch(0.0).atoms[0][1][0].query.query_id for _ in range(3)]
        assert owners == [0, 0, 1]  # qb admitted only after qa drains

    def test_validation(self):
        with pytest.raises(ValueError):
            NoShareScheduler(max_concurrent=0)


class TestLifeRaft:
    def test_forced_single_atom_config(self):
        s = LifeRaftScheduler(SPEC, COST, alpha=0.0)
        assert s.config.batch_size == 1
        assert not s.config.adaptive_alpha
        assert s.config.two_level is False

    def test_co_schedules_same_atom(self):
        s = LifeRaftScheduler(SPEC, COST, alpha=0.0)
        qa, subs_a = make_query(0, [atom_center(0, 0, 0)])
        qb, subs_b = make_query(1, [atom_center(0, 0, 0)])
        s.on_query_arrival(qa, subs_a, 0.0)
        s.on_query_arrival(qb, subs_b, 0.0)
        batch = s.next_batch(1.0)
        assert batch.n_atoms == 1
        assert len(batch.atoms[0][1]) == 2  # both sub-queries in one pass

    def test_contention_order(self):
        s = LifeRaftScheduler(SPEC, COST, alpha=0.0)
        q_small, subs_small = make_query(0, [atom_center(0, 0, 0)] * 2)
        q_big, subs_big = make_query(1, [atom_center(1, 0, 0)] * 50)
        s.on_query_arrival(q_small, subs_small, 0.0)
        s.on_query_arrival(q_big, subs_big, 0.0)
        batch = s.next_batch(1.0)
        assert batch.atoms[0][1][0].query.query_id == 1  # larger queue first

    def test_arrival_order_alpha_one(self):
        s = LifeRaftScheduler(SPEC, COST, alpha=1.0)
        q_old, subs_old = make_query(0, [atom_center(0, 0, 0)] * 2)
        q_new, subs_new = make_query(1, [atom_center(1, 0, 0)] * 50)
        s.on_query_arrival(q_old, subs_old, 0.0)
        s.on_query_arrival(q_new, subs_new, 5.0)
        batch = s.next_batch(10.0)
        assert batch.atoms[0][1][0].query.query_id == 0  # oldest first

    def test_name_encodes_alpha(self):
        assert "alpha=0" in LifeRaftScheduler(SPEC, COST, alpha=0.0).name

    def test_empty_queue_returns_none(self):
        s = LifeRaftScheduler(SPEC, COST, alpha=0.0)
        assert s.next_batch(0.0) is None
        assert not s.has_pending()


class TestJAWSTwoLevel:
    def cfg(self, **kw):
        base = dict(
            alpha=0.0, adaptive_alpha=False, two_level=True, batch_size=3, job_aware=False
        )
        base.update(kw)
        return SchedulerConfig(**base)

    def test_batches_from_single_timestep(self):
        s = JAWSScheduler(SPEC, COST, self.cfg())
        # Two atoms on step 0, one on step 1.
        q0, subs0 = make_query(0, [atom_center(0, 0, 0)] * 5, timestep=0)
        q1, subs1 = make_query(1, [atom_center(1, 0, 0)] * 5, timestep=0)
        q2, subs2 = make_query(2, [atom_center(0, 0, 0)] * 5, timestep=1)
        for q, subs in ((q0, subs0), (q1, subs1), (q2, subs2)):
            s.on_query_arrival(q, subs, 0.0)
        batch = s.next_batch(1.0)
        steps = {a // SPEC.atoms_per_timestep for a, _ in batch.atoms}
        assert len(steps) == 1
        assert batch.n_atoms == 2  # the denser step-0 pair

    def test_batch_in_morton_order(self):
        s = JAWSScheduler(SPEC, COST, self.cfg(batch_size=8))
        positions = [atom_center(x, y, 0) for x in range(3) for y in range(2)]
        q, subs = make_query(0, positions * 4)
        s.on_query_arrival(q, subs, 0.0)
        batch = s.next_batch(1.0)
        ids = [a for a, _ in batch.atoms]
        assert ids == sorted(ids)

    def test_variant_names(self):
        assert JAWSScheduler(SPEC, COST, self.cfg(job_aware=False)).name == "JAWS_1"
        assert (
            JAWSScheduler(SPEC, COST, self.cfg(job_aware=True)).name == "JAWS_2"
        )


class TestJAWSGating:
    def cfg(self):
        return SchedulerConfig(
            alpha=0.0, adaptive_alpha=False, two_level=True, batch_size=4, job_aware=True
        )

    def ordered_job(self, job_id, base_qid, centers, timesteps, user=0):
        queries = []
        for i, (c, ts) in enumerate(zip(centers, timesteps)):
            queries.append(
                Query(
                    query_id=base_qid + i,
                    job_id=job_id,
                    seq=i,
                    user_id=user,
                    op="interp",
                    timestep=ts,
                    positions=np.array([c] * 3, dtype=float),
                )
            )
        return Job(job_id, JobKind.ORDERED, user, 0.0, 1.0, queries)

    def test_identical_jobs_gate_and_release_together(self):
        s = JAWSScheduler(SPEC, COST, self.cfg())
        centers = [atom_center(0, 0, 0), atom_center(1, 0, 0)]
        j1 = self.ordered_job(0, 0, centers, [0, 1])
        j2 = self.ordered_job(1, 10, centers, [0, 1], user=1)
        s.on_job_submitted(j1, 0.0)
        s.on_job_submitted(j2, 0.0)
        # First query of job 1 arrives: held awaiting partner.
        q = j1.queries[0]
        s.on_query_arrival(q, preprocess_query(q, MAPPER), 0.0)
        assert s.next_batch(0.0) is None
        assert s.has_pending()
        assert s.held_count == 1
        # Partner arrives: both release; one batch carries both.
        p = j2.queries[0]
        s.on_query_arrival(p, preprocess_query(p, MAPPER), 0.0)
        batch = s.next_batch(0.0)
        assert batch is not None
        owners = {sq.query.query_id for _, subs in batch.atoms for sq in subs}
        assert owners == {0, 10}

    def test_force_release_valve(self):
        s = JAWSScheduler(SPEC, COST, self.cfg())
        centers = [atom_center(0, 0, 0), atom_center(1, 0, 0)]
        j1 = self.ordered_job(0, 0, centers, [0, 1])
        j2 = self.ordered_job(1, 10, centers, [0, 1], user=1)
        s.on_job_submitted(j1, 0.0)
        s.on_job_submitted(j2, 0.0)
        q = j1.queries[0]
        s.on_query_arrival(q, preprocess_query(q, MAPPER), 0.0)
        assert s.next_batch(0.0) is None
        assert s.force_release(0.0)
        assert s.forced_releases >= 1
        assert s.next_batch(0.0) is not None

    def test_gating_max_lag_releases_stragglers(self):
        cfg = self.cfg().with_(gating_max_lag=1)
        s = JAWSScheduler(SPEC, COST, cfg)
        centers = [atom_center(0, 0, 0), atom_center(1, 0, 0)]
        j1 = self.ordered_job(0, 0, centers, [0, 1])
        j2 = self.ordered_job(1, 10, centers, [0, 1], user=1)
        s.on_job_submitted(j1, 0.0)
        s.on_job_submitted(j2, 0.0)
        q = j1.queries[0]
        s.on_query_arrival(q, preprocess_query(q, MAPPER), 0.0)
        assert s.next_batch(0.0) is None
        # An unrelated query completes; the held query exceeds max lag.
        other, other_subs = make_query(99, [atom_center(3, 3, 3)])
        s.on_query_arrival(other, other_subs, 0.0)
        s.next_batch(0.0)
        s.on_query_complete(other, 1.0)
        assert s.held_count == 0
        assert s.forced_releases == 1

    def test_one_off_queries_bypass_gating(self):
        s = JAWSScheduler(SPEC, COST, self.cfg())
        q, subs = make_query(0, [atom_center(0, 0, 0)])
        s.on_query_arrival(q, subs, 0.0)
        assert s.next_batch(0.0) is not None
