"""Chaos soak: random coordinator-crash points, resumed, bit-identical.

For each scheduler family (JAWS, LifeRaft, NoShare) we draw seeded
random crash points spanning the whole run, kill the coordinator at
each, resume from the checkpoints, and assert the recovered
:class:`RunResult` is bit-identical to the uninterrupted same-seed run
— with fault injection active and the runtime sanitizer sweeping
invariants after every event on both sides.  ≥ 20 crash points total.

Slow-marked: excluded from the default pytest run (tier-1); executed by
the CI ``chaos-soak`` job via ``pytest -m slow``.
"""

import dataclasses
import random

import pytest

from repro.config import CheckpointConfig, FaultConfig
from repro.engine.runner import make_scheduler
from repro.engine.simulator import Simulator
from repro.errors import CoordinatorCrash

from tests.test_determinism import assert_identical, engine, small_trace

pytestmark = pytest.mark.slow

#: 7 crash points per scheduler x 3 schedulers = 21 crash/resume cycles.
POINTS_PER_SCHEDULER = 7

FAULTS = FaultConfig(
    seed=11,
    transient_fault_rate=0.05,
    permanent_loss_rate=0.01,
    slow_read_rate=0.05,
)


def build_sim(trace, name, *, checkpoint=None, crash_at=None):
    faults = dataclasses.replace(FAULTS, coordinator_crash_at=crash_at)
    cfg = engine(
        faults=faults,
        checkpoint=checkpoint or CheckpointConfig(),
        sanitize=True,
    )
    return Simulator(trace, [make_scheduler(name, trace, cfg)], cfg)


@pytest.mark.parametrize("name", ["jaws2", "liferaft2", "noshare"])
def test_random_crash_points_resume_bit_identical(tmp_path, name):
    trace = small_trace()
    baseline_sim = build_sim(trace, name)
    baseline = baseline_sim.run()
    total_events = baseline_sim.event_index
    assert total_events > POINTS_PER_SCHEDULER

    rng = random.Random(f"chaos-soak:{name}")
    points = rng.sample(range(1, total_events), POINTS_PER_SCHEDULER)
    for crash_at in points:
        ckpt_dir = tmp_path / f"{name}-{crash_at}"
        checkpoint = CheckpointConfig(directory=str(ckpt_dir), every_events=25)
        sim = build_sim(trace, name, checkpoint=checkpoint, crash_at=crash_at)
        with pytest.raises(CoordinatorCrash):
            sim.run()
        resumed = Simulator.restore(ckpt_dir)
        assert resumed.event_index <= crash_at
        result = resumed.run()
        assert resumed.event_index == total_events
        assert_identical(baseline, result)
