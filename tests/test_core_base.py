"""Unit tests for the Batch container and Scheduler defaults."""

import numpy as np

from repro.core.base import Batch, RunObservation, Scheduler
from repro.grid.atoms import AtomMapper
from repro.grid.dataset import DatasetSpec
from repro.workload.query import Query, preprocess_query

SPEC = DatasetSpec.small(n_timesteps=2, atoms_per_axis=4)


def make_batch():
    q = Query(0, 0, 0, 0, "velocity", 0, np.random.default_rng(0).uniform(0, 256, (50, 3)))
    subs = preprocess_query(q, AtomMapper(SPEC))
    return Batch(atoms=[(sq.atom_id, [sq]) for sq in subs]), subs


class TestBatch:
    def test_counts(self):
        batch, subs = make_batch()
        assert batch.n_atoms == len(subs)
        assert batch.n_positions == 50
        assert batch.atom_ids() == [sq.atom_id for sq in subs]

    def test_empty_batch(self):
        batch = Batch()
        assert batch.n_atoms == 0
        assert batch.n_positions == 0
        assert batch.atom_ids() == []


class TestSchedulerDefaults:
    class Minimal(Scheduler):
        def on_query_arrival(self, query, subqueries, now):
            pass

        def next_batch(self, now):
            return None

        def has_pending(self):
            return False

    def test_default_hooks_are_noops(self):
        s = self.Minimal()
        s.on_query_complete(None, 0.0)
        s.on_run_boundary(RunObservation(0, 1.0, 1.0))
        s.on_job_submitted(None, 0.0)
        assert s.force_release(0.0) is False
        assert s.cache_utility_fn() is None
        assert s.current_alpha is None

    def test_run_observation_fields(self):
        obs = RunObservation(run_index=3, mean_response_time=1.5, throughput=2.0)
        assert obs.run_index == 3
        assert obs.mean_response_time == 1.5
        assert obs.throughput == 2.0
